//! `maxrank-serve` — the long-lived MaxRank query server.
//!
//! ```text
//! maxrank-serve --demo
//! maxrank-serve --dataset hotels=hotel:scale=0.01 --dataset bench=ind:n=5000,d=3
//! maxrank-serve --dataset opts=csv:path=options.csv,dims=4 \
//!               --listen 127.0.0.1:7171 --workers 8 --cache 4096
//! maxrank-serve --demo --listen 127.0.0.1:0 --port-file /tmp/maxrank.port
//! ```
//!
//! Datasets are loaded and indexed **once** at startup; queries then stream
//! through the worker pool and result cache.  `--listen 127.0.0.1:0` picks an
//! ephemeral port; `--port-file` writes the bound port number to a file so
//! scripts (CI, tests) can find it.  The server runs until a client sends the
//! `SHUTDOWN` command, then drains accepted work and exits cleanly.
//!
//! With `--data-dir DIR` every dataset becomes **durable**: its records live
//! in a binary snapshot plus a write-ahead log under `DIR/NAME/`, every
//! `UPDATE` batch is fsynced to the log before it is acknowledged, and a
//! restart recovers the committed state (replaying the log over the
//! snapshot, discarding a torn tail left by a crash).  A clean shutdown
//! checkpoints each dataset so the next start is a pure snapshot load.
//!
//! Besides one-shot `QUERY` requests the server maintains **standing
//! queries**: a client that sends `SUBSCRIBE` gets its focal's result kept
//! resident and incrementally repaired across every `UPDATE` batch, with
//! server-push `NOTIFY` frames whenever it changes (see `maxrank-client
//! subscribe --watch`).
//!
//! See `docs/ARCHITECTURE.md` ("The serving layer", "Standing queries",
//! "Persistence and recovery") for the protocol grammar and the threading
//! model.

use maxrank::service::{
    DatasetRegistry, DatasetSpec, DurabilityOptions, MetricsServer, MrqService, Server,
    ServerConfig, ServiceConfig,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    listen: String,
    port_file: Option<String>,
    datasets: Vec<(String, DatasetSpec)>,
    workers: Option<usize>,
    queue: Option<usize>,
    cache: Option<usize>,
    deadline_ms: Option<u64>,
    data_dir: Option<PathBuf>,
    checkpoint_wal_bytes: Option<u64>,
    metrics_port: Option<u16>,
    metrics_port_file: Option<String>,
    max_connections: Option<usize>,
    idle_timeout_ms: Option<u64>,
}

fn usage() -> String {
    "usage: maxrank-serve (--demo | --dataset NAME=SPEC)... [--listen HOST:PORT] \
     [--port-file PATH] [--workers N] [--queue N] [--cache N] [--deadline-ms MS] \
     [--data-dir DIR] [--checkpoint-wal-bytes N] [--metrics-port PORT] \
     [--metrics-port-file PATH] [--max-connections N] [--idle-timeout-ms MS]\n\
     SPEC: demo | ind:n=1000,d=3,seed=42 | cor:... | anti:... | \
     hotel:scale=0.01,seed=1 | house:... | nba:... | pitch:... | bat:... | \
     csv:path=FILE,dims=D\n\
     --data-dir makes every dataset durable (snapshot + WAL under DIR/NAME/, \
     recovered on restart)\n\
     --metrics-port serves Prometheus text on http://127.0.0.1:PORT/metrics \
     (0 = ephemeral; --metrics-port-file writes the bound port)\n\
     --max-connections sheds arrivals above N with a retryable 'server busy' \
     error; --idle-timeout-ms disconnects clients stalled mid-frame \
     (0 = never)"
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7171".to_string(),
        port_file: None,
        datasets: Vec::new(),
        workers: None,
        queue: None,
        cache: None,
        deadline_ms: None,
        data_dir: None,
        checkpoint_wal_bytes: None,
        metrics_port: None,
        metrics_port_file: None,
        max_connections: None,
        idle_timeout_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--demo" => args.datasets.push(("demo".to_string(), DatasetSpec::Demo)),
            "--dataset" => {
                let raw = it.next().ok_or("--dataset needs NAME=SPEC")?;
                let (name, spec) = raw
                    .split_once('=')
                    .ok_or_else(|| format!("--dataset '{raw}' is not NAME=SPEC"))?;
                let spec =
                    DatasetSpec::parse(spec).map_err(|e| format!("--dataset {name}: {e}"))?;
                args.datasets.push((name.to_string(), spec));
            }
            "--listen" => args.listen = it.next().ok_or("--listen needs HOST:PORT")?,
            "--port-file" => args.port_file = Some(it.next().ok_or("--port-file needs a path")?),
            "--workers" => {
                let n = parse_num(&mut it, "--workers")?;
                if n == 0 {
                    return Err("--workers must be at least 1".into());
                }
                args.workers = Some(n);
            }
            "--queue" => {
                let n = parse_num(&mut it, "--queue")?;
                if n == 0 {
                    return Err("--queue must be at least 1".into());
                }
                args.queue = Some(n);
            }
            "--cache" => {
                args.cache = Some(parse_num(&mut it, "--cache")?);
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(parse_num(&mut it, "--deadline-ms")? as u64);
            }
            "--data-dir" => {
                args.data_dir = Some(PathBuf::from(it.next().ok_or("--data-dir needs a path")?));
            }
            "--checkpoint-wal-bytes" => {
                let n = parse_num(&mut it, "--checkpoint-wal-bytes")? as u64;
                if n == 0 {
                    return Err("--checkpoint-wal-bytes must be at least 1".into());
                }
                args.checkpoint_wal_bytes = Some(n);
            }
            "--metrics-port" => {
                let n = parse_num(&mut it, "--metrics-port")?;
                let port = u16::try_from(n).map_err(|_| "--metrics-port: not a port number")?;
                args.metrics_port = Some(port);
            }
            "--metrics-port-file" => {
                args.metrics_port_file = Some(it.next().ok_or("--metrics-port-file needs a path")?);
            }
            "--max-connections" => {
                let n = parse_num(&mut it, "--max-connections")?;
                if n == 0 {
                    return Err("--max-connections must be at least 1".into());
                }
                args.max_connections = Some(n);
            }
            "--idle-timeout-ms" => {
                args.idle_timeout_ms = Some(parse_num(&mut it, "--idle-timeout-ms")? as u64);
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    if args.datasets.is_empty() {
        return Err(format!(
            "no datasets: pass --demo or --dataset NAME=SPEC\n{}",
            usage()
        ));
    }
    Ok(args)
}

fn parse_num(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<usize, String> {
    it.next()
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let durability = DurabilityOptions {
        checkpoint_wal_bytes: args
            .checkpoint_wal_bytes
            .unwrap_or(DurabilityOptions::default().checkpoint_wal_bytes),
    };
    let registry = Arc::new(DatasetRegistry::new());
    for (name, spec) in &args.datasets {
        let start = std::time::Instant::now();
        let outcome = match &args.data_dir {
            None => registry.register(name, spec).map(|entry| (entry, None)),
            Some(dir) => registry.register_durable(name, spec, dir, durability),
        };
        match outcome {
            Ok((entry, None)) => {
                println!(
                    "dataset '{name}': {} records × {} attributes, index built in {:.2}s{}",
                    entry.data().len(),
                    entry.data().dims(),
                    start.elapsed().as_secs_f64(),
                    if args.data_dir.is_some() {
                        " (durable, fresh store)"
                    } else {
                        ""
                    }
                );
            }
            Ok((entry, Some(report))) => {
                println!(
                    "dataset '{name}': recovered at version {} ({} live records, \
                     {} WAL batches replayed, {} torn bytes discarded, {} pages read) \
                     in {:.2}s",
                    report.version,
                    entry.data().live_len(),
                    report.batches_replayed,
                    report.torn_bytes_discarded,
                    report.pages_read,
                    start.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                eprintln!("failed to load dataset '{name}': {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let defaults = ServiceConfig::default();
    let config = ServiceConfig {
        workers: args.workers.unwrap_or(defaults.workers),
        queue_capacity: args.queue.unwrap_or(defaults.queue_capacity),
        cache_capacity: args.cache.unwrap_or(defaults.cache_capacity),
        default_deadline: args.deadline_ms.map(Duration::from_millis),
        ..defaults
    };
    let service = Arc::new(MrqService::new(Arc::clone(&registry), config));
    let server_defaults = ServerConfig::default();
    let server_config = ServerConfig {
        max_connections: args
            .max_connections
            .unwrap_or(server_defaults.max_connections),
        // 0 disables the reaper; any other value overrides the default.
        idle_timeout: match args.idle_timeout_ms {
            None => server_defaults.idle_timeout,
            Some(0) => None,
            Some(ms) => Some(Duration::from_millis(ms)),
        },
        ..server_defaults
    };
    let server = match Server::start_with(Arc::clone(&service), args.listen.as_str(), server_config)
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    println!(
        "listening on {addr} ({} workers, queue {}, cache {}, max {} connections)",
        config.workers, config.queue_capacity, config.cache_capacity, server_config.max_connections
    );
    if let Some(path) = &args.port_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", addr.port())) {
            eprintln!("failed to write --port-file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let metrics = match args.metrics_port {
        None => None,
        Some(port) => {
            // Loopback only: the scrape endpoint has no auth and no TLS.
            match MetricsServer::start(Arc::clone(&service), ("127.0.0.1", port)) {
                Ok(m) => {
                    println!("metrics on http://{}/metrics", m.local_addr());
                    if let Some(path) = &args.metrics_port_file {
                        if let Err(e) = std::fs::write(path, format!("{}\n", m.local_addr().port()))
                        {
                            eprintln!("failed to write --metrics-port-file {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                    Some(m)
                }
                Err(e) => {
                    eprintln!("failed to bind metrics port {port}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    // Runs until a client sends SHUTDOWN; then drain and exit cleanly.
    server.wait();
    if let Some(metrics) = metrics {
        metrics.shutdown();
    }
    if args.data_dir.is_some() {
        // A final checkpoint makes the next start a pure snapshot load.
        match registry.checkpoint_all() {
            Ok(n) => println!("checkpointed {n} dataset(s)"),
            Err(e) => {
                eprintln!("shutdown checkpoint failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("shut down cleanly");
    ExitCode::SUCCESS
}
