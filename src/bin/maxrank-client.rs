//! `maxrank-client` — command-line client for `maxrank-serve`.
//!
//! ```text
//! maxrank-client --port 7171 --dataset demo --focal 5
//! maxrank-client --addr 127.0.0.1:7171 --dataset bench --focal 17 --tau 2 --algorithm aa
//! maxrank-client --port 7171 --dataset bench update --insert 0.4,0.7,0.2 --delete 17
//! maxrank-client --port 7171 --dataset demo subscribe --focal 5 --watch --count 1
//! maxrank-client --port 7171 --stats
//! maxrank-client --port 7171 --metrics
//! maxrank-client --port 7171 --list
//! maxrank-client --port 7171 --ping
//! maxrank-client --port 7171 --shutdown
//! ```
//!
//! `update` sends one atomic `UPDATE` batch: every `--insert x,y,...` row
//! (repeatable) followed by every `--delete ID` (repeatable).  The server
//! answers with the dataset's new version and the ids assigned to the
//! inserted rows; see `docs/PROTOCOL.md` for the wire format.
//!
//! `subscribe` registers a standing query and prints the initial result.
//! With `--watch` it then blocks printing server-push `NOTIFY` lines as the
//! maintained result changes; `--count N` exits after N notifications and
//! `--timeout-ms MS` bounds each wait (`no NOTIFY within MS ms` and a clean
//! exit when nothing arrives — the negative-test hook).

use maxrank::service::{Client, Notification, QueryOptions};
use mrq_core::Algorithm;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    addr: String,
    dataset: Option<String>,
    focal: Option<u32>,
    algorithm: Algorithm,
    tau: usize,
    timeout_ms: Option<u64>,
    no_cache: bool,
    threads: usize,
    regions_shown: usize,
    update: bool,
    inserts: Vec<Vec<f64>>,
    deletes: Vec<u32>,
    subscribe: bool,
    watch: bool,
    count: Option<u64>,
    stats: bool,
    metrics: bool,
    list: bool,
    ping: bool,
    shutdown: bool,
}

fn usage() -> String {
    "usage: maxrank-client (--addr HOST:PORT | --port P) \
     (--dataset NAME --focal ID [--algorithm auto|fca|ba|aa|aa2d] [--tau T] \
     [--timeout-ms MS] [--no-cache] [--threads N] [--regions N] \
     | --dataset NAME update (--insert x,y,..)* (--delete ID)* \
     | --dataset NAME subscribe --focal ID [--algorithm A] [--tau T] \
     [--watch] [--count N] [--timeout-ms MS] \
     | --stats | --metrics | --list | --ping | --shutdown)"
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7171".to_string(),
        dataset: None,
        focal: None,
        algorithm: Algorithm::Auto,
        tau: 0,
        timeout_ms: None,
        no_cache: false,
        threads: 1,
        regions_shown: 10,
        update: false,
        inserts: Vec::new(),
        deletes: Vec::new(),
        subscribe: false,
        watch: false,
        count: None,
        stats: false,
        metrics: false,
        list: false,
        ping: false,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => args.addr = it.next().ok_or("--addr needs HOST:PORT")?,
            "--port" => {
                let port: u16 = it
                    .next()
                    .ok_or("--port needs a value")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?;
                args.addr = format!("127.0.0.1:{port}");
            }
            "--dataset" => args.dataset = Some(it.next().ok_or("--dataset needs a name")?),
            "--focal" => {
                args.focal = Some(
                    it.next()
                        .ok_or("--focal needs a record id")?
                        .parse()
                        .map_err(|e| format!("--focal: {e}"))?,
                )
            }
            "--algorithm" => {
                let name = it.next().ok_or("--algorithm needs a name")?;
                args.algorithm = Algorithm::from_name(&name)
                    .ok_or_else(|| format!("unknown algorithm '{name}'"))?;
            }
            "--tau" => {
                args.tau = it
                    .next()
                    .ok_or("--tau needs a value")?
                    .parse()
                    .map_err(|e| format!("--tau: {e}"))?
            }
            "--timeout-ms" => {
                args.timeout_ms = Some(
                    it.next()
                        .ok_or("--timeout-ms needs a value")?
                        .parse()
                        .map_err(|e| format!("--timeout-ms: {e}"))?,
                )
            }
            "--no-cache" => args.no_cache = true,
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if args.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--regions" => {
                args.regions_shown = it
                    .next()
                    .ok_or("--regions needs a value")?
                    .parse()
                    .map_err(|e| format!("--regions: {e}"))?
            }
            "update" | "--update" => args.update = true,
            "subscribe" | "--subscribe" => args.subscribe = true,
            "--watch" => args.watch = true,
            "--count" => {
                args.count = Some(
                    it.next()
                        .ok_or("--count needs a value")?
                        .parse()
                        .map_err(|e| format!("--count: {e}"))?,
                )
            }
            "--insert" => {
                let raw = it.next().ok_or("--insert needs comma-separated values")?;
                let row: Result<Vec<f64>, _> = raw.split(',').map(|c| c.trim().parse()).collect();
                args.inserts
                    .push(row.map_err(|e| format!("--insert: {e}"))?);
            }
            "--delete" => {
                args.deletes.push(
                    it.next()
                        .ok_or("--delete needs a record id")?
                        .parse()
                        .map_err(|e| format!("--delete: {e}"))?,
                );
            }
            "--stats" => args.stats = true,
            "--metrics" => args.metrics = true,
            "--list" => args.list = true,
            "--ping" => args.ping = true,
            "--shutdown" => args.shutdown = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut client = match Client::connect(args.addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to connect to {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };

    let outcome = if args.ping {
        client.ping().map(|()| println!("pong"))
    } else if args.stats {
        client.stats().map(|s| {
            println!("datasets        : {}", s.datasets.join(", "));
            println!(
                "cache           : {} hits / {} misses / {} evictions ({}/{} entries)",
                s.cache.hits, s.cache.misses, s.cache.evictions, s.cache.len, s.cache.capacity
            );
            println!(
                "pool            : {} workers, queue {}/{}",
                s.pool.workers, s.pool.queue_depth, s.pool.queue_capacity
            );
            println!(
                "jobs            : {} executed, {} coalesced, {} timed out, \
                 {} deadline-rejected",
                s.pool.executed, s.pool.coalesced, s.pool.timed_out, s.pool.deadline_rejected
            );
            // Absent on pre-subscription servers: the client defaults every
            // counter to zero, so this line still prints.
            let sub = &s.subscriptions;
            println!(
                "subscriptions   : {} active, {} deltas triaged \
                 ({} unaffected_skips, {} partial_repairs, {} full_reevals)",
                sub.active,
                sub.deltas_triaged,
                sub.unaffected_skips,
                sub.partial_repairs,
                sub.full_reevals
            );
            if s.durability.durable_datasets > 0 {
                let d = &s.durability;
                println!(
                    "durability      : {} durable ({} recovered), {} WAL appends \
                     ({} bytes), {} checkpoints",
                    d.durable_datasets,
                    d.recovered_datasets,
                    d.wal_appends,
                    d.wal_appended_bytes,
                    d.checkpoints
                );
                if d.recovered_datasets > 0 {
                    println!(
                        "recovery        : {} batches replayed, {} torn bytes \
                         discarded, {} pages read",
                        d.wal_batches_replayed, d.torn_bytes_discarded, d.recovery_pages_read
                    );
                }
            }
            if !s.per_dataset.is_empty() {
                println!("per-dataset query statistics:");
                println!(
                    "  {:<16} {:>8} {:>8} {:>12} {:>10} {:>10} {:>10} {:>12}",
                    "dataset",
                    "queries",
                    "cached",
                    "cpu_s",
                    "io",
                    "cells",
                    "lp_calls",
                    "witness_hits"
                );
                for d in &s.per_dataset {
                    println!(
                        "  {:<16} {:>8} {:>8} {:>12.4} {:>10} {:>10} {:>10} {:>12}",
                        d.dataset,
                        d.queries,
                        d.cache_hits,
                        d.cpu_us as f64 / 1e6,
                        d.io_reads,
                        d.cells_tested,
                        d.lp_calls,
                        d.witness_hits
                    );
                }
            }
        })
    } else if args.metrics {
        // Raw Prometheus exposition text, exactly what a scrape would get.
        client.metrics().map(|text| print!("{text}"))
    } else if args.list {
        client.list().map(|datasets| {
            for (name, records, dims) in datasets {
                println!("{name}: {records} records × {dims} attributes");
            }
        })
    } else if args.shutdown {
        client
            .shutdown_server()
            .map(|()| println!("server shut down"))
    } else if args.subscribe {
        let (Some(dataset), Some(focal)) = (&args.dataset, args.focal) else {
            eprintln!("subscribe needs --dataset NAME --focal ID\n{}", usage());
            return ExitCode::FAILURE;
        };
        let wait = args.timeout_ms.map(Duration::from_millis);
        client
            .subscribe(dataset, focal, args.algorithm, args.tau)
            .and_then(|ack| {
                println!("subscription      : {}", ack.subscription);
                println!("dataset           : {} (focal {})", ack.dataset, ack.focal);
                println!("algorithm         : {}", ack.algorithm);
                if ack.tau > 0 {
                    println!("tau               : {}", ack.tau);
                }
                println!("dataset version   : {}", ack.version);
                println!("k* (best rank)    : {}", ack.k_star);
                println!("result regions    : {}", ack.region_count);
                if !args.watch {
                    return Ok(());
                }
                let mut remaining = args.count;
                loop {
                    match client.wait_notify(wait)? {
                        None => {
                            println!(
                                "no NOTIFY within {} ms",
                                wait.map(|t| t.as_millis()).unwrap_or_default()
                            );
                            return Ok(());
                        }
                        Some(Notification::Changed(reply)) => {
                            println!(
                                "NOTIFY change     : version {}, k* {}, {} regions",
                                reply.version, reply.k_star, reply.region_count
                            );
                        }
                        Some(Notification::Cancelled {
                            version, reason, ..
                        }) => {
                            println!("NOTIFY cancelled  : version {version} ({reason})");
                            return Ok(());
                        }
                    }
                    if let Some(count) = &mut remaining {
                        *count = count.saturating_sub(1);
                        if *count == 0 {
                            return Ok(());
                        }
                    }
                }
            })
    } else if args.update {
        let Some(dataset) = &args.dataset else {
            eprintln!("update needs --dataset NAME\n{}", usage());
            return ExitCode::FAILURE;
        };
        if args.inserts.is_empty() && args.deletes.is_empty() {
            eprintln!(
                "update needs at least one --insert or --delete\n{}",
                usage()
            );
            return ExitCode::FAILURE;
        }
        client
            .update(dataset, &args.inserts, &args.deletes)
            .map(|reply| {
                println!("dataset           : {dataset}");
                println!("version           : {}", reply.version);
                println!("live records      : {}", reply.records);
                if !reply.inserted.is_empty() {
                    println!("inserted ids      : {:?}", reply.inserted);
                }
                if reply.deleted > 0 {
                    println!("deleted records   : {}", reply.deleted);
                }
            })
    } else {
        let (Some(dataset), Some(focal)) = (&args.dataset, args.focal) else {
            eprintln!(
                "nothing to do: pass --dataset/--focal, --stats, --metrics, --list, --ping or --shutdown\n{}",
                usage()
            );
            return ExitCode::FAILURE;
        };
        client
            .query_with(
                dataset,
                focal,
                QueryOptions {
                    algorithm: args.algorithm,
                    tau: args.tau,
                    timeout: args.timeout_ms.map(Duration::from_millis),
                    no_cache: args.no_cache,
                    max_regions: Some(args.regions_shown),
                    threads: args.threads,
                },
            )
            .map(|reply| {
                println!("k* (best rank)    : {}", reply.k_star);
                if reply.tau > 0 {
                    println!("tau               : {}", reply.tau);
                }
                println!("algorithm         : {}", reply.algorithm);
                println!("result regions    : {}", reply.region_count);
                println!("cached            : {}", reply.cached);
                println!("dataset version   : {}", reply.version);
                println!("page reads (I/O)  : {}", reply.io_reads);
                println!("cpu time          : {:.3}s", reply.cpu_us as f64 / 1e6);
                for (i, (order, w)) in reply.orders.iter().zip(&reply.witnesses).enumerate() {
                    let rounded: Vec<f64> = w
                        .iter()
                        .map(|x| (x * 10_000.0).round() / 10_000.0)
                        .collect();
                    println!(
                        "  region {:>3}: rank {order}  example weights {rounded:?}",
                        i + 1
                    );
                }
                if reply.region_count > reply.orders.len() {
                    println!(
                        "  … {} more regions (use --regions to show more)",
                        reply.region_count - reply.orders.len()
                    );
                }
            })
    };

    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
