//! `maxrank-cli` — run MaxRank / iMaxRank queries over a CSV file.
//!
//! ```text
//! maxrank-cli --data options.csv --dims 4 --focal 17 [--tau 2] [--algorithm aa|ba|fca|aa2d]
//! maxrank-cli --data options.csv --dims 4 --point 0.4,0.7,0.2,0.9
//! maxrank-cli --demo                       # run the paper's Figure 1 example
//! ```
//!
//! The CSV is plain comma-separated numeric values, one record per line (an
//! optional header line is skipped automatically); all attributes are
//! interpreted as "larger is better", as in the paper.

use maxrank::prelude::*;
use mrq_data::io::read_csv;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    data: Option<PathBuf>,
    dims: Option<usize>,
    focal: Option<u32>,
    point: Option<Vec<f64>>,
    tau: usize,
    algorithm: Algorithm,
    regions_shown: usize,
    demo: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        data: None,
        dims: None,
        focal: None,
        point: None,
        tau: 0,
        algorithm: Algorithm::Auto,
        regions_shown: 10,
        demo: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--data" => args.data = Some(PathBuf::from(it.next().ok_or("--data needs a path")?)),
            "--dims" => {
                args.dims = Some(
                    it.next()
                        .ok_or("--dims needs a value")?
                        .parse()
                        .map_err(|e| format!("--dims: {e}"))?,
                )
            }
            "--focal" => {
                args.focal = Some(
                    it.next()
                        .ok_or("--focal needs a record id")?
                        .parse()
                        .map_err(|e| format!("--focal: {e}"))?,
                )
            }
            "--point" => {
                let raw = it
                    .next()
                    .ok_or("--point needs comma-separated coordinates")?;
                let coords: Result<Vec<f64>, _> =
                    raw.split(',').map(|c| c.trim().parse()).collect();
                args.point = Some(coords.map_err(|e| format!("--point: {e}"))?);
            }
            "--tau" => {
                args.tau = it
                    .next()
                    .ok_or("--tau needs a value")?
                    .parse()
                    .map_err(|e| format!("--tau: {e}"))?
            }
            "--algorithm" => {
                args.algorithm = match it.next().ok_or("--algorithm needs a name")?.as_str() {
                    "auto" => Algorithm::Auto,
                    "fca" => Algorithm::Fca,
                    "ba" => Algorithm::BasicApproach,
                    "aa" => Algorithm::AdvancedApproach,
                    "aa2d" => Algorithm::AdvancedApproach2D,
                    other => return Err(format!("unknown algorithm '{other}'")),
                }
            }
            "--regions" => {
                args.regions_shown = it
                    .next()
                    .ok_or("--regions needs a value")?
                    .parse()
                    .map_err(|e| format!("--regions: {e}"))?
            }
            "--demo" => args.demo = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    Ok(args)
}

fn usage() -> String {
    "usage: maxrank-cli --data FILE.csv --dims D (--focal ID | --point x1,..,xD) \
     [--tau T] [--algorithm auto|fca|ba|aa|aa2d] [--regions N]\n       maxrank-cli --demo"
        .to_string()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let (data, focal_point, focal_id) = if args.demo {
        let data = Dataset::from_rows(
            2,
            &[
                vec![0.8, 0.9],
                vec![0.2, 0.7],
                vec![0.9, 0.4],
                vec![0.7, 0.2],
                vec![0.4, 0.3],
                vec![0.5, 0.5],
            ],
        );
        (data, vec![0.5, 0.5], Some(5u32))
    } else {
        let Some(path) = &args.data else {
            eprintln!("--data is required (or use --demo)\n{}", usage());
            return ExitCode::FAILURE;
        };
        let Some(dims) = args.dims else {
            eprintln!("--dims is required\n{}", usage());
            return ExitCode::FAILURE;
        };
        let data = match read_csv(path, dims) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("failed to read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match (&args.point, args.focal) {
            (Some(p), _) => {
                if p.len() != dims {
                    eprintln!("--point has {} coordinates, expected {dims}", p.len());
                    return ExitCode::FAILURE;
                }
                (data, p.clone(), None)
            }
            (None, Some(id)) => {
                if id as usize >= data.len() {
                    eprintln!(
                        "--focal {id} out of range (dataset has {} records)",
                        data.len()
                    );
                    return ExitCode::FAILURE;
                }
                let p = data.record(id).to_vec();
                (data, p, Some(id))
            }
            (None, None) => {
                eprintln!("one of --focal or --point is required\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    };

    if matches!(
        args.algorithm,
        Algorithm::Fca | Algorithm::AdvancedApproach2D
    ) && data.dims() != 2
    {
        eprintln!(
            "--algorithm {:?} only supports 2-dimensional data (the dataset has {} attributes); \
             use auto, ba or aa",
            args.algorithm,
            data.dims()
        );
        return ExitCode::FAILURE;
    }

    let tree = RStarTree::bulk_load(&data);
    let engine = MaxRankQuery::new(&data, &tree);
    let config = MaxRankConfig {
        tau: args.tau,
        algorithm: args.algorithm,
        ..MaxRankConfig::new()
    };
    let result = match focal_id {
        Some(id) => engine.evaluate(id, &config),
        None => engine.evaluate_point(&focal_point, &config),
    };

    println!(
        "dataset           : {} records × {} attributes",
        data.len(),
        data.dims()
    );
    println!("focal             : {focal_point:?}");
    println!("k* (best rank)    : {}", result.k_star);
    if args.tau > 0 {
        println!("tau               : {}", args.tau);
    }
    println!("result regions    : {}", result.region_count());
    println!("dominators        : {}", result.stats.dominators);
    println!("records accessed  : {}", result.stats.halfspaces_inserted);
    println!("page reads (I/O)  : {}", result.stats.io_reads);
    println!(
        "cpu time          : {:.3}s",
        result.stats.cpu_time.as_secs_f64()
    );
    for (i, region) in result.regions.iter().take(args.regions_shown).enumerate() {
        let q = region.representative_query();
        let rounded: Vec<f64> = q
            .iter()
            .map(|w| (w * 10_000.0).round() / 10_000.0)
            .collect();
        println!(
            "  region {:>3}: rank {}  example weights {:?}",
            i + 1,
            region.order,
            rounded
        );
    }
    if result.region_count() > args.regions_shown {
        println!(
            "  … {} more regions (use --regions to show more)",
            result.region_count() - args.regions_shown
        );
    }
    ExitCode::SUCCESS
}
