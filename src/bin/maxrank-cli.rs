//! `maxrank-cli` — run MaxRank / iMaxRank queries over a CSV file.
//!
//! ```text
//! maxrank-cli --data options.csv --dims 4 --focal 17 [--tau 2] [--algorithm aa|ba|fca|aa2d]
//!             [--threads 4] [--verbose]
//! maxrank-cli --data options.csv --dims 4 --point 0.4,0.7,0.2,0.9
//! maxrank-cli --data options.csv --dims 4 --focals 3,17,29,41 --threads 4
//! maxrank-cli --data options.csv --dims 4 --insert 0.4,0.7,0.2,0.9 --delete 3 --focal 17
//! maxrank-cli --data-dir /var/lib/maxrank --dataset hotels --focal 17
//! maxrank-cli --demo                       # run the paper's Figure 1 example
//! ```
//!
//! The CSV is plain comma-separated numeric values, one record per line (an
//! optional header line is skipped automatically); all attributes are
//! interpreted as "larger is better", as in the paper.
//!
//! Multi-focal invocations (`--focals`) run through the `mrq-service` worker
//! pool — `--threads N` picks the pool size — so a what-if study over many
//! focal records shares one index and evaluates in parallel.  For
//! single-focal runs `--threads N` instead shards the within-leaf cell
//! enumeration of that one query (BA / AA); `--verbose` adds the pruning and
//! throughput counters (cells/sec, events pruned) to the report.
//!
//! `--insert x,y,...` (repeatable) and `--delete ID` (repeatable) mutate the
//! dataset after loading, *through* the update machinery: each change goes
//! through `Dataset::apply` and the R\*-tree's incremental insert/delete
//! rather than a reload, exactly as the `UPDATE` verb of `maxrank-serve`
//! does.  Inserts are applied first (ids continue after the loaded records),
//! then deletes; a `--focal`/`--focals` id that was deleted is a friendly
//! error, since its record no longer participates in the ranking.
//!
//! `--data-dir DIR --dataset NAME` loads the durable store a
//! `maxrank-serve --data-dir DIR` process left under `DIR/NAME/` instead of
//! a CSV: the snapshot is read, the write-ahead log is replayed over it
//! (exactly the server's recovery path), and the query runs against the
//! recovered state.  The CLI never writes the store — `--insert`/`--delete`
//! stay in-memory what-ifs — and a damaged store produces a diagnostic, not
//! a panic; see the unit tests, which pin one message per failure mode.

use maxrank::prelude::*;
use mrq_data::io::read_csv;
use mrq_data::storage::{DatasetStore, RecoveryReport, SNAPSHOT_FILE};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    data: Option<PathBuf>,
    data_dir: Option<PathBuf>,
    dataset: Option<String>,
    dims: Option<usize>,
    focal: Option<u32>,
    focals: Vec<u32>,
    point: Option<Vec<f64>>,
    inserts: Vec<Vec<f64>>,
    deletes: Vec<u32>,
    tau: usize,
    algorithm: Algorithm,
    regions_shown: usize,
    threads: usize,
    verbose: bool,
    demo: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        data: None,
        data_dir: None,
        dataset: None,
        dims: None,
        focal: None,
        focals: Vec::new(),
        point: None,
        inserts: Vec::new(),
        deletes: Vec::new(),
        tau: 0,
        algorithm: Algorithm::Auto,
        regions_shown: 10,
        threads: 1,
        verbose: false,
        demo: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--data" => args.data = Some(PathBuf::from(it.next().ok_or("--data needs a path")?)),
            "--data-dir" => {
                args.data_dir = Some(PathBuf::from(it.next().ok_or("--data-dir needs a path")?))
            }
            "--dataset" => args.dataset = Some(it.next().ok_or("--dataset needs a name")?),
            "--dims" => {
                args.dims = Some(
                    it.next()
                        .ok_or("--dims needs a value")?
                        .parse()
                        .map_err(|e| format!("--dims: {e}"))?,
                )
            }
            "--focal" => {
                args.focal = Some(
                    it.next()
                        .ok_or("--focal needs a record id")?
                        .parse()
                        .map_err(|e| format!("--focal: {e}"))?,
                )
            }
            "--focals" => {
                let raw = it
                    .next()
                    .ok_or("--focals needs comma-separated record ids")?;
                let ids: Result<Vec<u32>, _> = raw.split(',').map(|c| c.trim().parse()).collect();
                args.focals = ids.map_err(|e| format!("--focals: {e}"))?;
                if args.focals.is_empty() {
                    return Err("--focals needs at least one record id".into());
                }
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if args.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--point" => {
                let raw = it
                    .next()
                    .ok_or("--point needs comma-separated coordinates")?;
                let coords: Result<Vec<f64>, _> =
                    raw.split(',').map(|c| c.trim().parse()).collect();
                args.point = Some(coords.map_err(|e| format!("--point: {e}"))?);
            }
            "--insert" => {
                let raw = it.next().ok_or("--insert needs comma-separated values")?;
                let row: Result<Vec<f64>, _> = raw.split(',').map(|c| c.trim().parse()).collect();
                args.inserts
                    .push(row.map_err(|e| format!("--insert: {e}"))?);
            }
            "--delete" => {
                args.deletes.push(
                    it.next()
                        .ok_or("--delete needs a record id")?
                        .parse()
                        .map_err(|e| format!("--delete: {e}"))?,
                );
            }
            "--tau" => {
                args.tau = it
                    .next()
                    .ok_or("--tau needs a value")?
                    .parse()
                    .map_err(|e| format!("--tau: {e}"))?
            }
            "--algorithm" => {
                args.algorithm = match it.next().ok_or("--algorithm needs a name")?.as_str() {
                    "auto" => Algorithm::Auto,
                    "fca" => Algorithm::Fca,
                    "ba" => Algorithm::BasicApproach,
                    "aa" => Algorithm::AdvancedApproach,
                    "aa2d" => Algorithm::AdvancedApproach2D,
                    other => return Err(format!("unknown algorithm '{other}'")),
                }
            }
            "--regions" => {
                args.regions_shown = it
                    .next()
                    .ok_or("--regions needs a value")?
                    .parse()
                    .map_err(|e| format!("--regions: {e}"))?
            }
            "--verbose" => args.verbose = true,
            "--demo" => args.demo = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    Ok(args)
}

fn usage() -> String {
    "usage: maxrank-cli (--data FILE.csv --dims D | --data-dir DIR --dataset NAME) \
     (--focal ID | --focals ID,ID,.. | --point x1,..,xD) \
     [--insert x1,..,xD]* [--delete ID]* \
     [--tau T] [--algorithm auto|fca|ba|aa|aa2d] [--regions N] [--threads N] [--verbose]\n       \
     maxrank-cli --demo\n       \
     --data-dir loads a durable store written by `maxrank-serve --data-dir` \
     (snapshot + WAL replay)"
        .to_string()
}

/// Loads the durable store `maxrank-serve --data-dir DIR` keeps under
/// `DIR/NAME/`, replaying the write-ahead log over the snapshot — the same
/// recovery the server performs on restart.  The store is opened read-only
/// from the CLI's point of view (it is dropped immediately, nothing is
/// appended), and every failure mode maps to a human-readable message
/// instead of a panic: a missing store, a file that is not a MaxRank
/// snapshot, an on-disk format this build does not read, a checksum
/// mismatch, and a WAL that disagrees with the snapshot's dimensionality
/// are each pinned by a unit test below.
fn load_store(dir: &Path, name: &str) -> Result<(Dataset, RecoveryReport), String> {
    let store_dir = dir.join(name);
    if !DatasetStore::exists(&store_dir) {
        return Err(format!(
            "no dataset store named '{name}' under {} (expected {}; durable stores \
             are created by `maxrank-serve --data-dir`)",
            dir.display(),
            store_dir.join(SNAPSHOT_FILE).display()
        ));
    }
    let (_store, data, report) =
        DatasetStore::open(&store_dir).map_err(|e| format!("cannot load dataset '{name}': {e}"))?;
    Ok((data, report))
}

/// Applies every `--insert` row and then every `--delete` id through the
/// mutation machinery, mirroring the service's `UPDATE` path:
/// `Dataset::apply` plus — when a tree is given — the R\*-tree's incremental
/// insert/delete (never a reload).  The `--focals` path passes no tree: the
/// service registry bulk-loads its own index over the mutated dataset, so
/// maintaining one here would only duplicate the build.
fn apply_updates(
    data: &mut Dataset,
    mut tree: Option<&mut RStarTree>,
    args: &Args,
) -> Result<(), String> {
    for row in &args.inserts {
        let applied = data
            .apply(&Update::Insert(row.clone()))
            .map_err(|e| format!("--insert {}: {e}", fmt_row(row)))?;
        if let Some(tree) = tree.as_deref_mut() {
            tree.insert(applied.inserted.expect("insert assigns an id"), row);
        }
    }
    for &id in &args.deletes {
        data.apply(&Update::Delete(id))
            .map_err(|e| format!("--delete {id}: {e}"))?;
        if let Some(tree) = tree.as_deref_mut() {
            // A tombstoned slot still exposes its coordinates for the search.
            let found = tree.delete(id, data.record(id));
            debug_assert!(found, "dataset and index disagree on id {id}");
        }
    }
    if !args.inserts.is_empty() || !args.deletes.is_empty() {
        println!(
            "updates applied   : +{} inserted, -{} deleted → {} live records (version {})",
            args.inserts.len(),
            args.deletes.len(),
            data.live_len(),
            data.version()
        );
    }
    Ok(())
}

fn fmt_row(row: &[f64]) -> String {
    row.iter().map(f64::to_string).collect::<Vec<_>>().join(",")
}

/// Evaluates every `--focals` record through the `mrq-service` worker pool
/// (shared index, `--threads` workers) and prints one summary row per focal.
fn run_multi_focal(data: Dataset, args: &Args) -> ExitCode {
    let n = data.len();
    for &id in &args.focals {
        if id as usize >= n {
            eprintln!("--focals {id} out of range (dataset has {n} record ids)");
            return ExitCode::FAILURE;
        }
        if !data.is_live(id) {
            eprintln!(
                "--focals {id} refers to a deleted record (removed by --delete); \
                 pick live focal ids"
            );
            return ExitCode::FAILURE;
        }
    }
    let registry = Arc::new(DatasetRegistry::new());
    if let Err(e) = registry.register_loaded("cli", data) {
        eprintln!("failed to index the dataset: {e}");
        return ExitCode::FAILURE;
    }
    let service = MrqService::new(
        registry,
        ServiceConfig {
            workers: args.threads,
            cache_capacity: args.focals.len(),
            ..ServiceConfig::default()
        },
    );
    // Enqueue everything first so the pool actually runs in parallel (and
    // coalesces same-dataset neighbours), then collect in input order.
    let pending: Result<Vec<_>, _> = args
        .focals
        .iter()
        .map(|&focal| {
            service.enqueue(&QueryRequest {
                algorithm: args.algorithm,
                tau: args.tau,
                ..QueryRequest::new("cli", focal)
            })
        })
        .collect();
    let pending = match pending {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{} focal records over {} worker threads",
        args.focals.len(),
        args.threads
    );
    println!(
        "{:>8}  {:>6}  {:>8}  {:>10}  {:>8}",
        "focal", "k*", "|T|", "cpu_s", "io"
    );
    for (&focal, answer) in args.focals.iter().zip(pending) {
        match answer.wait() {
            Ok(a) => println!(
                "{:>8}  {:>6}  {:>8}  {:>10.4}  {:>8}",
                focal,
                a.result.k_star,
                a.result.region_count(),
                a.result.stats.cpu_time.as_secs_f64(),
                a.result.stats.io_reads
            ),
            Err(e) => {
                eprintln!("focal {focal}: {e}");
                service.shutdown();
                return ExitCode::FAILURE;
            }
        }
    }
    service.shutdown();
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let data = if args.demo {
        // The same Figure-1 dataset `maxrank-serve --demo` registers.
        DatasetSpec::Demo
            .materialize()
            .expect("the demo dataset is embedded")
    } else if let Some(dir) = &args.data_dir {
        if args.data.is_some() {
            eprintln!("--data and --data-dir are mutually exclusive\n{}", usage());
            return ExitCode::FAILURE;
        }
        let Some(name) = &args.dataset else {
            eprintln!("--data-dir needs --dataset NAME\n{}", usage());
            return ExitCode::FAILURE;
        };
        match load_store(dir, name) {
            Ok((data, report)) => {
                println!(
                    "store '{name}'    : recovered at version {} ({} WAL batches replayed, \
                     {} torn bytes discarded, {} pages read)",
                    report.version,
                    report.batches_replayed,
                    report.torn_bytes_discarded,
                    report.pages_read
                );
                data
            }
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let Some(path) = &args.data else {
            eprintln!(
                "--data is required (or use --data-dir or --demo)\n{}",
                usage()
            );
            return ExitCode::FAILURE;
        };
        let Some(dims) = args.dims else {
            eprintln!("--dims is required\n{}", usage());
            return ExitCode::FAILURE;
        };
        match read_csv(path, dims) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("failed to read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    };

    if args.algorithm.requires_2d() && data.dims() != 2 {
        eprintln!(
            "--algorithm {} only supports 2-dimensional data (the dataset has {} attributes); \
             use auto, ba or aa",
            args.algorithm.name(),
            data.dims()
        );
        return ExitCode::FAILURE;
    }

    let mut data = data;

    if !args.focals.is_empty() {
        // The service registry bulk-loads the index over the final dataset
        // state, so the updates only need to reach the dataset here.
        if let Err(msg) = apply_updates(&mut data, None, &args) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
        return run_multi_focal(data, &args);
    }

    // Single-focal/point path: bulk-load once, then mutate the index
    // incrementally — the same insert/delete path the server's UPDATE uses.
    let mut tree = RStarTree::bulk_load(&data);
    if let Err(msg) = apply_updates(&mut data, Some(&mut tree), &args) {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }

    let (focal_point, focal_id) = if args.demo {
        (vec![0.5, 0.5], Some(5u32))
    } else {
        match (&args.point, args.focal) {
            (Some(p), _) => {
                if p.len() != data.dims() {
                    eprintln!(
                        "--point has {} coordinates, expected {}",
                        p.len(),
                        data.dims()
                    );
                    return ExitCode::FAILURE;
                }
                (p.clone(), None)
            }
            (None, Some(id)) => {
                if id as usize >= data.len() {
                    eprintln!(
                        "--focal {id} out of range (dataset has {} record ids)",
                        data.len()
                    );
                    return ExitCode::FAILURE;
                }
                (data.record(id).to_vec(), Some(id))
            }
            (None, None) => {
                eprintln!(
                    "one of --focal, --focals or --point is required\n{}",
                    usage()
                );
                return ExitCode::FAILURE;
            }
        }
    };

    if let Some(id) = focal_id {
        if !data.is_live(id) {
            eprintln!(
                "--focal {id} refers to a deleted record (removed by --delete); \
                 pick a live focal or evaluate it as a what-if --point"
            );
            return ExitCode::FAILURE;
        }
    }

    let engine = MaxRankQuery::new(&data, &tree);
    let config = MaxRankConfig {
        tau: args.tau,
        algorithm: args.algorithm,
        threads: args.threads,
        ..MaxRankConfig::new()
    };
    let result = match focal_id {
        Some(id) => engine.evaluate(id, &config),
        None => engine.evaluate_point(&focal_point, &config),
    };

    println!(
        "dataset           : {} records × {} attributes",
        data.live_len(),
        data.dims()
    );
    println!("focal             : {focal_point:?}");
    println!("k* (best rank)    : {}", result.k_star);
    if args.tau > 0 {
        println!("tau               : {}", args.tau);
    }
    println!("result regions    : {}", result.region_count());
    println!("dominators        : {}", result.stats.dominators);
    println!("records accessed  : {}", result.stats.halfspaces_inserted);
    println!("page reads (I/O)  : {}", result.stats.io_reads);
    println!(
        "cpu time          : {:.3}s",
        result.stats.cpu_time.as_secs_f64()
    );
    if args.verbose {
        let secs = result.stats.cpu_time.as_secs_f64();
        let cells_per_sec = if secs > 0.0 {
            result.stats.cells_tested as f64 / secs
        } else {
            0.0
        };
        println!("threads           : {}", args.threads);
        println!("iterations        : {}", result.stats.iterations);
        println!(
            "cells tested      : {} ({:.0} cells/sec)",
            result.stats.cells_tested, cells_per_sec
        );
        println!(
            "LP calls          : {} (simplex solves: candidates + pair conditions)",
            result.stats.lp_calls
        );
        println!(
            "witness hits      : {} (cells proven non-empty without an LP)",
            result.stats.witness_hits
        );
        println!(
            "subtrees pruned   : {} (combination-search cuts)",
            result.stats.subtrees_pruned
        );
        println!(
            "events pruned     : {} (2-d sweep expansion skips)",
            result.stats.events_pruned
        );
        println!(
            "bitstrings pruned : {} (pairwise containment)",
            result.stats.bitstrings_pruned
        );
        println!("leaves processed  : {}", result.stats.leaves_processed);
    }
    for (i, region) in result.regions.iter().take(args.regions_shown).enumerate() {
        let q = region.representative_query();
        let rounded: Vec<f64> = q
            .iter()
            .map(|w| (w * 10_000.0).round() / 10_000.0)
            .collect();
        println!(
            "  region {:>3}: rank {}  example weights {:?}",
            i + 1,
            region.order,
            rounded
        );
    }
    if result.region_count() > args.regions_shown {
        println!(
            "  … {} more regions (use --regions to show more)",
            result.region_count() - args.regions_shown
        );
    }
    ExitCode::SUCCESS
}

/// One test per `--data-dir` failure mode: the CLI must turn every way a
/// store can be damaged into a specific diagnostic, never a panic.
#[cfg(test)]
mod tests {
    use super::*;
    use mrq_data::storage::WAL_FILE;
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("maxrank-cli-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn sample_dataset() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..16)
            .map(|i| {
                let x = (i as f64 + 1.0) / 17.0;
                vec![x, 1.0 - x, (x * 7.0) % 1.0]
            })
            .collect();
        Dataset::from_rows(3, &rows)
    }

    #[test]
    fn loads_a_healthy_store() {
        let dir = temp_dir("healthy");
        let data = sample_dataset();
        DatasetStore::create(&dir.join("bench"), &data).expect("create store");
        let (loaded, report) = load_store(&dir, "bench").expect("healthy store loads");
        assert_eq!(loaded.live_len(), data.live_len());
        assert_eq!(report.version, data.version());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_store_names_the_expected_path() {
        let dir = temp_dir("missing");
        let msg = load_store(&dir, "nope").unwrap_err();
        assert!(msg.contains("no dataset store named 'nope'"), "{msg}");
        assert!(msg.contains(SNAPSHOT_FILE), "{msg}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_snapshot_file_reports_bad_magic() {
        let dir = temp_dir("magic");
        let store = dir.join("bench");
        fs::create_dir_all(&store).unwrap();
        fs::write(store.join(SNAPSHOT_FILE), b"definitely not a snapshot").unwrap();
        let msg = load_store(&dir, "bench").unwrap_err();
        assert!(msg.contains("cannot load dataset 'bench'"), "{msg}");
        assert!(msg.contains("not a MaxRank snapshot file"), "{msg}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_format_version_reports_the_mismatch() {
        let dir = temp_dir("version");
        let store = dir.join("bench");
        fs::create_dir_all(&store).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MRQSNAP\0");
        buf.extend_from_slice(&99u32.to_le_bytes());
        fs::write(store.join(SNAPSHOT_FILE), &buf).unwrap();
        let msg = load_store(&dir, "bench").unwrap_err();
        assert!(msg.contains("format version 99 is not supported"), "{msg}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flipped_snapshot_reports_a_checksum_mismatch() {
        let dir = temp_dir("corrupt");
        let store = dir.join("bench");
        DatasetStore::create(&store, &sample_dataset()).expect("create store");
        let path = store.join(SNAPSHOT_FILE);
        let mut buf = fs::read(&path).unwrap();
        let mid = buf.len() / 2; // inside the values region, after the header
        buf[mid] ^= 0xFF;
        fs::write(&path, &buf).unwrap();
        let msg = load_store(&dir, "bench").unwrap_err();
        assert!(msg.contains("is corrupt"), "{msg}");
        assert!(msg.contains("checksum mismatch"), "{msg}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_with_wrong_dimensionality_is_rejected() {
        let dir = temp_dir("dims");
        let store = dir.join("bench");
        DatasetStore::create(&store, &sample_dataset()).expect("create store");
        let path = store.join(WAL_FILE);
        let mut buf = fs::read(&path).unwrap();
        // WAL header layout: 8 magic bytes, u32 format version, u32 dims.
        buf[12..16].copy_from_slice(&4u32.to_le_bytes());
        fs::write(&path, &buf).unwrap();
        let msg = load_store(&dir, "bench").unwrap_err();
        assert!(msg.contains("WAL header says 4 attributes"), "{msg}");
        let _ = fs::remove_dir_all(&dir);
    }
}
