//! `maxrank-cli` — run MaxRank / iMaxRank queries over a CSV file.
//!
//! ```text
//! maxrank-cli --data options.csv --dims 4 --focal 17 [--tau 2] [--algorithm aa|ba|fca|aa2d]
//!             [--threads 4] [--verbose]
//! maxrank-cli --data options.csv --dims 4 --point 0.4,0.7,0.2,0.9
//! maxrank-cli --data options.csv --dims 4 --focals 3,17,29,41 --threads 4
//! maxrank-cli --data options.csv --dims 4 --insert 0.4,0.7,0.2,0.9 --delete 3 --focal 17
//! maxrank-cli --demo                       # run the paper's Figure 1 example
//! ```
//!
//! The CSV is plain comma-separated numeric values, one record per line (an
//! optional header line is skipped automatically); all attributes are
//! interpreted as "larger is better", as in the paper.
//!
//! Multi-focal invocations (`--focals`) run through the `mrq-service` worker
//! pool — `--threads N` picks the pool size — so a what-if study over many
//! focal records shares one index and evaluates in parallel.  For
//! single-focal runs `--threads N` instead shards the within-leaf cell
//! enumeration of that one query (BA / AA); `--verbose` adds the pruning and
//! throughput counters (cells/sec, events pruned) to the report.
//!
//! `--insert x,y,...` (repeatable) and `--delete ID` (repeatable) mutate the
//! dataset after loading, *through* the update machinery: each change goes
//! through `Dataset::apply` and the R\*-tree's incremental insert/delete
//! rather than a reload, exactly as the `UPDATE` verb of `maxrank-serve`
//! does.  Inserts are applied first (ids continue after the loaded records),
//! then deletes; a `--focal`/`--focals` id that was deleted is a friendly
//! error, since its record no longer participates in the ranking.

use maxrank::prelude::*;
use mrq_data::io::read_csv;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    data: Option<PathBuf>,
    dims: Option<usize>,
    focal: Option<u32>,
    focals: Vec<u32>,
    point: Option<Vec<f64>>,
    inserts: Vec<Vec<f64>>,
    deletes: Vec<u32>,
    tau: usize,
    algorithm: Algorithm,
    regions_shown: usize,
    threads: usize,
    verbose: bool,
    demo: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        data: None,
        dims: None,
        focal: None,
        focals: Vec::new(),
        point: None,
        inserts: Vec::new(),
        deletes: Vec::new(),
        tau: 0,
        algorithm: Algorithm::Auto,
        regions_shown: 10,
        threads: 1,
        verbose: false,
        demo: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--data" => args.data = Some(PathBuf::from(it.next().ok_or("--data needs a path")?)),
            "--dims" => {
                args.dims = Some(
                    it.next()
                        .ok_or("--dims needs a value")?
                        .parse()
                        .map_err(|e| format!("--dims: {e}"))?,
                )
            }
            "--focal" => {
                args.focal = Some(
                    it.next()
                        .ok_or("--focal needs a record id")?
                        .parse()
                        .map_err(|e| format!("--focal: {e}"))?,
                )
            }
            "--focals" => {
                let raw = it
                    .next()
                    .ok_or("--focals needs comma-separated record ids")?;
                let ids: Result<Vec<u32>, _> = raw.split(',').map(|c| c.trim().parse()).collect();
                args.focals = ids.map_err(|e| format!("--focals: {e}"))?;
                if args.focals.is_empty() {
                    return Err("--focals needs at least one record id".into());
                }
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if args.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--point" => {
                let raw = it
                    .next()
                    .ok_or("--point needs comma-separated coordinates")?;
                let coords: Result<Vec<f64>, _> =
                    raw.split(',').map(|c| c.trim().parse()).collect();
                args.point = Some(coords.map_err(|e| format!("--point: {e}"))?);
            }
            "--insert" => {
                let raw = it.next().ok_or("--insert needs comma-separated values")?;
                let row: Result<Vec<f64>, _> = raw.split(',').map(|c| c.trim().parse()).collect();
                args.inserts
                    .push(row.map_err(|e| format!("--insert: {e}"))?);
            }
            "--delete" => {
                args.deletes.push(
                    it.next()
                        .ok_or("--delete needs a record id")?
                        .parse()
                        .map_err(|e| format!("--delete: {e}"))?,
                );
            }
            "--tau" => {
                args.tau = it
                    .next()
                    .ok_or("--tau needs a value")?
                    .parse()
                    .map_err(|e| format!("--tau: {e}"))?
            }
            "--algorithm" => {
                args.algorithm = match it.next().ok_or("--algorithm needs a name")?.as_str() {
                    "auto" => Algorithm::Auto,
                    "fca" => Algorithm::Fca,
                    "ba" => Algorithm::BasicApproach,
                    "aa" => Algorithm::AdvancedApproach,
                    "aa2d" => Algorithm::AdvancedApproach2D,
                    other => return Err(format!("unknown algorithm '{other}'")),
                }
            }
            "--regions" => {
                args.regions_shown = it
                    .next()
                    .ok_or("--regions needs a value")?
                    .parse()
                    .map_err(|e| format!("--regions: {e}"))?
            }
            "--verbose" => args.verbose = true,
            "--demo" => args.demo = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    Ok(args)
}

fn usage() -> String {
    "usage: maxrank-cli --data FILE.csv --dims D (--focal ID | --focals ID,ID,.. | --point x1,..,xD) \
     [--insert x1,..,xD]* [--delete ID]* \
     [--tau T] [--algorithm auto|fca|ba|aa|aa2d] [--regions N] [--threads N] [--verbose]\n       \
     maxrank-cli --demo"
        .to_string()
}

/// Applies every `--insert` row and then every `--delete` id through the
/// mutation machinery, mirroring the service's `UPDATE` path:
/// `Dataset::apply` plus — when a tree is given — the R\*-tree's incremental
/// insert/delete (never a reload).  The `--focals` path passes no tree: the
/// service registry bulk-loads its own index over the mutated dataset, so
/// maintaining one here would only duplicate the build.
fn apply_updates(
    data: &mut Dataset,
    mut tree: Option<&mut RStarTree>,
    args: &Args,
) -> Result<(), String> {
    for row in &args.inserts {
        let applied = data
            .apply(&Update::Insert(row.clone()))
            .map_err(|e| format!("--insert {}: {e}", fmt_row(row)))?;
        if let Some(tree) = tree.as_deref_mut() {
            tree.insert(applied.inserted.expect("insert assigns an id"), row);
        }
    }
    for &id in &args.deletes {
        data.apply(&Update::Delete(id))
            .map_err(|e| format!("--delete {id}: {e}"))?;
        if let Some(tree) = tree.as_deref_mut() {
            // A tombstoned slot still exposes its coordinates for the search.
            let found = tree.delete(id, data.record(id));
            debug_assert!(found, "dataset and index disagree on id {id}");
        }
    }
    if !args.inserts.is_empty() || !args.deletes.is_empty() {
        println!(
            "updates applied   : +{} inserted, -{} deleted → {} live records (version {})",
            args.inserts.len(),
            args.deletes.len(),
            data.live_len(),
            data.version()
        );
    }
    Ok(())
}

fn fmt_row(row: &[f64]) -> String {
    row.iter().map(f64::to_string).collect::<Vec<_>>().join(",")
}

/// Evaluates every `--focals` record through the `mrq-service` worker pool
/// (shared index, `--threads` workers) and prints one summary row per focal.
fn run_multi_focal(data: Dataset, args: &Args) -> ExitCode {
    let n = data.len();
    for &id in &args.focals {
        if id as usize >= n {
            eprintln!("--focals {id} out of range (dataset has {n} record ids)");
            return ExitCode::FAILURE;
        }
        if !data.is_live(id) {
            eprintln!(
                "--focals {id} refers to a deleted record (removed by --delete); \
                 pick live focal ids"
            );
            return ExitCode::FAILURE;
        }
    }
    let registry = Arc::new(DatasetRegistry::new());
    if let Err(e) = registry.register_loaded("cli", data) {
        eprintln!("failed to index the dataset: {e}");
        return ExitCode::FAILURE;
    }
    let service = MrqService::new(
        registry,
        ServiceConfig {
            workers: args.threads,
            cache_capacity: args.focals.len(),
            ..ServiceConfig::default()
        },
    );
    // Enqueue everything first so the pool actually runs in parallel (and
    // coalesces same-dataset neighbours), then collect in input order.
    let pending: Result<Vec<_>, _> = args
        .focals
        .iter()
        .map(|&focal| {
            service.enqueue(&QueryRequest {
                algorithm: args.algorithm,
                tau: args.tau,
                ..QueryRequest::new("cli", focal)
            })
        })
        .collect();
    let pending = match pending {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{} focal records over {} worker threads",
        args.focals.len(),
        args.threads
    );
    println!(
        "{:>8}  {:>6}  {:>8}  {:>10}  {:>8}",
        "focal", "k*", "|T|", "cpu_s", "io"
    );
    for (&focal, answer) in args.focals.iter().zip(pending) {
        match answer.wait() {
            Ok(a) => println!(
                "{:>8}  {:>6}  {:>8}  {:>10.4}  {:>8}",
                focal,
                a.result.k_star,
                a.result.region_count(),
                a.result.stats.cpu_time.as_secs_f64(),
                a.result.stats.io_reads
            ),
            Err(e) => {
                eprintln!("focal {focal}: {e}");
                service.shutdown();
                return ExitCode::FAILURE;
            }
        }
    }
    service.shutdown();
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let data = if args.demo {
        // The same Figure-1 dataset `maxrank-serve --demo` registers.
        DatasetSpec::Demo
            .materialize()
            .expect("the demo dataset is embedded")
    } else {
        let Some(path) = &args.data else {
            eprintln!("--data is required (or use --demo)\n{}", usage());
            return ExitCode::FAILURE;
        };
        let Some(dims) = args.dims else {
            eprintln!("--dims is required\n{}", usage());
            return ExitCode::FAILURE;
        };
        match read_csv(path, dims) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("failed to read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    };

    if args.algorithm.requires_2d() && data.dims() != 2 {
        eprintln!(
            "--algorithm {} only supports 2-dimensional data (the dataset has {} attributes); \
             use auto, ba or aa",
            args.algorithm.name(),
            data.dims()
        );
        return ExitCode::FAILURE;
    }

    let mut data = data;

    if !args.focals.is_empty() {
        // The service registry bulk-loads the index over the final dataset
        // state, so the updates only need to reach the dataset here.
        if let Err(msg) = apply_updates(&mut data, None, &args) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
        return run_multi_focal(data, &args);
    }

    // Single-focal/point path: bulk-load once, then mutate the index
    // incrementally — the same insert/delete path the server's UPDATE uses.
    let mut tree = RStarTree::bulk_load(&data);
    if let Err(msg) = apply_updates(&mut data, Some(&mut tree), &args) {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }

    let (focal_point, focal_id) = if args.demo {
        (vec![0.5, 0.5], Some(5u32))
    } else {
        match (&args.point, args.focal) {
            (Some(p), _) => {
                if p.len() != data.dims() {
                    eprintln!(
                        "--point has {} coordinates, expected {}",
                        p.len(),
                        data.dims()
                    );
                    return ExitCode::FAILURE;
                }
                (p.clone(), None)
            }
            (None, Some(id)) => {
                if id as usize >= data.len() {
                    eprintln!(
                        "--focal {id} out of range (dataset has {} record ids)",
                        data.len()
                    );
                    return ExitCode::FAILURE;
                }
                (data.record(id).to_vec(), Some(id))
            }
            (None, None) => {
                eprintln!(
                    "one of --focal, --focals or --point is required\n{}",
                    usage()
                );
                return ExitCode::FAILURE;
            }
        }
    };

    if let Some(id) = focal_id {
        if !data.is_live(id) {
            eprintln!(
                "--focal {id} refers to a deleted record (removed by --delete); \
                 pick a live focal or evaluate it as a what-if --point"
            );
            return ExitCode::FAILURE;
        }
    }

    let engine = MaxRankQuery::new(&data, &tree);
    let config = MaxRankConfig {
        tau: args.tau,
        algorithm: args.algorithm,
        threads: args.threads,
        ..MaxRankConfig::new()
    };
    let result = match focal_id {
        Some(id) => engine.evaluate(id, &config),
        None => engine.evaluate_point(&focal_point, &config),
    };

    println!(
        "dataset           : {} records × {} attributes",
        data.live_len(),
        data.dims()
    );
    println!("focal             : {focal_point:?}");
    println!("k* (best rank)    : {}", result.k_star);
    if args.tau > 0 {
        println!("tau               : {}", args.tau);
    }
    println!("result regions    : {}", result.region_count());
    println!("dominators        : {}", result.stats.dominators);
    println!("records accessed  : {}", result.stats.halfspaces_inserted);
    println!("page reads (I/O)  : {}", result.stats.io_reads);
    println!(
        "cpu time          : {:.3}s",
        result.stats.cpu_time.as_secs_f64()
    );
    if args.verbose {
        let secs = result.stats.cpu_time.as_secs_f64();
        let cells_per_sec = if secs > 0.0 {
            result.stats.cells_tested as f64 / secs
        } else {
            0.0
        };
        println!("threads           : {}", args.threads);
        println!("iterations        : {}", result.stats.iterations);
        println!(
            "cells tested      : {} ({:.0} cells/sec)",
            result.stats.cells_tested, cells_per_sec
        );
        println!(
            "LP calls          : {} (simplex solves: candidates + pair conditions)",
            result.stats.lp_calls
        );
        println!(
            "witness hits      : {} (cells proven non-empty without an LP)",
            result.stats.witness_hits
        );
        println!(
            "subtrees pruned   : {} (combination-search cuts)",
            result.stats.subtrees_pruned
        );
        println!(
            "events pruned     : {} (2-d sweep expansion skips)",
            result.stats.events_pruned
        );
        println!(
            "bitstrings pruned : {} (pairwise containment)",
            result.stats.bitstrings_pruned
        );
        println!("leaves processed  : {}", result.stats.leaves_processed);
    }
    for (i, region) in result.regions.iter().take(args.regions_shown).enumerate() {
        let q = region.representative_query();
        let rounded: Vec<f64> = q
            .iter()
            .map(|w| (w * 10_000.0).round() / 10_000.0)
            .collect();
        println!(
            "  region {:>3}: rank {}  example weights {:?}",
            i + 1,
            region.order,
            rounded
        );
    }
    if result.region_count() > args.regions_shown {
        println!(
            "  … {} more regions (use --regions to show more)",
            result.region_count() - args.regions_shown
        );
    }
    ExitCode::SUCCESS
}
