//! # maxrank — Maximum Rank Query
//!
//! A from-scratch Rust reproduction of **“Maximum Rank Query”** (Mouratidis,
//! Zhang, Pang — PVLDB 8(12), 2015).
//!
//! Given a pool of options (records with numeric attributes) ranked by a
//! linear top-k query, the **MaxRank** query takes a *focal* option and
//! reports:
//!
//! * `k*` — the best rank the option can possibly achieve under *any*
//!   permissible preference vector, and
//! * all the regions of the preference space where that rank is attained
//!   (for **iMaxRank**, all regions where the rank is within `τ` of `k*`).
//!
//! ```
//! use maxrank::prelude::*;
//!
//! // A small catalogue of 2-attribute options (e.g. quality, value-for-money).
//! let data = Dataset::from_rows(2, &[
//!     vec![0.8, 0.9],
//!     vec![0.2, 0.7],
//!     vec![0.9, 0.4],
//!     vec![0.7, 0.2],
//!     vec![0.4, 0.3],
//!     vec![0.5, 0.5], // the focal option
//! ]);
//! let tree = RStarTree::bulk_load(&data);
//! let engine = MaxRankQuery::new(&data, &tree);
//! let result = engine.evaluate(5, &MaxRankConfig::new());
//! assert_eq!(result.k_star, 3);
//! assert_eq!(result.region_count(), 2);
//! // Each region carries a representative preference vector achieving k*.
//! let q = result.regions[0].representative_query();
//! assert_eq!(data.order_of(&[0.5, 0.5], &q), 3);
//! ```
//!
//! The crate is a thin façade over the workspace members:
//!
//! | crate | contents |
//! |---|---|
//! | [`mrq_geometry`] | vectors, half-spaces, LP feasibility, result regions |
//! | [`mrq_data`] | datasets: synthetic benchmarks and simulated real data |
//! | [`mrq_index`] | aggregate R\*-tree, BBS skyline, top-k search |
//! | [`mrq_quadtree`] | the augmented quad-tree over the reduced query space |
//! | [`mrq_core`] | FCA / BA / AA / iMaxRank algorithms |
//! | [`mrq_service`] | long-lived query service: registry, worker pool, cache, loopback protocol |

pub use mrq_core as core;
pub use mrq_data as data;
pub use mrq_geometry as geometry;
pub use mrq_index as index;
pub use mrq_quadtree as quadtree;
pub use mrq_service as service;

pub use mrq_core::{
    Algorithm, MaxRankConfig, MaxRankQuery, MaxRankResult, QueryStats, ResultRegion,
};
pub use mrq_data::{Dataset, Distribution, RealDataset, RecordId, Update, UpdateError};
pub use mrq_index::{order_of, top_k, RStarTree};
pub use mrq_service::{
    DatasetRegistry, DatasetSpec, MrqService, QueryRequest, ServiceConfig, UpdateOutcome,
};

/// Convenience re-exports for examples and downstream users.
pub mod prelude {
    pub use crate::{
        Algorithm, Dataset, DatasetRegistry, DatasetSpec, Distribution, MaxRankConfig,
        MaxRankQuery, MaxRankResult, MrqService, QueryRequest, RStarTree, RealDataset, RecordId,
        ResultRegion, ServiceConfig, Update, UpdateError, UpdateOutcome,
    };
    pub use mrq_core::oracle;
    pub use mrq_index::{order_of, top_k};
}
