//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no route to crates.io, so the workspace vendors
//! the API surface its test suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]` header),
//! * the [`Strategy`] trait with [`Strategy::prop_map`],
//! * strategies for numeric ranges, tuples, [`collection::vec`] and
//!   [`any`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * [`ProptestConfig`] and [`TestCaseError`].
//!
//! Semantics: each property runs `cases` times against a **deterministic**
//! PRNG (seeded from the property's name), so failures are reproducible
//! run-to-run. Unlike the real crate there is **no shrinking** and no failure
//! persistence — a failing case reports the panic from the first offending
//! input. That trade-off keeps the shim tiny while preserving the tests'
//! power to find counterexamples.

use rand::prelude::*;

/// The RNG handed to strategies. A type alias so the [`proptest!`] macro can
/// name it as `$crate::TestRng` from any call site.
pub type TestRng = StdRng;

/// Seeds the deterministic RNG for one property. The property name is folded
/// in (FNV-1a) so distinct properties explore distinct input streams.
pub fn rng_for(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Run-control knobs (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Error type test bodies may return with `?` (mirrors
/// `proptest::test_runner::TestCaseError` loosely). A `Reject` is an
/// assumption failure — the case is skipped, not failed — and the driver
/// counts rejects so a property whose assumption rejects everything aborts
/// instead of passing vacuously.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed.
    Fail(String),
    /// The case's precondition did not hold; draw another input.
    Reject(String),
}

impl TestCaseError {
    /// An explicit failure with a message.
    pub fn fail(msg: impl core::fmt::Display) -> Self {
        TestCaseError::Fail(msg.to_string())
    }

    /// An explicit assumption rejection with a message.
    pub fn reject(msg: impl core::fmt::Display) -> Self {
        TestCaseError::Reject(msg.to_string())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// A generator of random values. The real crate's `Strategy` also drives
/// shrinking; here it is just generation.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filters generated values; draws are retried (up to a cap) until `f`
    /// accepts one.
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive draws");
    }
}

/// A strategy producing a fixed value (mirror of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Types with a canonical "any value" strategy (mirror of
/// `proptest::arbitrary::Arbitrary`, generation only).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_std!(f64, bool, u32, u64, usize);

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u32>() as u16
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>() as i64
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Sizes accepted by [`collection::vec`]: a fixed length or a length range.
pub trait SizeRange {
    /// Draws a concrete length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    /// Generates a `Vec` whose elements come from `elem` and whose length is
    /// drawn from `len` (a `usize` or a range of `usize`).
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so call sites can write `prop::collection::vec(..)`.
pub mod prop {
    pub use crate::collection;
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property; on failure the offending case
/// panics with the formatted message (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Skips the current case when its precondition does not hold. The driver
/// draws a replacement input; too many consecutive rejections abort the
/// property instead of letting it pass vacuously.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

/// Defines property tests. Supported grammar (the subset this workspace
/// uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///
///     /// doc comments and attributes are allowed
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in my_strategy()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
///
/// Each property becomes a `#[test]` that draws `cases` inputs from a
/// deterministic RNG and runs the body, which may use `?` on
/// `Result<_, TestCaseError>`.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                let mut __accepted: u32 = 0;
                let mut __rejected: u32 = 0;
                // Matches the real crate's global-reject budget in spirit:
                // a property whose assumption rejects (almost) every input
                // aborts rather than passing without testing anything.
                let __max_rejects = __config.cases.saturating_mul(20).max(1_000);
                while __accepted < __config.cases {
                    let __outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => __accepted += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            __rejected += 1;
                            if __rejected > __max_rejects {
                                panic!(
                                    "property {}: too many assumption rejections \
                                     ({} rejected, only {}/{} cases executed)",
                                    stringify!($name), __rejected, __accepted, __config.cases
                                );
                            }
                        }
                        ::core::result::Result::Err(e) => {
                            panic!(
                                "property {} failed at case {}/{}: {}",
                                stringify!($name), __accepted + 1, __config.cases, e
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams_per_property() {
        let mut a = crate::rng_for("x::p");
        let mut b = crate::rng_for("x::p");
        let s = crate::collection::vec(0.0f64..1.0, 3usize);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds; prop_map and tuples compose.
        #[test]
        fn shim_machinery_works(
            x in 1usize..10,
            (lo, delta) in (0.0f64..1.0, 0.0f64..0.5),
            v in prop::collection::vec(0u32..100, 1..8),
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(lo + delta < 1.5);
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|e| *e < 100));
        }

        /// prop_assume skips cases without failing them, and the driver
        /// draws replacements so the property still runs `cases` times.
        #[test]
        fn assume_skips(y in 0usize..4) {
            prop_assume!(y != 3);
            prop_assert!(y < 3);
        }

        /// An assumption that rejects every input aborts the property
        /// instead of passing vacuously.
        #[test]
        #[should_panic(expected = "too many assumption rejections")]
        fn impossible_assumption_aborts(x in 0usize..4) {
            prop_assume!(x > 100);
            prop_assert!(x > 100);
        }

        /// `?` on TestCaseError works in bodies.
        #[test]
        fn question_mark_works(z in 0usize..5) {
            Ok::<(), &str>(()).map_err(TestCaseError::fail)?;
            prop_assert!(z < 5);
        }
    }
}
