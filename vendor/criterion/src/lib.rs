//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no route to crates.io, so the workspace vendors
//! the API surface its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup`] knobs (`sample_size`, `warm_up_time`,
//! `measurement_time`), [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, then runs
//! timed batches until `measurement_time` elapses or `sample_size` samples
//! are collected, and prints `min / mean / max` nanoseconds per iteration.
//! There is no statistical analysis, plotting, or baseline comparison — the
//! numbers are honest wall-clock means, sufficient for the A/B comparisons
//! the workspace benches make.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendered as `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Runs a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("(ungrouped)");
        group.bench_function(id, |b| f(b));
        group.finish();
        self
    }
}

/// A set of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples to collect (min 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long to run the routine untimed before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the wall-clock budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    /// Benchmarks `f` with an input value (the input is passed by reference).
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra; kept for API parity).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.id);
    }
}

/// Drives the measured routine.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, discarding its output via [`black_box`].
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        // Pick an iteration count per sample so one sample is ≥ ~1ms but the
        // whole measurement respects the time budget.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters_per_sample = ((1e-3 / per_iter.max(1e-9)).ceil() as u64).max(1);
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = t.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64;
            self.samples_ns.push(ns);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples_ns.is_empty() {
            eprintln!("  {group}/{id}: no samples collected");
            return;
        }
        let n = self.samples_ns.len() as f64;
        let mean = self.samples_ns.iter().sum::<f64>() / n;
        let min = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().cloned().fold(0.0f64, f64::max);
        eprintln!(
            "  {group}/{id}: min {} / mean {} / max {}  ({} samples)",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            self.samples_ns.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("AA", 500).id, "AA/500");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
