//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no route to crates.io, so the workspace vendors
//! the *exact* API surface its members use — nothing more:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit PRNG (xoshiro256\*\* seeded via
//!   SplitMix64, the same construction the real `StdRng`'s default seeding
//!   pipeline is built on),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! * a [`prelude`] mirroring `rand::prelude`.
//!
//! The statistical quality is more than sufficient for tests, synthetic data
//! generation and benchmarks; the shim is **not** cryptographically secure.
//! Swap it for the real crate by deleting `vendor/rand` and the corresponding
//! `[workspace.dependencies]` path entry once network access exists.

/// Core trait: a source of uniformly distributed 64-bit values.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random-value methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its canonical uniform distribution
    /// (`f64` in `[0, 1)`, integers over their full range, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty, matching the real crate.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their canonical uniform distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges usable with [`Rng::gen_range`]. `T` is the element type; making it
/// a trait parameter (rather than an associated type) lets integer-literal
/// ranges unify with the expected output type, as in the real crate.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

// Unbiased integer sampling via rejection from a widened modulus (Lemire-style
// masking would be faster; rejection keeps the shim obviously correct).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full u64 domain
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256\*\* with
    /// SplitMix64 seed expansion (Blackman & Vigna).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Mirror of `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            seen_lo |= v == 3;
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&i));
        }
        assert!(seen_lo);
    }

    #[test]
    fn bool_is_fair_enough() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "{heads} heads");
    }
}
