//! Customer profiling / targeted advertising with iMaxRank.
//!
//! The second application from the paper's introduction: the regions of the
//! preference space where an option ranks at (or near) its best describe the
//! preference profiles of its most likely customers.  With a probability
//! distribution over preferences, the region volumes estimate the probability
//! that the option achieves its best rank — here we use a uniform preference
//! distribution and Monte-Carlo volume estimation over the reported regions.
//!
//! Run with: `cargo run --release --example customer_profiling`

use maxrank::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // Simulated NBA player statistics (8 attributes), sub-sampled for speed.
    let data = RealDataset::Nba.generate_scaled(0.05, &mut rng);
    let tree = RStarTree::bulk_load(&data);
    let engine = MaxRankQuery::new(&data, &tree);
    println!(
        "pool: {} players, {} performance attributes (simulated NBA)",
        data.len(),
        data.dims()
    );

    let focal: RecordId = 42 % data.len() as u32;
    println!("focal player: {:?}", data.record(focal));

    // Plain MaxRank first, then widen with iMaxRank to capture "almost best"
    // preference profiles for a broader advertising campaign.
    for tau in [0usize, 2] {
        let result = engine.evaluate(focal, &MaxRankConfig::with_tau(tau));
        println!("\n== τ = {tau} ==");
        println!("best attainable rank k*     : {}", result.k_star);
        println!("regions with rank ≤ k*+τ    : {}", result.region_count());

        // Estimate how much of the preference simplex the regions cover — a
        // proxy for the probability that a uniformly random customer ranks the
        // focal player at (or near) his best, as discussed in the paper's
        // introduction.
        let simplex_volume = 1.0 / factorial(data.dims() - 1); // volume of the unit simplex in d-1 dims
        let covered: f64 = result
            .regions
            .iter()
            .map(|r| r.region.estimate_volume(&mut rng, 2_000))
            .sum();
        println!(
            "covered preference mass     : {:.4} of the permissible simplex",
            (covered / simplex_volume).min(1.0)
        );

        // Show one representative profile per distinct rank.
        let mut shown = std::collections::BTreeSet::new();
        for region in &result.regions {
            if shown.insert(region.order) {
                let q = region.representative_query();
                let rounded: Vec<f64> = q.iter().map(|w| (w * 1000.0).round() / 1000.0).collect();
                println!("  rank {} profile example   : {:?}", region.order, rounded);
            }
        }
    }
}

fn factorial(n: usize) -> f64 {
    (1..=n).map(|x| x as f64).product::<f64>().max(1.0)
}
