//! Market-impact analysis on the (simulated) HOTEL dataset.
//!
//! The motivating scenario of the paper's introduction: a hotel owner wants
//! to know the best rank her hotel can achieve among all competitors on a
//! booking portal, and which customer preference profiles put it there.
//! A "what-if" variant re-evaluates the query for hypothetical re-pricings
//! of the hotel before committing to one.
//!
//! Run with: `cargo run --release --example hotel_market_impact`

use maxrank::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2015);
    // A 1% sample of the simulated HOTEL dataset keeps the example fast
    // (~4,200 hotels, 4 attributes: stars, price, rooms, facilities — all
    // normalised so that larger is better).
    let data = RealDataset::Hotel.generate_scaled(0.01, &mut rng);
    let tree = RStarTree::bulk_load(&data);
    let engine = MaxRankQuery::new(&data, &tree);
    println!(
        "catalogue: {} hotels, {} attributes (simulated HOTEL)",
        data.len(),
        data.dims()
    );

    // Pick a mid-market hotel as the focal option.
    let focal: RecordId = 1234 % data.len() as u32;
    let result = engine.evaluate(focal, &MaxRankConfig::new());
    println!("\nfocal hotel {:?}", data.record(focal));
    println!("best attainable rank       : {}", result.k_star);
    println!("preference regions at best : {}", result.region_count());
    println!(
        "records accessed by AA     : {} (of {} in the catalogue)",
        result.stats.halfspaces_inserted,
        data.len()
    );
    println!("simulated page reads (I/O) : {}", result.stats.io_reads);

    // Which customer profile is the hotel most attractive to?  Show the
    // attribute the best regions weight the most.
    let names = ["stars", "price", "rooms", "facilities"];
    if let Some(region) = result.regions.first() {
        let q = region.representative_query();
        let best_attr = q
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| names[i])
            .unwrap();
        println!("\na representative best-case preference profile: {q:?}");
        println!("=> the hotel appeals most to customers who weight '{best_attr}' highest");
    }

    // What-if analysis: would improving the value-for-money attribute by 10%
    // improve the best attainable rank?  (The focal point no longer belongs
    // to the dataset, which MaxRank supports directly.)
    let mut improved = data.record(focal).to_vec();
    improved[1] = (improved[1] + 0.1).min(1.0);
    let what_if = engine.evaluate_point(&improved, &MaxRankConfig::new());
    println!("\nwhat-if: improving attribute 'price' by 0.1");
    println!("  current best rank : {}", result.k_star);
    println!("  what-if best rank : {}", what_if.k_star);
    assert!(
        what_if.k_star <= result.k_star,
        "improving an attribute can never hurt the best rank"
    );
}
