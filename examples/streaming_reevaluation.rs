//! Re-evaluating MaxRank as the option pool changes.
//!
//! Competitors enter the market over time.  This example maintains the
//! R\*-tree incrementally (one-by-one R\* insertions) and re-runs MaxRank for
//! the same focal option after each batch of arrivals, tracking how its best
//! attainable rank and its best-case preference regions erode — the
//! "market impact over time" reading of the paper's motivation.
//!
//! Run with: `cargo run --release --example streaming_reevaluation`

use maxrank::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let dims = 3;
    // Initial market: 2,000 independent options.
    let mut data = Dataset::new(dims);
    let mut tree = RStarTree::new(dims);
    let initial = mrq_data::synthetic::generate(Distribution::Independent, 2_000, dims, &mut rng);
    for (_, r) in initial.iter() {
        let id = data.push(r);
        tree.insert(id, r);
    }

    // The focal option sits comfortably above the median in every attribute.
    let focal_point = vec![0.75, 0.7, 0.72];
    let focal_id = data.push(&focal_point);
    tree.insert(focal_id, &focal_point);

    println!("initial market: {} options, d = {dims}", data.len());
    println!("focal option  : {focal_point:?}\n");
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>10}",
        "arrivals", "k*", "|T|", "records", "page I/O"
    );

    let mut arrivals = 0usize;
    for batch in 0..6 {
        if batch > 0 {
            // 500 new competitors arrive, drawn from a correlated distribution
            // (the market matures: new options are competitive across the
            // board).
            for _ in 0..500 {
                let r: Vec<f64> = {
                    let level: f64 = 0.5 + 0.2 * (rng.gen::<f64>() - 0.5);
                    (0..dims)
                        .map(|_| (level + 0.15 * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0))
                        .collect()
                };
                let id = data.push(&r);
                tree.insert(id, &r);
                arrivals += 1;
            }
        }
        tree.check_invariants()
            .expect("index stays consistent under insertions");
        let engine = MaxRankQuery::new(&data, &tree);
        let result = engine.evaluate(focal_id, &MaxRankConfig::new());
        println!(
            "{:>8} {:>8} {:>10} {:>12} {:>10}",
            arrivals,
            result.k_star,
            result.region_count(),
            result.stats.halfspaces_inserted,
            result.stats.io_reads
        );
    }

    println!("\nAs competitors accumulate, k* (the best attainable rank) can only stay or grow,");
    println!("while the preference regions where the focal option shines shift and shrink.");
}
