//! Quickstart: the running example of the paper (Figure 1).
//!
//! Five hotels are rated on two criteria (quality `d1`, value-for-money
//! `d2`).  The focal hotel is `p = (0.5, 0.5)`.  MaxRank reports the best
//! rank `p` can achieve under any preference weighting and the weightings
//! that achieve it.
//!
//! Run with: `cargo run --release --example quickstart`

use maxrank::prelude::*;

fn main() {
    // Figure 1(a) of the paper.
    let data = Dataset::from_rows(
        2,
        &[
            vec![0.8, 0.9], // r1
            vec![0.2, 0.7], // r2
            vec![0.9, 0.4], // r3
            vec![0.7, 0.2], // r4
            vec![0.4, 0.3], // r5
            vec![0.5, 0.5], // p — the focal hotel
        ],
    );
    let tree = RStarTree::bulk_load(&data);
    let engine = MaxRankQuery::new(&data, &tree);

    println!("== MaxRank quickstart (paper, Figure 1) ==");
    let focal = 5u32;
    let result = engine.evaluate(focal, &MaxRankConfig::new());
    println!("focal record        : {:?}", data.record(focal));
    println!("best attainable rank: k* = {}", result.k_star);
    println!("regions attaining it: {}", result.region_count());
    for (i, region) in result.regions.iter().enumerate() {
        let q = region.representative_query();
        println!(
            "  region {}: q1 in ({:.3}, {:.3})  e.g. weights = ({:.3}, {:.3})",
            i + 1,
            region.region.bounds.lo[0],
            region.region.bounds.hi[0],
            q[0],
            q[1]
        );
        println!(
            "            rank of p under those weights = {}",
            data.order_of(data.record(focal), &q)
        );
    }

    // iMaxRank: where is p within one position of its best rank?
    let relaxed = engine.evaluate(focal, &MaxRankConfig::with_tau(1));
    println!("\n== iMaxRank with τ = 1 ==");
    println!(
        "regions where p ranks within [k*, k*+1]: {}",
        relaxed.region_count()
    );
    for region in &relaxed.regions {
        println!(
            "  q1 in ({:.3}, {:.3}) -> rank {}",
            region.region.bounds.lo[0], region.region.bounds.hi[0], region.order
        );
    }

    // Cross-check against a plain top-k evaluation.
    let q = result.regions[0].representative_query();
    let topk = top_k(&tree, &q, result.k_star);
    println!(
        "\nTop-{} under the first region's representative weights: {:?}",
        result.k_star, topk.ids
    );
    assert!(topk.ids.contains(&focal));
}
