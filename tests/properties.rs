//! Cross-crate property-based tests: for random datasets and focal records,
//! the MaxRank algorithms must agree with each other and with independent
//! oracles.

use maxrank::prelude::*;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn dataset_strategy(d: usize, max_n: usize) -> impl Strategy<Value = (Dataset, u32)> {
    (10usize..max_n, any::<u64>()).prop_map(move |(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = match seed % 3 {
            0 => Distribution::Independent,
            1 => Distribution::Correlated,
            _ => Distribution::AntiCorrelated,
        };
        let data = mrq_data::synthetic::generate(dist, n, d, &mut rng);
        let focal = (seed % n as u64) as u32;
        (data, focal)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// In 2-d, FCA, the specialised AA and the general (quad-tree) AA agree
    /// on k* and their witnesses achieve it.
    #[test]
    fn d2_algorithms_agree((data, focal) in dataset_strategy(2, 120)) {
        let tree = RStarTree::bulk_load(&data);
        let engine = MaxRankQuery::new(&data, &tree);
        let fca = engine.evaluate(focal, &MaxRankConfig::new().with_algorithm(Algorithm::Fca));
        let aa2d = engine.evaluate(focal, &MaxRankConfig::new().with_algorithm(Algorithm::AdvancedApproach2D));
        let aa = engine.evaluate(focal, &MaxRankConfig::new().with_algorithm(Algorithm::AdvancedApproach));
        prop_assert_eq!(fca.k_star, aa2d.k_star);
        prop_assert_eq!(fca.k_star, aa.k_star);
        let p = data.record(focal);
        for region in aa2d.regions.iter().chain(&aa.regions).chain(&fca.regions) {
            let q = region.representative_query();
            prop_assert_eq!(data.order_of(p, &q), region.order);
        }
    }

    /// In 3-d, BA and AA agree with each other, their witnesses achieve k*,
    /// and no sampled query vector ever achieves a better order than k*.
    #[test]
    fn d3_exact_and_bounded((data, focal) in dataset_strategy(3, 60)) {
        let tree = RStarTree::bulk_load(&data);
        let engine = MaxRankQuery::new(&data, &tree);
        let aa = engine.evaluate(focal, &MaxRankConfig::new());
        let ba = engine.evaluate(focal, &MaxRankConfig::new().with_algorithm(Algorithm::BasicApproach));
        prop_assert_eq!(aa.k_star, ba.k_star);
        let p = data.record(focal);
        for region in aa.regions.iter().chain(&ba.regions) {
            let q = region.representative_query();
            prop_assert_eq!(data.order_of(p, &q), aa.k_star);
        }
        let mut rng = StdRng::seed_from_u64(focal as u64);
        let (sampled, _) = oracle::sampled_min_order(&data, p, 2000, &mut rng);
        prop_assert!(sampled >= aa.k_star);
    }

    /// iMaxRank region orders always lie in [k*, k*+tau] and every region
    /// witness achieves exactly its region's order (any dimension 2..4).
    #[test]
    fn imaxrank_region_invariants(
        (data, focal) in dataset_strategy(3, 80),
        tau in 0usize..3,
    ) {
        let tree = RStarTree::bulk_load(&data);
        let engine = MaxRankQuery::new(&data, &tree);
        let res = engine.evaluate(focal, &MaxRankConfig::with_tau(tau));
        prop_assert!(!res.regions.is_empty());
        let p = data.record(focal);
        for region in &res.regions {
            prop_assert!(region.order >= res.k_star);
            prop_assert!(region.order <= res.k_star + tau);
            let q = region.representative_query();
            prop_assert_eq!(data.order_of(p, &q), region.order);
            // The representative query must be permissible.
            prop_assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(q.iter().all(|w| *w > 0.0));
        }
    }

    /// k* is monotone under component-wise improvement of the focal point.
    #[test]
    fn improving_attributes_never_hurts((data, focal) in dataset_strategy(4, 80), attr in 0usize..4) {
        let tree = RStarTree::bulk_load(&data);
        let engine = MaxRankQuery::new(&data, &tree);
        let base = engine.evaluate(focal, &MaxRankConfig::new());
        let mut improved = data.record(focal).to_vec();
        improved[attr] = (improved[attr] + 0.3).min(1.0);
        let better = engine.evaluate_point(&improved, &MaxRankConfig::new());
        prop_assert!(better.k_star <= base.k_star);
    }
}
