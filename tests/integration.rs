//! Integration tests spanning the whole workspace: data generation, index
//! construction, MaxRank evaluation with every algorithm, and validation of
//! the answers against independent oracles.

use maxrank::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn build(dist: Distribution, n: usize, d: usize, seed: u64) -> (Dataset, RStarTree) {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = mrq_data::synthetic::generate(dist, n, d, &mut rng);
    let tree = RStarTree::bulk_load(&data);
    (data, tree)
}

#[test]
fn paper_figure1_end_to_end() {
    let data = Dataset::from_rows(
        2,
        &[
            vec![0.8, 0.9],
            vec![0.2, 0.7],
            vec![0.9, 0.4],
            vec![0.7, 0.2],
            vec![0.4, 0.3],
            vec![0.5, 0.5],
        ],
    );
    let tree = RStarTree::bulk_load(&data);
    let engine = MaxRankQuery::new(&data, &tree);
    for algorithm in [
        Algorithm::Auto,
        Algorithm::Fca,
        Algorithm::BasicApproach,
        Algorithm::AdvancedApproach,
        Algorithm::AdvancedApproach2D,
    ] {
        let res = engine.evaluate(5, &MaxRankConfig::new().with_algorithm(algorithm));
        assert_eq!(res.k_star, 3, "{algorithm:?}");
        // All reported witnesses really achieve rank 3.
        for region in &res.regions {
            let q = region.representative_query();
            assert_eq!(data.order_of(&[0.5, 0.5], &q), 3, "{algorithm:?}");
        }
    }
}

#[test]
fn algorithms_agree_across_dimensions_and_distributions() {
    for (d, dist, seed) in [
        (2, Distribution::Independent, 1u64),
        (3, Distribution::Correlated, 2),
        (3, Distribution::AntiCorrelated, 3),
        (4, Distribution::Independent, 4),
    ] {
        let (data, tree) = build(dist, 150, d, seed);
        let engine = MaxRankQuery::new(&data, &tree);
        let mut rng = StdRng::seed_from_u64(seed + 100);
        for _ in 0..3 {
            let focal = rng.gen_range(0..data.len() as u32);
            let aa = engine.evaluate(focal, &MaxRankConfig::new());
            let ba = engine.evaluate(
                focal,
                &MaxRankConfig::new().with_algorithm(Algorithm::BasicApproach),
            );
            assert_eq!(aa.k_star, ba.k_star, "d={d} dist={dist:?} focal={focal}");
            // The sampling oracle can never do better than the exact optimum.
            let (sampled, _) = oracle::sampled_min_order(&data, data.record(focal), 3000, &mut rng);
            assert!(sampled >= aa.k_star);
        }
    }
}

#[test]
fn exhaustive_oracle_agrees_on_small_inputs() {
    for d in [2usize, 3, 4] {
        let (data, tree) = build(Distribution::Independent, 30, d, d as u64 * 7);
        let engine = MaxRankQuery::new(&data, &tree);
        // The exhaustive oracle enumerates bit-strings up to weight k*, so it
        // is only tractable for focal records that can rank well; take the
        // three records with the highest attribute sums.
        let mut by_sum: Vec<(f64, u32)> = data
            .iter()
            .map(|(id, r)| (r.iter().sum::<f64>(), id))
            .collect();
        by_sum.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        for &(_, focal) in by_sum.iter().take(3) {
            let fast = engine.evaluate(focal, &MaxRankConfig::new());
            let exact = oracle::exhaustive(&data, data.record(focal), Some(focal), 0);
            assert_eq!(fast.k_star, exact.k_star, "d={d} focal={focal}");
        }
    }
}

#[test]
fn imaxrank_results_are_consistent_supersets() {
    let (data, tree) = build(Distribution::AntiCorrelated, 120, 3, 42);
    let engine = MaxRankQuery::new(&data, &tree);
    let focal = 17u32;
    let mut previous_regions = 0usize;
    for tau in 0..4usize {
        let res = engine.evaluate(focal, &MaxRankConfig::with_tau(tau));
        assert!(res.region_count() >= previous_regions, "τ={tau}");
        previous_regions = res.region_count();
        for region in &res.regions {
            assert!(region.order >= res.k_star && region.order <= res.k_star + tau);
            let q = region.representative_query();
            assert_eq!(data.order_of(data.record(focal), &q), region.order);
        }
    }
}

#[test]
fn query_top_k_and_maxrank_are_mutually_consistent() {
    // If MaxRank says the best attainable rank of p is k*, then (a) p appears
    // in the top-k* result at a witness query vector, and (b) p never appears
    // in any top-(k*-1) result over a large random probe set.
    let (data, tree) = build(Distribution::Independent, 500, 3, 77);
    let engine = MaxRankQuery::new(&data, &tree);
    let focal = 99u32;
    let res = engine.evaluate(focal, &MaxRankConfig::new());
    let witness = res.regions[0].representative_query();
    let at_witness = top_k(&tree, &witness, res.k_star);
    assert!(at_witness.ids.contains(&focal));

    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..500 {
        let mut q: Vec<f64> = (0..3).map(|_| rng.gen::<f64>() + 1e-9).collect();
        let s: f64 = q.iter().sum();
        q.iter_mut().for_each(|x| *x /= s);
        if res.k_star > 1 {
            let shortlist = top_k(&tree, &q, res.k_star - 1);
            assert!(
                !shortlist.ids.contains(&focal),
                "p must never crack the top-{}",
                res.k_star - 1
            );
        }
    }
}

#[test]
fn simulated_real_datasets_run_end_to_end() {
    let mut rng = StdRng::seed_from_u64(2015);
    for ds in [RealDataset::Hotel, RealDataset::Nba] {
        let data = ds.generate_scaled(0.002, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        tree.check_invariants().unwrap();
        let engine = MaxRankQuery::new(&data, &tree);
        // A mid-pack focal in 8-d has k* in the tens, which makes the cell
        // enumeration combinatorially infeasible (the paper reports ~1000 s
        // per query at d = 8); take a record from the top of the attribute-sum
        // order so k* stays small, as exhaustive_oracle_agrees_on_small_inputs
        // does.
        let mut by_sum: Vec<(f64, u32)> = data
            .iter()
            .map(|(id, r)| (r.iter().sum::<f64>(), id))
            .collect();
        by_sum.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let focal = by_sum[2].1;
        let res = engine.evaluate(focal, &MaxRankConfig::new());
        assert!(res.k_star >= 1 && res.k_star <= data.len());
        assert!(!res.regions.is_empty());
        for region in res.regions.iter().take(3) {
            let q = region.representative_query();
            assert_eq!(data.order_of(data.record(focal), &q), res.k_star);
        }
    }
}

#[test]
fn incremental_index_matches_bulk_loaded_index() {
    let (data, bulk) = build(Distribution::Correlated, 400, 3, 11);
    let mut incremental = RStarTree::new(3);
    for (id, r) in data.iter() {
        incremental.insert(id, r);
    }
    incremental.check_invariants().unwrap();
    let engine_bulk = MaxRankQuery::new(&data, &bulk);
    let engine_incr = MaxRankQuery::new(&data, &incremental);
    for focal in [5u32, 200, 399] {
        let a = engine_bulk.evaluate(focal, &MaxRankConfig::new());
        let b = engine_incr.evaluate(focal, &MaxRankConfig::new());
        assert_eq!(a.k_star, b.k_star, "focal {focal}");
    }
}

#[test]
fn what_if_improvement_never_hurts() {
    let (data, tree) = build(Distribution::Independent, 300, 4, 123);
    let engine = MaxRankQuery::new(&data, &tree);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..5 {
        let focal = rng.gen_range(0..data.len() as u32);
        let base = engine.evaluate(focal, &MaxRankConfig::new());
        let mut improved = data.record(focal).to_vec();
        let attr = rng.gen_range(0..4usize);
        improved[attr] = (improved[attr] + 0.2).min(1.0);
        let better = engine.evaluate_point(&improved, &MaxRankConfig::new());
        assert!(better.k_star <= base.k_star);
    }
}
