//! Minimal CSV persistence for datasets and experiment output.
//!
//! Keeps the workspace free of CSV dependencies; the format is plain
//! comma-separated `f64` values, one record per line, with an optional
//! one-line header.

use crate::dataset::Dataset;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors produced by dataset (de)serialisation.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A cell could not be parsed as `f64`, or a row had the wrong arity.
    Parse { line: usize, message: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes the dataset as CSV.  When `header` is true a `d1,d2,…` header line
/// is emitted first.
pub fn write_csv(data: &Dataset, path: &Path, header: bool) -> Result<(), IoError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    if header {
        let cols: Vec<String> = (1..=data.dims()).map(|i| format!("d{i}")).collect();
        writeln!(w, "{}", cols.join(","))?;
    }
    let mut line = String::new();
    for (_, r) in data.iter() {
        line.clear();
        for (i, v) in r.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("{v}"));
        }
        writeln!(w, "{line}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a CSV file produced by [`write_csv`] (or any numeric CSV with the
/// given dimensionality).  Lines starting with a non-numeric first cell are
/// treated as headers and skipped.
pub fn read_csv(path: &Path, dims: usize) -> Result<Dataset, IoError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut data = Dataset::new(dims);
    let mut row = Vec::with_capacity(dims);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        row.clear();
        let mut header_like = false;
        for (i, cell) in trimmed.split(',').enumerate() {
            match cell.trim().parse::<f64>() {
                Ok(v) => row.push(v),
                Err(_) if lineno == 0 && i == 0 => {
                    header_like = true;
                    break;
                }
                Err(e) => {
                    return Err(IoError::Parse {
                        line: lineno + 1,
                        message: format!("cell {i}: {e}"),
                    })
                }
            }
        }
        if header_like {
            continue;
        }
        if row.len() != dims {
            return Err(IoError::Parse {
                line: lineno + 1,
                message: format!("expected {dims} cells, found {}", row.len()),
            });
        }
        data.push(&row);
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, Distribution};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn roundtrip_with_header() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = generate(Distribution::Independent, 50, 3, &mut rng);
        let dir = std::env::temp_dir().join("mrq_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        write_csv(&ds, &path, true).unwrap();
        let back = read_csv(&path, 3).unwrap();
        assert_eq!(ds.len(), back.len());
        for ((_, a), (_, b)) in ds.iter().zip(back.iter()) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_without_header() {
        let ds = Dataset::from_rows(2, &[vec![0.25, 0.75], vec![1.0, 0.0]]);
        let dir = std::env::temp_dir().join("mrq_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("noheader.csv");
        write_csv(&ds, &path, false).unwrap();
        let back = read_csv(&path, 2).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.record(0), &[0.25, 0.75]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_arity_is_reported() {
        let dir = std::env::temp_dir().join("mrq_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "0.1,0.2\n0.3\n").unwrap();
        let err = read_csv(&path, 2).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_csv(Path::new("/nonexistent/definitely_missing.csv"), 2).unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
        assert!(format!("{err}").contains("I/O error"));
    }

    #[test]
    fn unparsable_cell_is_reported() {
        let dir = std::env::temp_dir().join("mrq_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nan_text.csv");
        std::fs::write(&path, "0.1,0.2\n0.3,abc\n").unwrap();
        let err = read_csv(&path, 2).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 2, .. }));
        std::fs::remove_file(&path).ok();
    }
}
