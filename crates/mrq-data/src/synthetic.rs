//! Synthetic benchmark data generators: Independent, Correlated and
//! Anti-correlated distributions.
//!
//! These are the standard preference-query benchmarks introduced by the
//! skyline literature (Börzsönyi et al., cited as \[5\] in the paper) and used
//! throughout Section 8 of the MaxRank evaluation:
//!
//! * **IND** — every attribute i.i.d. uniform in `[0, 1]`;
//! * **COR** — records concentrate around the main diagonal: a record that is
//!   good in one attribute tends to be good in all;
//! * **ANTI** — records concentrate around the anti-diagonal hyperplane
//!   `Σ x_i ≈ d/2`: a record that is good in one attribute tends to be bad in
//!   the others.

use crate::dataset::Dataset;
use rand::Rng;

/// The three benchmark distributions of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Independent, uniform attributes.
    Independent,
    /// Correlated attributes (diagonal concentration).
    Correlated,
    /// Anti-correlated attributes (anti-diagonal concentration).
    AntiCorrelated,
}

impl Distribution {
    /// Short label used in experiment output ("IND", "COR", "ANTI").
    pub fn label(&self) -> &'static str {
        match self {
            Distribution::Independent => "IND",
            Distribution::Correlated => "COR",
            Distribution::AntiCorrelated => "ANTI",
        }
    }

    /// All three distributions, in the order the paper plots them.
    pub fn all() -> [Distribution; 3] {
        [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::AntiCorrelated,
        ]
    }
}

/// Standard-normal sample via the Box–Muller transform (keeps the workspace
/// free of extra distribution crates).
fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// Generates `n` records of dimensionality `d` from the given distribution.
pub fn generate<R: Rng>(dist: Distribution, n: usize, d: usize, rng: &mut R) -> Dataset {
    let mut ds = Dataset::with_capacity(d, n);
    let mut row = vec![0.0; d];
    for _ in 0..n {
        match dist {
            Distribution::Independent => {
                for v in row.iter_mut() {
                    *v = rng.gen();
                }
            }
            Distribution::Correlated => {
                // A common "quality" level on the diagonal plus small
                // per-attribute jitter.
                let level = clamp01(0.5 + 0.2 * normal(rng));
                for v in row.iter_mut() {
                    *v = clamp01(level + 0.05 * normal(rng));
                }
            }
            Distribution::AntiCorrelated => {
                // Total budget close to d/2; attributes split the budget so
                // that being high in one dimension forces others low.
                let budget = (0.5 * d as f64 + 0.1 * normal(rng)).max(0.05);
                // Sample a random composition of the budget.
                let mut weights: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() + 1e-9).collect();
                let s: f64 = weights.iter().sum();
                weights.iter_mut().for_each(|w| *w /= s);
                for (v, w) in row.iter_mut().zip(&weights) {
                    *v = clamp01(w * budget);
                }
            }
        }
        ds.push(&row);
    }
    ds
}

/// Picks `count` focal-record ids uniformly at random (the paper averages
/// every measurement over 40 randomly selected focal records).
pub fn random_focal_ids<R: Rng>(data: &Dataset, count: usize, rng: &mut R) -> Vec<u32> {
    let n = data.len() as u32;
    assert!(n > 0, "cannot select focal records from an empty dataset");
    (0..count).map(|_| rng.gen_range(0..n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        cov / (vx.sqrt() * vy.sqrt())
    }

    fn columns(ds: &Dataset) -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = ds.iter().map(|(_, r)| r[0]).collect();
        let ys: Vec<f64> = ds.iter().map(|(_, r)| r[1]).collect();
        (xs, ys)
    }

    #[test]
    fn generates_requested_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        for dist in Distribution::all() {
            let ds = generate(dist, 500, 4, &mut rng);
            assert_eq!(ds.len(), 500);
            assert_eq!(ds.dims(), 4);
            for (_, r) in ds.iter() {
                assert!(r.iter().all(|v| (0.0..=1.0).contains(v)));
            }
        }
    }

    #[test]
    fn independent_attributes_nearly_uncorrelated() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = generate(Distribution::Independent, 4000, 2, &mut rng);
        let (xs, ys) = columns(&ds);
        assert!(pearson(&xs, &ys).abs() < 0.1);
    }

    #[test]
    fn correlated_attributes_positively_correlated() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = generate(Distribution::Correlated, 4000, 2, &mut rng);
        let (xs, ys) = columns(&ds);
        assert!(pearson(&xs, &ys) > 0.6, "got {}", pearson(&xs, &ys));
    }

    #[test]
    fn anticorrelated_attributes_negatively_correlated() {
        let mut rng = StdRng::seed_from_u64(4);
        let ds = generate(Distribution::AntiCorrelated, 4000, 2, &mut rng);
        let (xs, ys) = columns(&ds);
        assert!(pearson(&xs, &ys) < -0.5, "got {}", pearson(&xs, &ys));
    }

    #[test]
    fn anticorrelated_has_larger_skyline_than_correlated() {
        // The classic qualitative property exploited throughout Section 8:
        // ANTI has many skyline records, COR very few.
        use crate::dominance::naive_skyline;
        let mut rng = StdRng::seed_from_u64(5);
        let n = 1500;
        let cor = generate(Distribution::Correlated, n, 3, &mut rng);
        let anti = generate(Distribution::AntiCorrelated, n, 3, &mut rng);
        let ids: Vec<u32> = (0..n as u32).collect();
        let sky_cor = naive_skyline(&cor, &ids).len();
        let sky_anti = naive_skyline(&anti, &ids).len();
        assert!(
            sky_anti > 3 * sky_cor,
            "ANTI skyline {sky_anti} should dwarf COR skyline {sky_cor}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = generate(
            Distribution::Independent,
            50,
            3,
            &mut StdRng::seed_from_u64(9),
        );
        let b = generate(
            Distribution::Independent,
            50,
            3,
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn random_focal_ids_in_range() {
        let mut rng = StdRng::seed_from_u64(10);
        let ds = generate(Distribution::Independent, 100, 2, &mut rng);
        let ids = random_focal_ids(&ds, 40, &mut rng);
        assert_eq!(ids.len(), 40);
        assert!(ids.iter().all(|&i| (i as usize) < ds.len()));
    }

    #[test]
    fn distribution_labels() {
        assert_eq!(Distribution::Independent.label(), "IND");
        assert_eq!(Distribution::Correlated.label(), "COR");
        assert_eq!(Distribution::AntiCorrelated.label(), "ANTI");
    }
}
