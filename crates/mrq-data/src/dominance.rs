//! Dominance relationships and focal-record partitioning.
//!
//! Section 5 of the paper prunes the dataset around the focal record `p`:
//! records that *dominate* `p` always outrank it (they only increment `k*`),
//! records *dominated by* `p` never outrank it (they are discarded), and only
//! the remaining *incomparable* records shape the half-space arrangement.

use crate::dataset::{Dataset, RecordId};

/// Relationship of a record `r` with a focal record `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomRelation {
    /// `r` dominates `p`: `r_i ≥ p_i` for all `i` and `r ≠ p`.
    Dominates,
    /// `r` is dominated by `p`.
    DominatedBy,
    /// Neither dominates the other.
    Incomparable,
    /// `r` and `p` coincide in every attribute.
    Equal,
}

/// `true` iff `a` dominates `b`: every attribute of `a` is no smaller and the
/// records are not identical (higher attribute values are preferred, matching
/// the paper's score convention).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly_greater = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strictly_greater = true;
        }
    }
    strictly_greater
}

/// Classifies record `r` against the focal record `p`.
pub fn classify(r: &[f64], p: &[f64]) -> DomRelation {
    if dominates(r, p) {
        DomRelation::Dominates
    } else if dominates(p, r) {
        DomRelation::DominatedBy
    } else if r == p {
        DomRelation::Equal
    } else {
        DomRelation::Incomparable
    }
}

/// The partition of a dataset around a focal record.
#[derive(Debug, Clone, Default)]
pub struct FocalPartition {
    /// Ids of records dominating `p` (the set `D+` of the paper).
    pub dominators: Vec<RecordId>,
    /// Ids of records dominated by `p` (discarded by all algorithms).
    pub dominees: Vec<RecordId>,
    /// Ids of incomparable records (these induce half-spaces).
    pub incomparable: Vec<RecordId>,
    /// Ids of records identical to `p` (ties are ignored, as in the paper).
    pub duplicates: Vec<RecordId>,
}

/// Partitions the whole dataset around the focal point `p` with a linear scan.
///
/// If `skip` is `Some(id)`, that record (the focal record itself, when it
/// belongs to `D`) is excluded from the partition.
pub fn partition_by_focal(data: &Dataset, p: &[f64], skip: Option<RecordId>) -> FocalPartition {
    let mut part = FocalPartition::default();
    for (id, r) in data.iter() {
        if Some(id) == skip {
            continue;
        }
        match classify(r, p) {
            DomRelation::Dominates => part.dominators.push(id),
            DomRelation::DominatedBy => part.dominees.push(id),
            DomRelation::Incomparable => part.incomparable.push(id),
            DomRelation::Equal => part.duplicates.push(id),
        }
    }
    part
}

/// Naive `O(n²)` skyline over an explicit id subset (maximisation convention).
/// Used as the reference implementation the BBS algorithm is validated
/// against, and by the small-input oracles.
pub fn naive_skyline(data: &Dataset, ids: &[RecordId]) -> Vec<RecordId> {
    let mut skyline = Vec::new();
    'outer: for &i in ids {
        let ri = data.record(i);
        for &j in ids {
            if i != j && dominates(data.record(j), ri) {
                continue 'outer;
            }
        }
        skyline.push(i);
    }
    skyline
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominates_basic() {
        assert!(dominates(&[0.8, 0.9], &[0.5, 0.5]));
        assert!(!dominates(&[0.5, 0.5], &[0.8, 0.9]));
        assert!(!dominates(&[0.8, 0.3], &[0.5, 0.5]));
        assert!(
            !dominates(&[0.5, 0.5], &[0.5, 0.5]),
            "equal records do not dominate"
        );
        assert!(
            dominates(&[0.5, 0.6], &[0.5, 0.5]),
            "weak dominance with one strict attr"
        );
    }

    #[test]
    fn classify_all_cases() {
        let p = [0.5, 0.5];
        assert_eq!(classify(&[0.8, 0.9], &p), DomRelation::Dominates);
        assert_eq!(classify(&[0.4, 0.3], &p), DomRelation::DominatedBy);
        assert_eq!(classify(&[0.9, 0.4], &p), DomRelation::Incomparable);
        assert_eq!(classify(&[0.5, 0.5], &p), DomRelation::Equal);
    }

    #[test]
    fn figure1_partition() {
        // In Figure 1(a) with p = (0.5,0.5): r1 dominator, r5 dominee,
        // r2, r3, r4 incomparable (Section 5).
        let ds = Dataset::from_rows(
            2,
            &[
                vec![0.8, 0.9],
                vec![0.2, 0.7],
                vec![0.9, 0.4],
                vec![0.7, 0.2],
                vec![0.4, 0.3],
            ],
        );
        let part = partition_by_focal(&ds, &[0.5, 0.5], None);
        assert_eq!(part.dominators, vec![0]);
        assert_eq!(part.dominees, vec![4]);
        assert_eq!(part.incomparable, vec![1, 2, 3]);
        assert!(part.duplicates.is_empty());
    }

    #[test]
    fn partition_skips_focal_id() {
        let ds = Dataset::from_rows(2, &[vec![0.5, 0.5], vec![0.6, 0.6]]);
        let part = partition_by_focal(&ds, &[0.5, 0.5], Some(0));
        assert!(part.duplicates.is_empty());
        assert_eq!(part.dominators, vec![1]);
    }

    #[test]
    fn duplicates_detected_without_skip() {
        let ds = Dataset::from_rows(2, &[vec![0.5, 0.5], vec![0.6, 0.6]]);
        let part = partition_by_focal(&ds, &[0.5, 0.5], None);
        assert_eq!(part.duplicates, vec![0]);
    }

    #[test]
    fn naive_skyline_figure6_style() {
        // Incomparable records where r1, r2 form the skyline (Figure 6(a)).
        let ds = Dataset::from_rows(
            2,
            &[
                vec![0.9, 0.55], // r1: skyline
                vec![0.3, 0.95], // r2: skyline
                vec![0.25, 0.9], // r3: dominated by r2
                vec![0.85, 0.3], // r4: dominated by r1
                vec![0.2, 0.85], // r5: dominated by r2, r3
            ],
        );
        let ids: Vec<RecordId> = (0..5).collect();
        let mut sky = naive_skyline(&ds, &ids);
        sky.sort_unstable();
        assert_eq!(sky, vec![0, 1]);
    }

    #[test]
    fn skyline_of_empty_and_singleton() {
        let ds = Dataset::from_rows(2, &[vec![0.1, 0.2]]);
        assert!(naive_skyline(&ds, &[]).is_empty());
        assert_eq!(naive_skyline(&ds, &[0]), vec![0]);
    }
}
