//! Flat record storage shared by every crate in the workspace.
//!
//! A [`Dataset`] stores `n` records of fixed dimensionality `d` contiguously
//! in a single `Vec<f64>` so record access is a cheap slice view and scans
//! are cache friendly.
//!
//! # Dynamic datasets
//!
//! A dataset is mutable through [`Dataset::apply`]: insertions append a new
//! record slot and deletions *tombstone* an existing slot.  Ids are therefore
//! **stable for the lifetime of the dataset** — deleting record 3 never
//! renumbers record 4, and a later insertion gets a fresh id, so cache keys,
//! focal ids and index entries built against one version remain meaningful
//! against the next.  Every successful `apply` bumps a monotonically
//! increasing [`Dataset::version`], which the serving layer uses to key its
//! result cache per snapshot.  [`Dataset::iter`] (and everything built on it:
//! [`Dataset::order_of`], bulk loading, the oracles) yields live records
//! only.

/// Identifier of a record inside a [`Dataset`] (its slot position).
///
/// Ids are assigned densely at insertion time and are never reused: a
/// deleted record leaves a tombstoned slot behind (see [`Dataset::is_live`]).
pub type RecordId = u32;

/// A single mutation of a [`Dataset`], applied through [`Dataset::apply`].
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// Append a new record (its id is reported by the [`Applied`] receipt).
    Insert(Vec<f64>),
    /// Tombstone an existing live record.
    Delete(RecordId),
}

/// Receipt of one successful [`Dataset::apply`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Applied {
    /// The dataset version *after* this update (monotonically increasing,
    /// starting from 1 for the first update; a freshly built dataset is at
    /// version 0).
    pub version: u64,
    /// The id assigned to an inserted record (`None` for deletions).
    pub inserted: Option<RecordId>,
}

/// Why an [`Update`] was rejected.  Rejected updates leave the dataset (and
/// its version) untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// An inserted record's length differs from the dataset dimensionality.
    DimsMismatch {
        /// The dataset dimensionality.
        expected: usize,
        /// The inserted record's length.
        got: usize,
    },
    /// An inserted record carries a NaN or infinite attribute value.
    NonFinite,
    /// A deletion referenced an id beyond the dataset's id space.
    NoSuchRecord(RecordId),
    /// A deletion referenced an id that was already deleted.
    AlreadyDeleted(RecordId),
    /// The update was valid but could not be made durable (write-ahead log
    /// append or checkpoint failed; see [`crate::storage`]).  The in-memory
    /// dataset is left untouched: an update that is not durable is not
    /// committed.
    Storage(String),
    /// The dataset is in degraded read-only mode after an earlier storage
    /// failure: it keeps serving the last durable version but refuses
    /// further updates until restarted against a healthy disk.
    Degraded(String),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::DimsMismatch { expected, got } => {
                write!(f, "record has {got} attributes, dataset has {expected}")
            }
            UpdateError::NonFinite => write!(f, "record attributes must be finite"),
            UpdateError::NoSuchRecord(id) => write!(f, "no record with id {id}"),
            UpdateError::AlreadyDeleted(id) => write!(f, "record {id} is already deleted"),
            UpdateError::Storage(msg) => write!(f, "durable log write failed: {msg}"),
            UpdateError::Degraded(reason) => {
                write!(f, "dataset is degraded (read-only): {reason}")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// A set of `d`-dimensional records with attribute values (conventionally in
/// `[0, 1]`, although nothing in the algorithms requires it).
///
/// Equality compares the observable state — dimensionality, record slots and
/// tombstones — but **not** the [version](Dataset::version), so two datasets
/// that reached the same state through different update histories compare
/// equal.
#[derive(Debug, Clone)]
pub struct Dataset {
    dims: usize,
    values: Vec<f64>,
    /// Tombstone bitmap, one bit per record slot (1 = deleted).
    dead: Vec<u64>,
    /// Number of live (non-tombstoned) records.
    live: usize,
    /// Bumped by every successful [`Dataset::apply`].
    version: u64,
}

impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        self.dims == other.dims
            && self.values == other.values
            && self.live == other.live
            && (0..self.slots()).all(|i| self.slot_live(i) == other.slot_live(i))
    }
}

impl Dataset {
    /// Creates an empty dataset of dimensionality `dims`.
    ///
    /// # Panics
    /// Panics if `dims < 2`: MaxRank is defined for two or more dimensions.
    pub fn new(dims: usize) -> Self {
        assert!(dims >= 2, "MaxRank datasets need at least 2 dimensions");
        Self {
            dims,
            values: Vec::new(),
            dead: Vec::new(),
            live: 0,
            version: 0,
        }
    }

    /// Creates an empty dataset with capacity for `n` records.
    pub fn with_capacity(dims: usize, n: usize) -> Self {
        assert!(dims >= 2, "MaxRank datasets need at least 2 dimensions");
        Self {
            dims,
            values: Vec::with_capacity(dims * n),
            dead: Vec::new(),
            live: 0,
            version: 0,
        }
    }

    /// Builds a dataset from explicit rows.
    ///
    /// # Panics
    /// Panics if any row's length differs from `dims`.
    pub fn from_rows(dims: usize, rows: &[Vec<f64>]) -> Self {
        let mut ds = Self::with_capacity(dims, rows.len());
        for row in rows {
            ds.push(row);
        }
        ds
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The size of the id space: live records **plus** tombstoned slots.
    /// Record ids are always in `0..len()`; for the number of live records
    /// use [`Dataset::live_len`].  The two are equal until the first
    /// deletion.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len() / self.dims
    }

    /// Number of live (non-deleted) records.
    #[inline]
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// Whether the dataset holds no live records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether `id` names a live record (in range and not tombstoned).
    #[inline]
    pub fn is_live(&self, id: RecordId) -> bool {
        (id as usize) < self.slots() && self.slot_live(id as usize)
    }

    /// The dataset version: 0 for a freshly constructed dataset, bumped by
    /// every successful [`Dataset::apply`].
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Appends a record, returning its id.  Construction-time primitive: it
    /// does **not** bump the version (use [`Dataset::apply`] for serving-time
    /// mutation).
    ///
    /// # Panics
    /// Panics if the record's length differs from the dataset dimensionality.
    pub fn push(&mut self, record: &[f64]) -> RecordId {
        assert_eq!(record.len(), self.dims, "record dimensionality mismatch");
        let id = self.len() as RecordId;
        self.values.extend_from_slice(record);
        let slot = id as usize;
        if slot / 64 >= self.dead.len() {
            self.dead.push(0);
        }
        self.live += 1;
        id
    }

    /// Applies one mutation, returning the new version (and the assigned id
    /// for insertions).  Rejected updates leave the dataset untouched.
    pub fn apply(&mut self, update: &Update) -> Result<Applied, UpdateError> {
        let inserted = match update {
            Update::Insert(record) => {
                if record.len() != self.dims {
                    return Err(UpdateError::DimsMismatch {
                        expected: self.dims,
                        got: record.len(),
                    });
                }
                if !record.iter().all(|x| x.is_finite()) {
                    return Err(UpdateError::NonFinite);
                }
                Some(self.push(record))
            }
            Update::Delete(id) => {
                if (*id as usize) >= self.slots() {
                    return Err(UpdateError::NoSuchRecord(*id));
                }
                if !self.slot_live(*id as usize) {
                    return Err(UpdateError::AlreadyDeleted(*id));
                }
                self.dead[*id as usize / 64] |= 1u64 << (*id as usize % 64);
                self.live -= 1;
                None
            }
        };
        self.version += 1;
        Ok(Applied {
            version: self.version,
            inserted,
        })
    }

    /// Borrow the coordinates stored in slot `id`.  The slot's values remain
    /// readable after a deletion (callers holding an id from an older
    /// snapshot — e.g. a cached result — can still resolve it); use
    /// [`Dataset::get`] or [`Dataset::is_live`] when liveness matters.
    ///
    /// # Panics
    /// Panics if `id` is outside the id space.
    #[inline]
    pub fn record(&self, id: RecordId) -> &[f64] {
        let i = id as usize * self.dims;
        &self.values[i..i + self.dims]
    }

    /// Borrow record `id` if it is live (`None` for out-of-range or deleted
    /// ids).
    #[inline]
    pub fn get(&self, id: RecordId) -> Option<&[f64]> {
        self.is_live(id).then(|| self.record(id))
    }

    /// Iterator over the `(id, record)` pairs of all **live** records.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, &[f64])> {
        self.values
            .chunks_exact(self.dims)
            .enumerate()
            .filter(|(i, _)| self.slot_live(*i))
            .map(|(i, r)| (i as RecordId, r))
    }

    /// Number of record slots (internal alias of [`Dataset::len`]).
    #[inline]
    fn slots(&self) -> usize {
        self.values.len() / self.dims
    }

    /// The raw value storage (`slots() * dims()` coordinates, tombstoned
    /// slots included).  Crate-internal: used by [`crate::storage`] to encode
    /// snapshots.
    #[inline]
    pub(crate) fn raw_values(&self) -> &[f64] {
        &self.values
    }

    /// The tombstone bitmap words (`slots().div_ceil(64)` of them, one bit
    /// per slot, 1 = deleted).  Crate-internal: used by [`crate::storage`].
    #[inline]
    pub(crate) fn tombstone_words(&self) -> &[u64] {
        &self.dead
    }

    /// Rebuilds a dataset from its storage representation (snapshot decode).
    /// Validates the shape invariants a well-formed dataset maintains; the
    /// error string describes the first violation found.
    pub(crate) fn from_storage(
        dims: usize,
        values: Vec<f64>,
        dead: Vec<u64>,
        version: u64,
    ) -> Result<Self, String> {
        if dims < 2 {
            return Err(format!("dimensionality {dims} (need at least 2)"));
        }
        if !values.len().is_multiple_of(dims) {
            return Err(format!(
                "{} values do not divide into {dims}-dimensional records",
                values.len()
            ));
        }
        let slots = values.len() / dims;
        if dead.len() != slots.div_ceil(64) {
            return Err(format!(
                "tombstone bitmap has {} words, {slots} slots need {}",
                dead.len(),
                slots.div_ceil(64)
            ));
        }
        if let Some(pos) = values.iter().position(|x| !x.is_finite()) {
            return Err(format!("non-finite attribute value at slot {}", pos / dims));
        }
        let tombstones: u32 = dead.iter().map(|w| w.count_ones()).sum();
        if tombstones as usize > slots {
            return Err(format!(
                "{tombstones} tombstone bits set for {slots} slots (stray bits beyond the id space)"
            ));
        }
        if !slots.is_multiple_of(64) {
            if let Some(last) = dead.last() {
                if last >> (slots % 64) != 0 {
                    return Err(
                        "tombstone bits set beyond the id space in the final bitmap word".into(),
                    );
                }
            }
        }
        Ok(Self {
            dims,
            live: slots - tombstones as usize,
            values,
            dead,
            version,
        })
    }

    /// Whether slot `i` (in range) is live.
    #[inline]
    fn slot_live(&self, i: usize) -> bool {
        self.dead
            .get(i / 64)
            .is_none_or(|w| w & (1u64 << (i % 64)) == 0)
    }

    /// The score `r · q` of record `id` under query vector `q`.
    #[inline]
    pub fn score(&self, id: RecordId, q: &[f64]) -> f64 {
        mrq_geometry_dot(self.record(id), q)
    }

    /// The order (1-based rank) of an arbitrary point `p` under query `q`:
    /// one plus the number of records scoring strictly higher than `p`.
    /// Linear scan; used by tests, oracles and the appendix experiment.
    pub fn order_of(&self, p: &[f64], q: &[f64]) -> usize {
        let sp = mrq_geometry_dot(p, q);
        1 + self
            .iter()
            .filter(|(_, r)| mrq_geometry_dot(r, q) > sp)
            .count()
    }

    /// Minimum and maximum score over the dataset for query `q`
    /// (used by the appendix "dimensionality curse" experiment, Figure 12).
    pub fn score_range(&self, q: &[f64]) -> Option<(f64, f64)> {
        let mut it = self.iter().map(|(_, r)| mrq_geometry_dot(r, q));
        let first = it.next()?;
        let mut lo = first;
        let mut hi = first;
        for s in it {
            if s < lo {
                lo = s;
            }
            if s > hi {
                hi = s;
            }
        }
        Some((lo, hi))
    }
}

#[inline]
fn mrq_geometry_dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_dataset() -> Dataset {
        Dataset::from_rows(
            2,
            &[
                vec![0.8, 0.9], // r1
                vec![0.2, 0.7], // r2
                vec![0.9, 0.4], // r3
                vec![0.7, 0.2], // r4
                vec![0.4, 0.3], // r5
            ],
        )
    }

    #[test]
    fn push_and_access() {
        let mut ds = Dataset::new(3);
        assert!(ds.is_empty());
        let id = ds.push(&[0.1, 0.2, 0.3]);
        assert_eq!(id, 0);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.record(0), &[0.1, 0.2, 0.3]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn push_wrong_dims_panics() {
        let mut ds = Dataset::new(3);
        ds.push(&[0.1, 0.2]);
    }

    #[test]
    #[should_panic(expected = "at least 2 dimensions")]
    fn one_dimensional_rejected() {
        let _ = Dataset::new(1);
    }

    #[test]
    fn scores_match_figure1() {
        // Figure 1(a): scores w.r.t. q1 = (0.7, 0.3) and q2 = (0.1, 0.9).
        let ds = figure1_dataset();
        let q1 = [0.7, 0.3];
        let q2 = [0.1, 0.9];
        let s1: Vec<f64> = (0..5).map(|i| ds.score(i, &q1)).collect();
        let expected1 = [0.83, 0.35, 0.75, 0.55, 0.37];
        for (a, b) in s1.iter().zip(expected1) {
            assert!((a - b).abs() < 1e-9);
        }
        let s2: Vec<f64> = (0..5).map(|i| ds.score(i, &q2)).collect();
        let expected2 = [0.89, 0.65, 0.45, 0.25, 0.31];
        for (a, b) in s2.iter().zip(expected2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn order_matches_figure1() {
        // Order of p = (0.5,0.5): 4 w.r.t. q1, 3 w.r.t. q2 (Section 1).
        let ds = figure1_dataset();
        let p = [0.5, 0.5];
        assert_eq!(ds.order_of(&p, &[0.7, 0.3]), 4);
        assert_eq!(ds.order_of(&p, &[0.1, 0.9]), 3);
    }

    #[test]
    fn iter_yields_all() {
        let ds = figure1_dataset();
        assert_eq!(ds.iter().count(), 5);
        let ids: Vec<RecordId> = ds.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn score_range_bounds() {
        let ds = figure1_dataset();
        let (lo, hi) = ds.score_range(&[0.7, 0.3]).unwrap();
        assert!((lo - 0.35).abs() < 1e-9);
        assert!((hi - 0.83).abs() < 1e-9);
        let empty = Dataset::new(2);
        assert!(empty.score_range(&[0.5, 0.5]).is_none());
    }

    #[test]
    fn from_rows_roundtrip() {
        let rows = vec![vec![0.1, 0.9], vec![0.4, 0.2]];
        let ds = Dataset::from_rows(2, &rows);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.record(1), rows[1].as_slice());
    }

    #[test]
    fn apply_insert_assigns_fresh_ids_and_bumps_version() {
        let mut ds = figure1_dataset();
        assert_eq!(ds.version(), 0);
        let a = ds.apply(&Update::Insert(vec![0.3, 0.6])).unwrap();
        assert_eq!(a.version, 1);
        assert_eq!(a.inserted, Some(5));
        assert_eq!(ds.record(5), &[0.3, 0.6]);
        assert_eq!(ds.len(), 6);
        assert_eq!(ds.live_len(), 6);
        let b = ds.apply(&Update::Insert(vec![0.1, 0.1])).unwrap();
        assert_eq!(b.version, 2);
        assert_eq!(b.inserted, Some(6));
    }

    #[test]
    fn apply_delete_tombstones_without_renumbering() {
        let mut ds = figure1_dataset();
        let a = ds.apply(&Update::Delete(2)).unwrap();
        assert_eq!(a.version, 1);
        assert_eq!(a.inserted, None);
        // The id space is unchanged; liveness is not.
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.live_len(), 4);
        assert!(!ds.is_live(2));
        assert!(ds.is_live(3));
        assert_eq!(ds.get(2), None);
        assert_eq!(ds.get(3), Some([0.7, 0.2].as_slice()));
        // The slot's coordinates remain readable for old snapshots' sake.
        assert_eq!(ds.record(2), &[0.9, 0.4]);
        // Iteration, and everything built on it, skips the tombstone.
        let ids: Vec<RecordId> = ds.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1, 3, 4]);
        assert_eq!(
            ds.order_of(&[0.5, 0.5], &[0.7, 0.3]),
            3,
            "r3 no longer outranks"
        );
        // A new insertion gets a fresh id, not the tombstoned one.
        let b = ds.apply(&Update::Insert(vec![0.6, 0.6])).unwrap();
        assert_eq!(b.inserted, Some(5));
        assert_eq!(ds.live_len(), 5);
    }

    #[test]
    fn apply_rejections_leave_dataset_untouched() {
        let mut ds = figure1_dataset();
        assert_eq!(
            ds.apply(&Update::Insert(vec![0.1])),
            Err(UpdateError::DimsMismatch {
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            ds.apply(&Update::Insert(vec![f64::NAN, 0.2])),
            Err(UpdateError::NonFinite)
        );
        assert_eq!(
            ds.apply(&Update::Delete(99)),
            Err(UpdateError::NoSuchRecord(99))
        );
        ds.apply(&Update::Delete(1)).unwrap();
        assert_eq!(
            ds.apply(&Update::Delete(1)),
            Err(UpdateError::AlreadyDeleted(1))
        );
        // Only the one successful delete moved the version.
        assert_eq!(ds.version(), 1);
        assert_eq!(ds.live_len(), 4);
    }

    #[test]
    fn delete_all_records_leaves_an_empty_dataset() {
        let mut ds = Dataset::from_rows(2, &[vec![0.1, 0.2], vec![0.3, 0.4]]);
        ds.apply(&Update::Delete(0)).unwrap();
        ds.apply(&Update::Delete(1)).unwrap();
        assert!(ds.is_empty());
        assert_eq!(ds.live_len(), 0);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.iter().count(), 0);
        assert!(ds.score_range(&[0.5, 0.5]).is_none());
    }

    #[test]
    fn equality_ignores_version_but_not_tombstones() {
        let mut a = figure1_dataset();
        let mut b = figure1_dataset();
        // Different histories, same final state.
        a.apply(&Update::Delete(1)).unwrap();
        b.apply(&Update::Insert(vec![0.5, 0.6])).unwrap();
        b.apply(&Update::Delete(5)).unwrap();
        b.apply(&Update::Delete(1)).unwrap();
        assert_ne!(a, b, "b has an extra (dead) slot");
        let mut d = figure1_dataset();
        d.apply(&Update::Delete(1)).unwrap();
        assert_eq!(a, d, "same state, different version counts are possible");
        assert_eq!(a.version(), d.version());
        // Tombstone placement matters.
        let mut e = figure1_dataset();
        e.apply(&Update::Delete(2)).unwrap();
        assert_ne!(a, e);
    }

    #[test]
    fn update_error_display() {
        assert_eq!(
            UpdateError::DimsMismatch {
                expected: 3,
                got: 2
            }
            .to_string(),
            "record has 2 attributes, dataset has 3"
        );
        assert!(UpdateError::NonFinite.to_string().contains("finite"));
        assert!(UpdateError::NoSuchRecord(7).to_string().contains('7'));
        assert!(UpdateError::AlreadyDeleted(7)
            .to_string()
            .contains("already deleted"));
    }
}
