//! Flat record storage shared by every crate in the workspace.
//!
//! A [`Dataset`] stores `n` records of fixed dimensionality `d` contiguously
//! in a single `Vec<f64>` so record access is a cheap slice view and scans
//! are cache friendly.

/// Identifier of a record inside a [`Dataset`] (its position).
pub type RecordId = u32;

/// A set of `d`-dimensional records with attribute values (conventionally in
/// `[0, 1]`, although nothing in the algorithms requires it).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    dims: usize,
    values: Vec<f64>,
}

impl Dataset {
    /// Creates an empty dataset of dimensionality `dims`.
    ///
    /// # Panics
    /// Panics if `dims < 2`: MaxRank is defined for two or more dimensions.
    pub fn new(dims: usize) -> Self {
        assert!(dims >= 2, "MaxRank datasets need at least 2 dimensions");
        Self {
            dims,
            values: Vec::new(),
        }
    }

    /// Creates an empty dataset with capacity for `n` records.
    pub fn with_capacity(dims: usize, n: usize) -> Self {
        assert!(dims >= 2, "MaxRank datasets need at least 2 dimensions");
        Self {
            dims,
            values: Vec::with_capacity(dims * n),
        }
    }

    /// Builds a dataset from explicit rows.
    ///
    /// # Panics
    /// Panics if any row's length differs from `dims`.
    pub fn from_rows(dims: usize, rows: &[Vec<f64>]) -> Self {
        let mut ds = Self::with_capacity(dims, rows.len());
        for row in rows {
            ds.push(row);
        }
        ds
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of records `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len() / self.dims
    }

    /// Whether the dataset holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends a record, returning its id.
    ///
    /// # Panics
    /// Panics if the record's length differs from the dataset dimensionality.
    pub fn push(&mut self, record: &[f64]) -> RecordId {
        assert_eq!(record.len(), self.dims, "record dimensionality mismatch");
        let id = self.len() as RecordId;
        self.values.extend_from_slice(record);
        id
    }

    /// Borrow record `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn record(&self, id: RecordId) -> &[f64] {
        let i = id as usize * self.dims;
        &self.values[i..i + self.dims]
    }

    /// Iterator over `(id, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, &[f64])> {
        self.values
            .chunks_exact(self.dims)
            .enumerate()
            .map(|(i, r)| (i as RecordId, r))
    }

    /// The score `r · q` of record `id` under query vector `q`.
    #[inline]
    pub fn score(&self, id: RecordId, q: &[f64]) -> f64 {
        mrq_geometry_dot(self.record(id), q)
    }

    /// The order (1-based rank) of an arbitrary point `p` under query `q`:
    /// one plus the number of records scoring strictly higher than `p`.
    /// Linear scan; used by tests, oracles and the appendix experiment.
    pub fn order_of(&self, p: &[f64], q: &[f64]) -> usize {
        let sp = mrq_geometry_dot(p, q);
        1 + self
            .iter()
            .filter(|(_, r)| mrq_geometry_dot(r, q) > sp)
            .count()
    }

    /// Minimum and maximum score over the dataset for query `q`
    /// (used by the appendix "dimensionality curse" experiment, Figure 12).
    pub fn score_range(&self, q: &[f64]) -> Option<(f64, f64)> {
        let mut it = self.iter().map(|(_, r)| mrq_geometry_dot(r, q));
        let first = it.next()?;
        let mut lo = first;
        let mut hi = first;
        for s in it {
            if s < lo {
                lo = s;
            }
            if s > hi {
                hi = s;
            }
        }
        Some((lo, hi))
    }
}

#[inline]
fn mrq_geometry_dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_dataset() -> Dataset {
        Dataset::from_rows(
            2,
            &[
                vec![0.8, 0.9], // r1
                vec![0.2, 0.7], // r2
                vec![0.9, 0.4], // r3
                vec![0.7, 0.2], // r4
                vec![0.4, 0.3], // r5
            ],
        )
    }

    #[test]
    fn push_and_access() {
        let mut ds = Dataset::new(3);
        assert!(ds.is_empty());
        let id = ds.push(&[0.1, 0.2, 0.3]);
        assert_eq!(id, 0);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.record(0), &[0.1, 0.2, 0.3]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn push_wrong_dims_panics() {
        let mut ds = Dataset::new(3);
        ds.push(&[0.1, 0.2]);
    }

    #[test]
    #[should_panic(expected = "at least 2 dimensions")]
    fn one_dimensional_rejected() {
        let _ = Dataset::new(1);
    }

    #[test]
    fn scores_match_figure1() {
        // Figure 1(a): scores w.r.t. q1 = (0.7, 0.3) and q2 = (0.1, 0.9).
        let ds = figure1_dataset();
        let q1 = [0.7, 0.3];
        let q2 = [0.1, 0.9];
        let s1: Vec<f64> = (0..5).map(|i| ds.score(i, &q1)).collect();
        let expected1 = [0.83, 0.35, 0.75, 0.55, 0.37];
        for (a, b) in s1.iter().zip(expected1) {
            assert!((a - b).abs() < 1e-9);
        }
        let s2: Vec<f64> = (0..5).map(|i| ds.score(i, &q2)).collect();
        let expected2 = [0.89, 0.65, 0.45, 0.25, 0.31];
        for (a, b) in s2.iter().zip(expected2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn order_matches_figure1() {
        // Order of p = (0.5,0.5): 4 w.r.t. q1, 3 w.r.t. q2 (Section 1).
        let ds = figure1_dataset();
        let p = [0.5, 0.5];
        assert_eq!(ds.order_of(&p, &[0.7, 0.3]), 4);
        assert_eq!(ds.order_of(&p, &[0.1, 0.9]), 3);
    }

    #[test]
    fn iter_yields_all() {
        let ds = figure1_dataset();
        assert_eq!(ds.iter().count(), 5);
        let ids: Vec<RecordId> = ds.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn score_range_bounds() {
        let ds = figure1_dataset();
        let (lo, hi) = ds.score_range(&[0.7, 0.3]).unwrap();
        assert!((lo - 0.35).abs() < 1e-9);
        assert!((hi - 0.83).abs() < 1e-9);
        let empty = Dataset::new(2);
        assert!(empty.score_range(&[0.5, 0.5]).is_none());
    }

    #[test]
    fn from_rows_roundtrip() {
        let rows = vec![vec![0.1, 0.9], vec![0.4, 0.2]];
        let ds = Dataset::from_rows(2, &rows);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.record(1), rows[1].as_slice());
    }
}
