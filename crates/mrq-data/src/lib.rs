//! Datasets for the MaxRank reproduction.
//!
//! The evaluation of the paper (Section 8) uses three synthetic benchmark
//! distributions — Independent (IND), Correlated (COR) and Anti-correlated
//! (ANTI) — plus five real datasets (HOTEL, HOUSE, NBA, PITCH, BAT).  The real
//! data is not redistributable, so this crate provides *simulated stand-ins*
//! with matching cardinality, dimensionality and qualitative correlation
//! structure (see [`realistic`] and DESIGN.md §6 for the substitution
//! rationale).
//!
//! * [`dataset`] — the flat, cache-friendly record container used everywhere,
//! * [`dominance`] — dominance tests, focal-record partitioning, naive skyline,
//! * [`synthetic`] — IND / COR / ANTI generators,
//! * [`realistic`] — the simulated HOTEL / HOUSE / NBA / PITCH / BAT datasets,
//! * [`io`] — minimal CSV persistence (no external dependencies),
//! * [`storage`] — durable snapshots and a write-ahead update log with
//!   crash recovery (torn-tail detection, idempotent replay, checkpoints).

pub mod dataset;
pub mod dominance;
pub mod io;
pub mod realistic;
pub mod storage;
pub mod synthetic;

pub use dataset::{Applied, Dataset, RecordId, Update, UpdateError};
pub use dominance::{
    classify, dominates, naive_skyline, partition_by_focal, DomRelation, FocalPartition,
};
pub use realistic::{RealDataset, RealisticSpec};
pub use synthetic::{generate, Distribution};
