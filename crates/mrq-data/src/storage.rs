//! Durable dataset storage: binary snapshots plus a write-ahead update log.
//!
//! Each durable dataset owns one directory holding two files:
//!
//! * **`snapshot.bin`** — the full dataset state at some version `V`:
//!   every record slot's coordinates, the tombstone bitmap and `V` itself,
//!   protected by a trailing CRC-32.  Snapshots are replaced atomically
//!   (write to a temp file, fsync, rename).
//! * **`wal.log`** — a write-ahead log of update *batches* applied after the
//!   snapshot.  A batch is appended and fsynced **before** the in-memory
//!   dataset swap commits, so a batch is committed if and only if its WAL
//!   record is fully durable.
//!
//! The log sequence number (LSN) of a batch is simply the dataset
//! [version](crate::Dataset::version) after the batch — PR 4's monotonic
//! update counter doubles as the recovery clock, so no second sequence
//! number exists to drift out of sync.
//!
//! # WAL record layout
//!
//! All integers are little-endian.  The file starts with a 16-byte header
//! (`magic, format version, dims`), then zero or more records:
//!
//! ```text
//! u32 payload_len | u32 crc32(payload) | payload
//! payload := u64 lsn | u32 n_ops | op*
//! op      := 0x00 u32 id  f64×dims     (insert; id = slot assigned)
//!          | 0x01 u32 id               (delete)
//! ```
//!
//! A crash can leave a *torn tail*: a final record whose header or payload
//! is incomplete, or whose checksum does not match.  Recovery stops at the
//! first torn record, discards it (the batch never committed — the dataset
//! swap happens only after the fsync returns) and truncates the log back to
//! the last intact boundary.  Because the unit of logging is the batch, a
//! torn tail never resurrects half of an atomic `UPDATE`.
//!
//! # Recovery and idempotence
//!
//! [`DatasetStore::open`] loads the snapshot (version `V`), then replays
//! every intact WAL batch through [`replay_batch`].  A batch with
//! `lsn <= version` is skipped — this makes replay idempotent, which is what
//! keeps the *checkpoint* protocol crash-safe: a checkpoint writes a new
//! snapshot at version `V'` (atomic rename) and then truncates the log; a
//! crash between the two leaves batches with `lsn <= V'` in the log, and the
//! next recovery simply skips them.
//!
//! # Real I/O versus the simulated cost model
//!
//! The per-query `io_reads` counters (`mrq_index::IoStats`) implement the
//! paper's *simulated* page-access model — nothing is actually paged.  The
//! byte and page counts reported here ([`RecoveryReport`]) are the opposite:
//! they count bytes genuinely read from disk during recovery, converted to
//! pages of [`STORAGE_PAGE_BYTES`].  The serving layer surfaces them through
//! `STATS` as durability counters so the two kinds of "I/O" are never
//! conflated.
//!
//! # Fault injection (test hook)
//!
//! When the environment variable **`MRQ_STORAGE_CRASH_WAL_BYTES`** is set to
//! an integer `B`, [`DatasetStore::append`] writes WAL bytes only until the
//! cumulative post-header log size would exceed `B`, then writes the partial
//! record and calls [`std::process::abort`].  This produces a *genuinely*
//! torn append — the exact failure recovery must survive — and is used by
//! the crash-injection harness.  The variable is read once per process.
//!
//! A second hook, **`MRQ_STORAGE_FAIL_WAL_IO`**, makes [`DatasetStore::append`]
//! *report* an I/O error instead of dying, so the serving layer's graceful
//! degradation can be exercised: `append` fails before any byte is written,
//! `sync` writes a torn record then reports an fsync failure, `full` writes a
//! torn record then reports a disk-full error.  Unlike the crash hook it is
//! also settable at runtime through [`set_wal_fail_mode`] (tests toggle it
//! per-case within one process).

use crate::dataset::{Dataset, RecordId, Update};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// File name of the snapshot inside a dataset's storage directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// File name of the write-ahead log inside a dataset's storage directory.
pub const WAL_FILE: &str = "wal.log";
/// On-disk format version understood by this build (snapshot and WAL).
pub const FORMAT_VERSION: u32 = 1;
/// Page size used to convert recovery byte counts into page counts.  This
/// matches `mrq_index::PAGE_SIZE_BYTES` numerically, but counts *real* file
/// reads, not the simulated cost model.
pub const STORAGE_PAGE_BYTES: u64 = 4096;

const SNAP_MAGIC: &[u8; 8] = b"MRQSNAP\0";
const WAL_MAGIC: &[u8; 8] = b"MRQWAL\0\0";
/// Bytes of the WAL header: magic (8) + format version (4) + dims (4).
const WAL_HEADER_BYTES: u64 = 16;
/// Sanity cap on a single WAL payload; a larger length prefix is treated as
/// a torn tail (a torn write can leave arbitrary garbage in the length
/// field, so an implausible value must not trigger a huge allocation).
const MAX_WAL_PAYLOAD: u32 = 64 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a snapshot or WAL could not be written or read.
///
/// Each variant renders to a single, self-contained message (`Display`)
/// suitable for surfacing directly to a CLI user — see the unit tests, which
/// pin one message per failure mode.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the expected magic bytes — it is not a
    /// MaxRank storage file at all.
    BadMagic {
        /// The offending file.
        path: PathBuf,
        /// What the file was expected to be ("snapshot" or "WAL").
        expected: &'static str,
    },
    /// The file uses an on-disk format version this build does not read.
    UnsupportedVersion {
        /// The offending file.
        path: PathBuf,
        /// The format version found in the header.
        found: u32,
    },
    /// The file is structurally damaged: checksum mismatch, impossible
    /// lengths, or replay inconsistencies that a torn write cannot explain.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What exactly is wrong.
        detail: String,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::BadMagic { path, expected } => write!(
                f,
                "{} is not a MaxRank {expected} file (magic bytes do not match)",
                path.display()
            ),
            StorageError::UnsupportedVersion { path, found } => write!(
                f,
                "{}: format version {found} is not supported (this build reads version {FORMAT_VERSION})",
                path.display()
            ),
            StorageError::Corrupt { path, detail } => {
                write!(f, "{} is corrupt: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected) — implemented in-tree, the container is offline.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Little-endian encode/decode helpers
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Cursor over a byte slice; every read is bounds-checked and returns
/// `None` past the end (the caller decides whether that means torn or
/// corrupt).
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn f64(&mut self) -> Option<f64> {
        self.take(8)
            .map(|s| f64::from_le_bytes(s.try_into().unwrap()))
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

// ---------------------------------------------------------------------------
// Snapshot encode/decode
// ---------------------------------------------------------------------------

fn encode_snapshot(data: &Dataset) -> Vec<u8> {
    let values = data.raw_values();
    let words = data.tombstone_words();
    let mut buf = Vec::with_capacity(32 + values.len() * 8 + words.len() * 8 + 4);
    buf.extend_from_slice(SNAP_MAGIC);
    put_u32(&mut buf, FORMAT_VERSION);
    put_u32(&mut buf, data.dims() as u32);
    put_u64(&mut buf, data.len() as u64);
    put_u64(&mut buf, data.version());
    for &v in values {
        put_f64(&mut buf, v);
    }
    for &w in words {
        put_u64(&mut buf, w);
    }
    let crc = crc32(&buf);
    put_u32(&mut buf, crc);
    buf
}

/// Writes a snapshot of `data` to `path` atomically (temp file + fsync +
/// rename + directory fsync).  Returns the snapshot size in bytes.
pub fn write_snapshot(path: &Path, data: &Dataset) -> Result<u64, StorageError> {
    let buf = encode_snapshot(data);
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        sync_dir(dir)?;
    }
    Ok(buf.len() as u64)
}

/// Reads and validates the snapshot at `path`, returning the reconstructed
/// dataset and the number of bytes read.
pub fn read_snapshot(path: &Path) -> Result<(Dataset, u64), StorageError> {
    let buf = std::fs::read(path)?;
    let bytes = buf.len() as u64;
    let corrupt = |detail: String| StorageError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    if buf.len() < 8 || &buf[..8] != SNAP_MAGIC {
        return Err(StorageError::BadMagic {
            path: path.to_path_buf(),
            expected: "snapshot",
        });
    }
    let mut cur = Cursor::new(&buf);
    cur.take(8);
    let format = cur
        .u32()
        .ok_or_else(|| corrupt("truncated header".into()))?;
    if format != FORMAT_VERSION {
        return Err(StorageError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: format,
        });
    }
    if buf.len() < 36 {
        return Err(corrupt("truncated header".into()));
    }
    let body = &buf[..buf.len() - 4];
    let stored_crc = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
    if crc32(body) != stored_crc {
        return Err(corrupt(
            "snapshot checksum mismatch (the file is damaged or was torn mid-write)".into(),
        ));
    }
    let dims = cur.u32().unwrap() as usize;
    let slots = cur.u64().unwrap() as usize;
    let version = cur.u64().unwrap();
    let n_values = slots
        .checked_mul(dims)
        .ok_or_else(|| corrupt(format!("implausible geometry: {slots} slots × {dims} dims")))?;
    let n_words = slots.div_ceil(64);
    let expected = 32 + n_values * 8 + n_words * 8 + 4;
    if buf.len() != expected {
        return Err(corrupt(format!(
            "size {} does not match header ({slots} slots × {dims} dims needs {expected} bytes)",
            buf.len()
        )));
    }
    let mut values = Vec::with_capacity(n_values);
    for _ in 0..n_values {
        values.push(cur.f64().unwrap());
    }
    let mut dead = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        dead.push(cur.u64().unwrap());
    }
    let data = Dataset::from_storage(dims, values, dead, version).map_err(corrupt)?;
    Ok((data, bytes))
}

// ---------------------------------------------------------------------------
// WAL encode/decode
// ---------------------------------------------------------------------------

/// One logged operation inside a [`WalBatch`].  Inserts record the slot id
/// the in-memory apply assigned, so replay can verify it reproduces the same
/// id space.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// An applied insertion: the assigned id and the record's coordinates.
    Insert {
        /// The slot id [`Dataset::apply`] assigned.
        id: RecordId,
        /// The inserted coordinates (`dims` of them).
        row: Vec<f64>,
    },
    /// An applied deletion of record `id`.
    Delete {
        /// The tombstoned record.
        id: RecordId,
    },
}

/// One atomic update batch in the WAL: the dataset version after the batch
/// (its LSN) plus the operations that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct WalBatch {
    /// Dataset version after the whole batch was applied.
    pub lsn: u64,
    /// The operations, in application order.
    pub ops: Vec<WalOp>,
}

fn encode_record(batch: &WalBatch, dims: usize) -> Vec<u8> {
    let mut payload = Vec::with_capacity(12 + batch.ops.len() * (5 + dims * 8));
    put_u64(&mut payload, batch.lsn);
    put_u32(&mut payload, batch.ops.len() as u32);
    for op in &batch.ops {
        match op {
            WalOp::Insert { id, row } => {
                debug_assert_eq!(row.len(), dims, "WAL insert row dimensionality mismatch");
                payload.push(0x00);
                put_u32(&mut payload, *id);
                for &v in row {
                    put_f64(&mut payload, v);
                }
            }
            WalOp::Delete { id } => {
                payload.push(0x01);
                put_u32(&mut payload, *id);
            }
        }
    }
    let mut rec = Vec::with_capacity(8 + payload.len());
    put_u32(&mut rec, payload.len() as u32);
    put_u32(&mut rec, crc32(&payload));
    rec.extend_from_slice(&payload);
    rec
}

fn decode_payload(payload: &[u8], dims: usize) -> Result<WalBatch, String> {
    let mut cur = Cursor::new(payload);
    let lsn = cur.u64().ok_or("payload too short for LSN")?;
    let n_ops = cur.u32().ok_or("payload too short for op count")? as usize;
    let mut ops = Vec::with_capacity(n_ops.min(1024));
    for i in 0..n_ops {
        let tag = cur.u8().ok_or_else(|| format!("op {i}: missing tag"))?;
        let id = cur.u32().ok_or_else(|| format!("op {i}: missing id"))?;
        match tag {
            0x00 => {
                let mut row = Vec::with_capacity(dims);
                for _ in 0..dims {
                    row.push(
                        cur.f64()
                            .ok_or_else(|| format!("op {i}: short insert row"))?,
                    );
                }
                ops.push(WalOp::Insert { id, row });
            }
            0x01 => ops.push(WalOp::Delete { id }),
            t => return Err(format!("op {i}: unknown tag 0x{t:02x}")),
        }
    }
    if cur.remaining() != 0 {
        return Err(format!(
            "{} trailing bytes after the last op",
            cur.remaining()
        ));
    }
    Ok(WalBatch { lsn, ops })
}

/// The decoded contents of a WAL file (see [`read_wal`]).
#[derive(Debug)]
pub struct WalContents {
    /// Dimensionality recorded in the WAL header, or `None` when the header
    /// itself is incomplete (a crash during WAL creation) — in that case
    /// `batches` is empty and the whole file is torn.
    pub dims: Option<usize>,
    /// Every intact batch, in log order.
    pub batches: Vec<WalBatch>,
    /// Bytes of the torn tail after the last intact record (0 for a clean
    /// log).  These bytes belong to a batch that never committed.
    pub torn_bytes: u64,
    /// Byte offset of the end of the last intact record — the truncation
    /// point recovery rewinds the file to before appending again.
    pub valid_len: u64,
    /// Total bytes read from the file.
    pub bytes_read: u64,
}

/// Reads the WAL at `path` without modifying it, stopping at (and
/// reporting) the first torn record.  Structural damage *before* the tail —
/// a wrong magic, an unknown format version, a checksum-valid record that
/// does not decode — is an error, not a torn tail.
pub fn read_wal(path: &Path) -> Result<WalContents, StorageError> {
    let buf = std::fs::read(path)?;
    let bytes_read = buf.len() as u64;
    if buf.len() < WAL_HEADER_BYTES as usize {
        // A crash while creating the log can leave a partial header; the
        // whole file is a torn tail.
        return Ok(WalContents {
            dims: None,
            batches: Vec::new(),
            torn_bytes: bytes_read,
            valid_len: 0,
            bytes_read,
        });
    }
    if &buf[..8] != WAL_MAGIC {
        return Err(StorageError::BadMagic {
            path: path.to_path_buf(),
            expected: "WAL",
        });
    }
    let format = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    if format != FORMAT_VERSION {
        return Err(StorageError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: format,
        });
    }
    let dims = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
    let mut batches = Vec::new();
    let mut off = WAL_HEADER_BYTES as usize;
    while off < buf.len() {
        let rest = &buf[off..];
        if rest.len() < 8 {
            break; // torn: incomplete record header
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        if len > MAX_WAL_PAYLOAD {
            break; // torn: the length field itself is garbage
        }
        let len = len as usize;
        if rest.len() - 8 < len {
            break; // torn: incomplete payload
        }
        let stored_crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let payload = &rest[8..8 + len];
        if crc32(payload) != stored_crc {
            break; // torn: the payload never finished hitting the disk
        }
        let batch = decode_payload(payload, dims).map_err(|detail| StorageError::Corrupt {
            path: path.to_path_buf(),
            detail: format!("record at byte {off}: {detail}"),
        })?;
        batches.push(batch);
        off += 8 + len;
    }
    Ok(WalContents {
        dims: Some(dims),
        batches,
        torn_bytes: (buf.len() - off) as u64,
        valid_len: off as u64,
        bytes_read,
    })
}

/// Replays one WAL batch onto `data`.
///
/// Returns `Ok(false)` when the batch's LSN is at or below the dataset's
/// current version — already contained in the snapshot — which is what makes
/// replaying the same WAL twice **idempotent**.  Returns `Ok(true)` after
/// actually applying the batch.  An LSN gap, a rejected update or an insert
/// that lands on a different id than the log recorded is corruption: the log
/// does not describe this dataset.
pub fn replay_batch(data: &mut Dataset, batch: &WalBatch) -> Result<bool, String> {
    if batch.lsn <= data.version() {
        return Ok(false);
    }
    if batch.lsn != data.version() + batch.ops.len() as u64 {
        return Err(format!(
            "LSN gap: dataset at version {}, next batch is {} ops ending at LSN {}",
            data.version(),
            batch.ops.len(),
            batch.lsn
        ));
    }
    for op in &batch.ops {
        match op {
            WalOp::Insert { id, row } => {
                let applied = data
                    .apply(&Update::Insert(row.clone()))
                    .map_err(|e| format!("replayed insert rejected: {e}"))?;
                if applied.inserted != Some(*id) {
                    return Err(format!(
                        "replayed insert was assigned id {:?}, the log recorded id {id}",
                        applied.inserted
                    ));
                }
            }
            WalOp::Delete { id } => {
                data.apply(&Update::Delete(*id))
                    .map_err(|e| format!("replayed delete of id {id} rejected: {e}"))?;
            }
        }
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// DatasetStore
// ---------------------------------------------------------------------------

/// What [`DatasetStore::open`] did to bring a dataset back: how much state
/// came from the snapshot, how much was replayed from the WAL, and how many
/// bytes were *actually* read from disk (in contrast to the simulated
/// `io_reads` cost model — see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Dataset version after recovery (snapshot version + replayed batches).
    pub version: u64,
    /// Dataset version stored in the snapshot (before WAL replay).
    pub snapshot_version: u64,
    /// Live records after recovery.
    pub live_records: usize,
    /// Record slots (live + tombstoned) after recovery.
    pub slots: usize,
    /// WAL batches actually applied (idempotently skipped ones excluded).
    pub batches_replayed: u64,
    /// Bytes of torn WAL tail discarded (an uncommitted batch).
    pub torn_bytes_discarded: u64,
    /// Snapshot bytes read from disk.
    pub snapshot_bytes: u64,
    /// WAL bytes read from disk.
    pub wal_bytes: u64,
    /// Real pages read during recovery:
    /// `ceil((snapshot_bytes + wal_bytes) / STORAGE_PAGE_BYTES)`.
    pub pages_read: u64,
}

/// Handle on one dataset's durable storage directory: the snapshot, plus an
/// open append handle on the WAL.
///
/// A store assumes single-process ownership of its directory (no file
/// locking is attempted); the serving layer serialises writers through the
/// dataset's update lock.
#[derive(Debug)]
pub struct DatasetStore {
    dir: PathBuf,
    dims: usize,
    wal: File,
    /// Current WAL file size in bytes (header included).
    wal_bytes: u64,
}

impl DatasetStore {
    /// Path of the snapshot file inside `dir`.
    pub fn snapshot_path(dir: &Path) -> PathBuf {
        dir.join(SNAPSHOT_FILE)
    }

    /// Path of the WAL file inside `dir`.
    pub fn wal_path(dir: &Path) -> PathBuf {
        dir.join(WAL_FILE)
    }

    /// Whether `dir` already holds a dataset store (a snapshot exists).
    pub fn exists(dir: &Path) -> bool {
        Self::snapshot_path(dir).exists()
    }

    /// Creates a fresh store for `data` in `dir` (creating the directory if
    /// needed): writes the initial snapshot and an empty WAL.
    pub fn create(dir: &Path, data: &Dataset) -> Result<Self, StorageError> {
        std::fs::create_dir_all(dir)?;
        write_snapshot(&Self::snapshot_path(dir), data)?;
        let mut wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(Self::wal_path(dir))?;
        let mut header = Vec::with_capacity(WAL_HEADER_BYTES as usize);
        header.extend_from_slice(WAL_MAGIC);
        put_u32(&mut header, FORMAT_VERSION);
        put_u32(&mut header, data.dims() as u32);
        wal.write_all(&header)?;
        wal.sync_all()?;
        Ok(Self {
            dir: dir.to_path_buf(),
            dims: data.dims(),
            wal,
            wal_bytes: WAL_HEADER_BYTES,
        })
    }

    /// Opens the store in `dir`, recovering the dataset: loads the snapshot,
    /// replays the intact WAL tail and truncates any torn tail so the next
    /// append starts at a clean record boundary.  A missing WAL (never a
    /// normal state, but survivable) is recreated empty.
    pub fn open(dir: &Path) -> Result<(Self, Dataset, RecoveryReport), StorageError> {
        let snap_path = Self::snapshot_path(dir);
        let wal_path = Self::wal_path(dir);
        let (mut data, snapshot_bytes) = read_snapshot(&snap_path)?;
        let snapshot_version = data.version();

        if !wal_path.exists() {
            let store = Self::create_wal_only(dir, &data)?;
            let report = RecoveryReport {
                version: data.version(),
                snapshot_version,
                live_records: data.live_len(),
                slots: data.len(),
                snapshot_bytes,
                pages_read: snapshot_bytes.div_ceil(STORAGE_PAGE_BYTES),
                ..Default::default()
            };
            return Ok((store, data, report));
        }

        let contents = read_wal(&wal_path)?;
        if let Some(dims) = contents.dims {
            if dims != data.dims() {
                return Err(StorageError::Corrupt {
                    path: wal_path,
                    detail: format!(
                        "WAL header says {dims} attributes, the snapshot has {}",
                        data.dims()
                    ),
                });
            }
        }
        let mut batches_replayed = 0u64;
        for batch in &contents.batches {
            let applied =
                replay_batch(&mut data, batch).map_err(|detail| StorageError::Corrupt {
                    path: wal_path.clone(),
                    detail,
                })?;
            if applied {
                batches_replayed += 1;
            }
        }

        // Repair: rewind the log to the last intact record boundary (or
        // recreate it entirely if the header itself was torn) so appends
        // resume cleanly.
        let mut wal;
        let wal_bytes;
        if contents.dims.is_none() {
            let store = Self::create_wal_only(dir, &data)?;
            wal = store.wal;
            wal_bytes = WAL_HEADER_BYTES;
        } else {
            wal = OpenOptions::new().write(true).open(&wal_path)?;
            if contents.torn_bytes > 0 {
                wal.set_len(contents.valid_len)?;
                wal.sync_all()?;
            }
            wal.seek(SeekFrom::End(0))?;
            wal_bytes = contents.valid_len;
        }

        let report = RecoveryReport {
            version: data.version(),
            snapshot_version,
            live_records: data.live_len(),
            slots: data.len(),
            batches_replayed,
            torn_bytes_discarded: contents.torn_bytes,
            snapshot_bytes,
            wal_bytes: contents.bytes_read,
            pages_read: (snapshot_bytes + contents.bytes_read).div_ceil(STORAGE_PAGE_BYTES),
        };
        let store = Self {
            dir: dir.to_path_buf(),
            dims: data.dims(),
            wal,
            wal_bytes,
        };
        Ok((store, data, report))
    }

    /// Writes a fresh empty WAL for `data` in `dir` and returns a store
    /// handle positioned after its header.
    fn create_wal_only(dir: &Path, data: &Dataset) -> Result<Self, StorageError> {
        let mut wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(Self::wal_path(dir))?;
        let mut header = Vec::with_capacity(WAL_HEADER_BYTES as usize);
        header.extend_from_slice(WAL_MAGIC);
        put_u32(&mut header, FORMAT_VERSION);
        put_u32(&mut header, data.dims() as u32);
        wal.write_all(&header)?;
        wal.sync_all()?;
        Ok(Self {
            dir: dir.to_path_buf(),
            dims: data.dims(),
            wal,
            wal_bytes: WAL_HEADER_BYTES,
        })
    }

    /// Appends one batch record and fsyncs it.  Returns the bytes appended.
    /// The caller must only swap the batch into the in-memory dataset
    /// *after* this returns: durability before visibility.
    pub fn append(&mut self, batch: &WalBatch) -> Result<u64, StorageError> {
        let rec = encode_record(batch, self.dims);
        if let Some(budget) = crash_budget() {
            let after = self.wal_bytes - WAL_HEADER_BYTES + rec.len() as u64;
            if after > budget {
                // Fault injection (see module docs): emit a genuinely torn
                // record, make it durable, then die without unwinding.
                let keep = budget.saturating_sub(self.wal_bytes - WAL_HEADER_BYTES) as usize;
                let _ = self.wal.write_all(&rec[..keep.min(rec.len())]);
                let _ = self.wal.sync_data();
                std::process::abort();
            }
        }
        match wal_fail_mode() {
            WalFailMode::Off => {}
            WalFailMode::Append => {
                // Fails before touching the file: the log is byte-for-byte
                // what it was, the batch was simply never written.
                return Err(StorageError::Io(std::io::Error::other(
                    "injected WAL append failure (MRQ_STORAGE_FAIL_WAL_IO=append)",
                )));
            }
            WalFailMode::Sync => {
                // A write that "succeeded" but whose fsync failed: the tail
                // may be torn on disk, and recovery must discard it.
                let _ = self.wal.write_all(&rec[..rec.len() / 2]);
                return Err(StorageError::Io(std::io::Error::other(
                    "injected WAL fsync failure (MRQ_STORAGE_FAIL_WAL_IO=sync)",
                )));
            }
            WalFailMode::Full => {
                // Disk filled mid-record: a short write followed by ENOSPC.
                let keep = rec.len().min(8);
                let _ = self.wal.write_all(&rec[..keep]);
                let _ = self.wal.sync_data();
                return Err(StorageError::Io(std::io::Error::other(
                    "no space left on device (injected, MRQ_STORAGE_FAIL_WAL_IO=full)",
                )));
            }
        }
        self.wal.write_all(&rec)?;
        self.wal.sync_data()?;
        self.wal_bytes += rec.len() as u64;
        Ok(rec.len() as u64)
    }

    /// Current WAL size in bytes, header included (the checkpoint-trigger
    /// metric).
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    /// Dimensionality this store was created for.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The storage directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Checkpoints: atomically replaces the snapshot with `data`'s current
    /// state, then truncates the WAL back to its header.  A crash between
    /// the two steps is safe because replay skips batches whose LSN is at or
    /// below the snapshot version.  Returns the new snapshot's size.
    pub fn checkpoint(&mut self, data: &Dataset) -> Result<u64, StorageError> {
        let bytes = write_snapshot(&Self::snapshot_path(&self.dir), data)?;
        self.wal.set_len(WAL_HEADER_BYTES)?;
        self.wal.seek(SeekFrom::End(0))?;
        self.wal.sync_all()?;
        self.wal_bytes = WAL_HEADER_BYTES;
        Ok(bytes)
    }
}

/// fsync a directory so a rename inside it is durable (best-effort on
/// platforms where directories cannot be opened).
fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    match File::open(dir) {
        Ok(f) => {
            f.sync_all()?;
            Ok(())
        }
        Err(_) => Ok(()),
    }
}

/// The fault-injection budget, read once per process (see module docs).
fn crash_budget() -> Option<u64> {
    static BUDGET: OnceLock<Option<u64>> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("MRQ_STORAGE_CRASH_WAL_BYTES")
            .ok()
            .and_then(|v| v.parse().ok())
    })
}

/// Injectable WAL append failure, for exercising graceful storage
/// degradation (see module docs).  Unlike the crash hook this one *returns*
/// an error instead of aborting the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WalFailMode {
    /// No fault injected (the default).
    Off = 0,
    /// `append` fails before writing any byte.
    Append = 1,
    /// `append` leaves a torn record, then reports an fsync failure.
    Sync = 2,
    /// `append` leaves a short torn record, then reports disk-full.
    Full = 3,
}

/// `u8::MAX` marks "not yet initialised from the environment".
static WAL_FAIL: AtomicU8 = AtomicU8::new(u8::MAX);

/// Current injected WAL failure mode; first call reads
/// `MRQ_STORAGE_FAIL_WAL_IO` (`append` / `sync` / `full`).
fn wal_fail_mode() -> WalFailMode {
    let v = WAL_FAIL.load(Ordering::Relaxed);
    if v != u8::MAX {
        return decode_fail_mode(v);
    }
    let mode = match std::env::var("MRQ_STORAGE_FAIL_WAL_IO").ok().as_deref() {
        Some("append") => WalFailMode::Append,
        Some("sync") => WalFailMode::Sync,
        Some("full") => WalFailMode::Full,
        _ => WalFailMode::Off,
    };
    WAL_FAIL.store(mode as u8, Ordering::Relaxed);
    mode
}

fn decode_fail_mode(v: u8) -> WalFailMode {
    match v {
        1 => WalFailMode::Append,
        2 => WalFailMode::Sync,
        3 => WalFailMode::Full,
        _ => WalFailMode::Off,
    }
}

/// Sets (or clears, with [`WalFailMode::Off`]) the injected WAL failure mode
/// at runtime, overriding the environment variable.  A documented test hook:
/// degraded-mode tests toggle faults per-case inside one process.
pub fn set_wal_fail_mode(mode: WalFailMode) {
    WAL_FAIL.store(mode as u8, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, Update};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mrq_storage_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_dataset() -> Dataset {
        let mut ds = Dataset::from_rows(
            3,
            &[
                vec![0.8, 0.9, 0.1],
                vec![0.2, 0.7, 0.5],
                vec![0.9, 0.4, 0.3],
                vec![0.7, 0.2, 0.8],
            ],
        );
        ds.apply(&Update::Delete(1)).unwrap();
        ds.apply(&Update::Insert(vec![0.4, 0.3, 0.9])).unwrap();
        ds
    }

    /// Applies `n_batches` small deterministic batches through the store,
    /// mirroring them in `data`; returns the per-boundary states keyed by
    /// version.
    fn grow(store: &mut DatasetStore, data: &mut Dataset, n_batches: usize) -> Vec<(u64, Dataset)> {
        let mut states = vec![(data.version(), data.clone())];
        for b in 0..n_batches {
            let mut ops = Vec::new();
            let row: Vec<f64> = (0..data.dims())
                .map(|k| 0.1 + 0.07 * ((b + k) % 9) as f64)
                .collect();
            let applied = data.apply(&Update::Insert(row.clone())).unwrap();
            ops.push(WalOp::Insert {
                id: applied.inserted.unwrap(),
                row,
            });
            if b % 3 == 2 {
                let victim = data.iter().map(|(id, _)| id).next().unwrap();
                data.apply(&Update::Delete(victim)).unwrap();
                ops.push(WalOp::Delete { id: victim });
            }
            store
                .append(&WalBatch {
                    lsn: data.version(),
                    ops,
                })
                .unwrap();
            states.push((data.version(), data.clone()));
        }
        states
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn snapshot_roundtrip_preserves_state_and_version() {
        let dir = tmp_dir("snap_roundtrip");
        let ds = sample_dataset();
        let path = DatasetStore::snapshot_path(&dir);
        let written = write_snapshot(&path, &ds).unwrap();
        let (back, read) = read_snapshot(&path).unwrap();
        assert_eq!(written, read);
        assert_eq!(back, ds);
        assert_eq!(back.version(), ds.version(), "version survives, too");
        assert_eq!(back.live_len(), ds.live_len());
        assert_eq!(back.len(), ds.len());
        assert!(!back.is_live(1), "tombstone survived");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_of_empty_dataset_roundtrips() {
        let dir = tmp_dir("snap_empty");
        let mut ds = Dataset::from_rows(2, &[vec![0.1, 0.2]]);
        ds.apply(&Update::Delete(0)).unwrap();
        let path = DatasetStore::snapshot_path(&dir);
        write_snapshot(&path, &ds).unwrap();
        let (back, _) = read_snapshot(&path).unwrap();
        assert_eq!(back, ds);
        assert!(back.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_bad_magic_is_a_friendly_error() {
        let dir = tmp_dir("snap_magic");
        let path = DatasetStore::snapshot_path(&dir);
        std::fs::write(&path, b"definitely not a snapshot").unwrap();
        let err = read_snapshot(&path).unwrap_err();
        assert!(matches!(err, StorageError::BadMagic { .. }));
        let msg = err.to_string();
        assert!(
            msg.contains("not a MaxRank snapshot file"),
            "message was: {msg}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_future_format_version_is_a_friendly_error() {
        let dir = tmp_dir("snap_version");
        let path = DatasetStore::snapshot_path(&dir);
        let mut buf = encode_snapshot(&sample_dataset());
        buf[8..12].copy_from_slice(&2u32.to_le_bytes());
        // Re-seal the checksum so only the version field is "wrong".
        let crc = crc32(&buf[..buf.len() - 4]);
        let n = buf.len();
        buf[n - 4..].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &buf).unwrap();
        let err = read_snapshot(&path).unwrap_err();
        assert!(matches!(
            err,
            StorageError::UnsupportedVersion { found: 2, .. }
        ));
        let msg = err.to_string();
        assert!(
            msg.contains("format version 2 is not supported"),
            "message was: {msg}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_bit_flip_fails_the_checksum() {
        let dir = tmp_dir("snap_corrupt");
        let path = DatasetStore::snapshot_path(&dir);
        write_snapshot(&path, &sample_dataset()).unwrap();
        let mut buf = std::fs::read(&path).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        std::fs::write(&path, &buf).unwrap();
        let err = read_snapshot(&path).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }));
        let msg = err.to_string();
        assert!(msg.contains("checksum mismatch"), "message was: {msg}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn storage_io_error_display_mentions_io() {
        let err = StorageError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(err.to_string().contains("storage I/O error"));
    }

    #[test]
    fn create_open_append_reopen_roundtrip() {
        let dir = tmp_dir("store_roundtrip");
        let mut data = sample_dataset();
        let mut store = DatasetStore::create(&dir, &data).unwrap();
        let states = grow(&mut store, &mut data, 7);
        drop(store);

        let (_store2, recovered, report) = DatasetStore::open(&dir).unwrap();
        assert_eq!(recovered, data);
        assert_eq!(recovered.version(), data.version());
        assert_eq!(report.version, data.version());
        assert_eq!(report.snapshot_version, states[0].0);
        assert_eq!(report.batches_replayed, 7);
        assert_eq!(report.torn_bytes_discarded, 0);
        assert!(report.snapshot_bytes > 0);
        assert!(report.wal_bytes > WAL_HEADER_BYTES);
        assert_eq!(
            report.pages_read,
            (report.snapshot_bytes + report.wal_bytes).div_ceil(STORAGE_PAGE_BYTES)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_after_recovery_continues_the_log() {
        let dir = tmp_dir("store_continue");
        let mut data = sample_dataset();
        let mut store = DatasetStore::create(&dir, &data).unwrap();
        grow(&mut store, &mut data, 3);
        drop(store);

        let (mut store2, mut recovered, _) = DatasetStore::open(&dir).unwrap();
        grow(&mut store2, &mut recovered, 2);
        drop(store2);

        let (_, recovered3, report) = DatasetStore::open(&dir).unwrap();
        assert_eq!(recovered3, recovered);
        assert_eq!(report.batches_replayed, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_survives_reopen() {
        let dir = tmp_dir("store_checkpoint");
        let mut data = sample_dataset();
        let mut store = DatasetStore::create(&dir, &data).unwrap();
        grow(&mut store, &mut data, 5);
        assert!(store.wal_bytes() > WAL_HEADER_BYTES);
        store.checkpoint(&data).unwrap();
        assert_eq!(store.wal_bytes(), WAL_HEADER_BYTES);
        let version_at_checkpoint = data.version();
        grow(&mut store, &mut data, 2);
        drop(store);

        let (_, recovered, report) = DatasetStore::open(&dir).unwrap();
        assert_eq!(recovered, data);
        assert_eq!(report.snapshot_version, version_at_checkpoint);
        assert_eq!(report.batches_replayed, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_wal_batches_are_skipped_idempotently() {
        // Simulates a crash between snapshot rename and WAL truncation: the
        // WAL still holds batches the snapshot already contains.
        let dir = tmp_dir("store_stale_wal");
        let mut data = sample_dataset();
        let mut store = DatasetStore::create(&dir, &data).unwrap();
        grow(&mut store, &mut data, 4);
        // Rewrite the snapshot at the current version but do NOT truncate.
        write_snapshot(&DatasetStore::snapshot_path(&dir), &data).unwrap();
        drop(store);

        let (_, recovered, report) = DatasetStore::open(&dir).unwrap();
        assert_eq!(recovered, data);
        assert_eq!(
            report.batches_replayed, 0,
            "all WAL batches were at or below the snapshot version"
        );
        assert_eq!(report.snapshot_version, data.version());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replaying_the_same_wal_twice_is_idempotent() {
        let dir = tmp_dir("store_idempotent");
        let mut data = sample_dataset();
        let mut store = DatasetStore::create(&dir, &data).unwrap();
        grow(&mut store, &mut data, 6);
        drop(store);

        let contents = read_wal(&DatasetStore::wal_path(&dir)).unwrap();
        let (mut recovered, _) = read_snapshot(&DatasetStore::snapshot_path(&dir)).unwrap();
        let mut applied = 0;
        for b in &contents.batches {
            if replay_batch(&mut recovered, b).unwrap() {
                applied += 1;
            }
        }
        assert_eq!(applied, 6);
        let once = recovered.clone();
        // Second pass: every batch must be skipped, nothing must change.
        for b in &contents.batches {
            assert!(!replay_batch(&mut recovered, b).unwrap());
        }
        assert_eq!(recovered, once);
        assert_eq!(recovered.version(), once.version());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_truncated_at_every_byte_offset_recovers_a_committed_prefix() {
        // The strongest torn-tail statement we can make: for EVERY possible
        // truncation point of the log, read_wal yields an intact prefix of
        // whole batches, and replaying it reproduces exactly the state the
        // mirror had at that batch boundary.
        let dir = tmp_dir("store_every_offset");
        let mut data = sample_dataset();
        let mut store = DatasetStore::create(&dir, &data).unwrap();
        let states = grow(&mut store, &mut data, 8);
        drop(store);

        let wal_path = DatasetStore::wal_path(&dir);
        let full = std::fs::read(&wal_path).unwrap();
        let snap_path = DatasetStore::snapshot_path(&dir);
        let cut_path = dir.join("wal.cut");
        for cut in 0..=full.len() {
            std::fs::write(&cut_path, &full[..cut]).unwrap();
            let contents = read_wal(&cut_path).unwrap();
            let (mut recovered, _) = read_snapshot(&snap_path).unwrap();
            for b in &contents.batches {
                replay_batch(&mut recovered, b).unwrap();
            }
            let (expect_version, expect_state) = states
                .iter()
                .rev()
                .find(|(v, _)| *v <= recovered.version())
                .unwrap();
            assert_eq!(
                recovered.version(),
                *expect_version,
                "cut at byte {cut} recovered a non-boundary version"
            );
            assert_eq!(&recovered, expect_state, "cut at byte {cut}");
            // The torn accounting always adds up to the cut length.
            assert_eq!(contents.valid_len + contents.torn_bytes, cut as u64);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_repairs_a_torn_tail_and_appends_cleanly_after() {
        let dir = tmp_dir("store_torn_repair");
        let mut data = sample_dataset();
        let mut store = DatasetStore::create(&dir, &data).unwrap();
        let states = grow(&mut store, &mut data, 4);
        drop(store);

        // Tear the last record by chopping 5 bytes off the file.
        let wal_path = DatasetStore::wal_path(&dir);
        let full = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &full[..full.len() - 5]).unwrap();

        let (mut store2, mut recovered, report) = DatasetStore::open(&dir).unwrap();
        assert!(report.torn_bytes_discarded > 0);
        let (v3, s3) = &states[3];
        assert_eq!(recovered.version(), *v3, "the 4th batch never committed");
        assert_eq!(&recovered, s3);

        // The file was truncated back to a record boundary; appending works.
        grow(&mut store2, &mut recovered, 2);
        drop(store2);
        let (_, recovered2, report2) = DatasetStore::open(&dir).unwrap();
        assert_eq!(recovered2, recovered);
        assert_eq!(report2.torn_bytes_discarded, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_header_resets_the_log() {
        let dir = tmp_dir("store_torn_header");
        let data = sample_dataset();
        let store = DatasetStore::create(&dir, &data).unwrap();
        drop(store);
        let wal_path = DatasetStore::wal_path(&dir);
        std::fs::write(&wal_path, b"MRQW").unwrap(); // 4 of 16 header bytes
        let (_, recovered, report) = DatasetStore::open(&dir).unwrap();
        assert_eq!(recovered, data);
        assert_eq!(report.torn_bytes_discarded, 4);
        // The header was rewritten; a reopen sees a clean empty log.
        let contents = read_wal(&wal_path).unwrap();
        assert_eq!(contents.dims, Some(3));
        assert!(contents.batches.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_with_wrong_dims_is_rejected() {
        let dir = tmp_dir("store_wrong_dims");
        let data = sample_dataset(); // 3-dimensional
        let store = DatasetStore::create(&dir, &data).unwrap();
        drop(store);
        // Overwrite the WAL with a header claiming 2 dimensions.
        let other = Dataset::from_rows(2, &[vec![0.1, 0.2]]);
        let tmp2 = tmp_dir("store_wrong_dims_b");
        let s2 = DatasetStore::create(&tmp2, &other).unwrap();
        drop(s2);
        std::fs::copy(DatasetStore::wal_path(&tmp2), DatasetStore::wal_path(&dir)).unwrap();
        let err = DatasetStore::open(&dir).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("attributes"), "message was: {msg}");
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&tmp2).unwrap();
    }

    #[test]
    fn replay_detects_lsn_gaps_and_id_drift() {
        let mut data = sample_dataset();
        let v = data.version();
        // Gap: claims to end far beyond version + ops.
        let gap = WalBatch {
            lsn: v + 10,
            ops: vec![WalOp::Delete { id: 0 }],
        };
        assert!(replay_batch(&mut data, &gap)
            .unwrap_err()
            .contains("LSN gap"));
        // Id drift: the log says the insert landed on id 99.
        let drift = WalBatch {
            lsn: v + 1,
            ops: vec![WalOp::Insert {
                id: 99,
                row: vec![0.5, 0.5, 0.5],
            }],
        };
        let err = replay_batch(&mut data, &drift).unwrap_err();
        assert!(err.contains("id"), "error was: {err}");
    }

    #[test]
    fn missing_wal_is_recreated_empty() {
        let dir = tmp_dir("store_missing_wal");
        let data = sample_dataset();
        let store = DatasetStore::create(&dir, &data).unwrap();
        drop(store);
        std::fs::remove_file(DatasetStore::wal_path(&dir)).unwrap();
        let (_, recovered, report) = DatasetStore::open(&dir).unwrap();
        assert_eq!(recovered, data);
        assert_eq!(report.wal_bytes, 0);
        assert!(DatasetStore::wal_path(&dir).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
