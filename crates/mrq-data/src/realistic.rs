//! Simulated stand-ins for the paper's real datasets.
//!
//! The evaluation (Table 4) uses five real datasets that are not
//! redistributable: HOTEL (hotelsbase.org), HOUSE (ipums.org), NBA, PITCH and
//! BAT (basketball / baseball statistics).  The paper exercises them only
//! through their **cardinality, dimensionality and correlation structure**,
//! which drive `k*`, `|T|`, CPU time and I/O.  Each stand-in below reproduces
//! those drivers:
//!
//! | Name  | d | n (paper) | structure we simulate |
//! |-------|---|-----------|------------------------|
//! | HOTEL | 4 | 418,843   | moderately correlated quality-style attributes (stars/price/rooms/facilities all track an underlying "class") |
//! | HOUSE | 6 | 315,265   | household spendings: one wealth factor plus heavier independent noise |
//! | NBA   | 8 | 21,961    | per-position mixture — two latent factors (offence/defence) with position-dependent loadings, weakly correlated overall |
//! | PITCH | 8 | 43,058    | single-role players — one latent skill factor, more correlated than NBA |
//! | BAT   | 9 | 99,847    | batting statistics — one strong latent factor plus moderate noise |
//!
//! All values are normalised to `[0, 1]`.  Cardinalities can be scaled down
//! uniformly for quick runs (`scale < 1.0`).

use crate::dataset::Dataset;
use rand::Rng;

/// Identifier of a simulated real dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RealDataset {
    /// 4-d hotel ratings (418,843 records in the paper).
    Hotel,
    /// 6-d household spendings (315,265 records).
    House,
    /// 8-d NBA player statistics (21,961 records).
    Nba,
    /// 8-d baseball pitcher statistics (43,058 records).
    Pitch,
    /// 9-d baseball batter statistics (99,847 records).
    Bat,
}

/// Generation recipe of a simulated real dataset.
#[derive(Debug, Clone)]
pub struct RealisticSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Dimensionality.
    pub dims: usize,
    /// Full cardinality used in the paper.
    pub cardinality: usize,
    /// Number of latent factors.
    factors: usize,
    /// Loading of each attribute on its (attribute-index mod factors) factor.
    factor_loading: f64,
    /// Standard deviation of the independent noise.
    noise: f64,
    /// Number of latent "groups" (e.g. player positions) that shift factor
    /// means; 1 means a homogeneous population.
    groups: usize,
}

impl RealDataset {
    /// All five datasets in the order of Table 4.
    pub fn all() -> [RealDataset; 5] {
        [
            RealDataset::Hotel,
            RealDataset::House,
            RealDataset::Nba,
            RealDataset::Pitch,
            RealDataset::Bat,
        ]
    }

    /// The generation recipe for this dataset.
    pub fn spec(&self) -> RealisticSpec {
        match self {
            RealDataset::Hotel => RealisticSpec {
                name: "HOTEL",
                dims: 4,
                cardinality: 418_843,
                factors: 1,
                factor_loading: 0.55,
                noise: 0.18,
                groups: 1,
            },
            RealDataset::House => RealisticSpec {
                name: "HOUSE",
                dims: 6,
                cardinality: 315_265,
                factors: 1,
                factor_loading: 0.45,
                noise: 0.22,
                groups: 1,
            },
            RealDataset::Nba => RealisticSpec {
                name: "NBA",
                dims: 8,
                cardinality: 21_961,
                factors: 2,
                factor_loading: 0.40,
                noise: 0.24,
                groups: 5,
            },
            RealDataset::Pitch => RealisticSpec {
                name: "PITCH",
                dims: 8,
                cardinality: 43_058,
                factors: 1,
                factor_loading: 0.50,
                noise: 0.20,
                groups: 1,
            },
            RealDataset::Bat => RealisticSpec {
                name: "BAT",
                dims: 9,
                cardinality: 99_847,
                factors: 1,
                factor_loading: 0.50,
                noise: 0.22,
                groups: 3,
            },
        }
    }

    /// Generates the simulated dataset at full paper cardinality.
    pub fn generate<R: Rng>(&self, rng: &mut R) -> Dataset {
        self.generate_scaled(1.0, rng)
    }

    /// Generates the simulated dataset with cardinality scaled by `scale`
    /// (clamped to at least 100 records), e.g. `scale = 0.01` for quick runs.
    pub fn generate_scaled<R: Rng>(&self, scale: f64, rng: &mut R) -> Dataset {
        let spec = self.spec();
        let n = ((spec.cardinality as f64 * scale).round() as usize).max(100);
        spec.generate(n, rng)
    }
}

impl RealisticSpec {
    /// Generates `n` records according to the recipe.
    pub fn generate<R: Rng>(&self, n: usize, rng: &mut R) -> Dataset {
        let mut ds = Dataset::with_capacity(self.dims, n);
        let mut row = vec![0.0; self.dims];
        // Fixed group offsets in [-0.15, 0.15] spread evenly.
        let group_offsets: Vec<f64> = (0..self.groups)
            .map(|g| {
                if self.groups == 1 {
                    0.0
                } else {
                    -0.15 + 0.3 * g as f64 / (self.groups - 1) as f64
                }
            })
            .collect();
        for _ in 0..n {
            let group = rng.gen_range(0..self.groups);
            let offset = group_offsets[group];
            let factors: Vec<f64> = (0..self.factors)
                .map(|_| 0.5 + offset + 0.2 * normal(rng))
                .collect();
            for (i, v) in row.iter_mut().enumerate() {
                let f = factors[i % self.factors];
                let raw = 0.5 + self.factor_loading * (f - 0.5) * 2.0 + self.noise * normal(rng);
                *v = raw.clamp(0.0, 1.0);
            }
            ds.push(&row);
        }
        ds
    }
}

fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn specs_match_paper_table4() {
        let expected = [
            ("HOTEL", 4, 418_843),
            ("HOUSE", 6, 315_265),
            ("NBA", 8, 21_961),
            ("PITCH", 8, 43_058),
            ("BAT", 9, 99_847),
        ];
        for (ds, (name, d, n)) in RealDataset::all().iter().zip(expected) {
            let spec = ds.spec();
            assert_eq!(spec.name, name);
            assert_eq!(spec.dims, d);
            assert_eq!(spec.cardinality, n);
        }
    }

    #[test]
    fn scaled_generation_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = RealDataset::Hotel.generate_scaled(0.001, &mut rng);
        assert_eq!(ds.dims(), 4);
        assert!((400..=450).contains(&ds.len()), "len {}", ds.len());
        for (_, r) in ds.iter() {
            assert!(r.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn minimum_cardinality_enforced() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = RealDataset::Nba.generate_scaled(1e-9, &mut rng);
        assert_eq!(ds.len(), 100);
    }

    #[test]
    fn pitch_more_correlated_than_nba() {
        // The paper explains NBA's larger |T| by it being "less correlated"
        // than PITCH (players of different positions).  Check the stand-ins
        // preserve that ordering via average pairwise attribute correlation.
        fn mean_pairwise_corr(ds: &Dataset) -> f64 {
            let d = ds.dims();
            let n = ds.len() as f64;
            let mut means = vec![0.0; d];
            for (_, r) in ds.iter() {
                for (i, v) in r.iter().enumerate() {
                    means[i] += v;
                }
            }
            means.iter_mut().for_each(|m| *m /= n);
            let mut total = 0.0;
            let mut pairs = 0.0;
            for i in 0..d {
                for j in i + 1..d {
                    let mut cov = 0.0;
                    let mut vi = 0.0;
                    let mut vj = 0.0;
                    for (_, r) in ds.iter() {
                        cov += (r[i] - means[i]) * (r[j] - means[j]);
                        vi += (r[i] - means[i]).powi(2);
                        vj += (r[j] - means[j]).powi(2);
                    }
                    total += cov / (vi.sqrt() * vj.sqrt());
                    pairs += 1.0;
                }
            }
            total / pairs
        }
        let mut rng = StdRng::seed_from_u64(3);
        let nba = RealDataset::Nba.spec().generate(3000, &mut rng);
        let pitch = RealDataset::Pitch.spec().generate(3000, &mut rng);
        assert!(
            mean_pairwise_corr(&pitch) > mean_pairwise_corr(&nba) + 0.05,
            "PITCH should be more correlated than NBA"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let a = RealDataset::Bat
            .spec()
            .generate(200, &mut StdRng::seed_from_u64(7));
        let b = RealDataset::Bat
            .spec()
            .generate(200, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
