//! Property-based tests for the spatial index: whatever the data and the
//! insertion order, queries must agree with a plain linear scan and the
//! structural invariants must hold.

use mrq_data::{dominates, naive_skyline, partition_by_focal, Dataset};
use mrq_geometry::BoundingBox;
use mrq_index::{k_skyband, order_of, top_k, IncrementalSkyline, RStarConfig, RStarTree};
use proptest::prelude::*;

fn dataset_strategy(d: usize) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec(0.0f64..1.0, d), 1..200)
        .prop_map(move |rows| Dataset::from_rows(d, &rows))
}

fn build_both(data: &Dataset) -> (RStarTree, RStarTree) {
    let config = RStarConfig {
        max_entries: 8,
        min_entries: 3,
        reinsert_count: 2,
    };
    let bulk = RStarTree::bulk_load_with_config(data, config);
    let mut incr = RStarTree::with_config(data.dims(), config);
    for (id, r) in data.iter() {
        incr.insert(id, r);
    }
    (bulk, incr)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Range reporting and counting agree with a linear scan for both the
    /// bulk-loaded and the incrementally built tree, and the invariants hold.
    #[test]
    fn range_queries_match_scan(data in dataset_strategy(3), qlo in prop::collection::vec(0.0f64..1.0, 3), ext in prop::collection::vec(0.0f64..0.6, 3)) {
        let (bulk, incr) = build_both(&data);
        bulk.check_invariants().map_err(TestCaseError::fail)?;
        incr.check_invariants().map_err(TestCaseError::fail)?;
        let qhi: Vec<f64> = qlo.iter().zip(&ext).map(|(l, e)| (l + e).min(1.0)).collect();
        let query = BoundingBox::new(qlo.clone(), qhi);
        let mut expected: Vec<u32> = data
            .iter()
            .filter(|(_, r)| query.contains(r))
            .map(|(id, _)| id)
            .collect();
        expected.sort_unstable();
        for tree in [&bulk, &incr] {
            let mut got = tree.range_ids(&query);
            got.sort_unstable();
            prop_assert_eq!(&got, &expected);
            prop_assert_eq!(tree.range_count(&query) as usize, expected.len());
        }
    }

    /// Dominator counts and incomparable-record retrieval match the dominance
    /// definitions for an arbitrary focal point.
    #[test]
    fn focal_partition_queries_match(data in dataset_strategy(3), p in prop::collection::vec(0.0f64..1.0, 3)) {
        let (bulk, _) = build_both(&data);
        let expected_dom = data.iter().filter(|(_, r)| dominates(r, &p)).count();
        prop_assert_eq!(bulk.count_dominators(&p, None) as usize, expected_dom);
        let part = partition_by_focal(&data, &p, None);
        let mut got = bulk.incomparable_ids(&p, None);
        got.sort_unstable();
        let mut expected = part.incomparable.clone();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Best-first top-k returns the same score sequence as sorting, and the
    /// aggregate order computation matches the scan-based one.
    #[test]
    fn topk_and_order_match_scan(data in dataset_strategy(4), seed in any::<u64>()) {
        let (bulk, _) = build_both(&data);
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q: Vec<f64> = (0..4).map(|_| rng.gen::<f64>() + 1e-6).collect();
        let s: f64 = q.iter().sum();
        q.iter_mut().for_each(|x| *x /= s);
        let k = 1 + (seed as usize % 10).min(data.len() - 1);
        let res = top_k(&bulk, &q, k);
        let mut scores: Vec<f64> = data
            .iter()
            .map(|(_, r)| r.iter().zip(&q).map(|(a, b)| a * b).sum::<f64>())
            .collect();
        scores.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (got, want) in res.scores.iter().zip(scores.iter().take(k)) {
            prop_assert!((got - want).abs() < 1e-9);
        }
        let focal = (seed % data.len() as u64) as u32;
        let p = data.record(focal);
        prop_assert_eq!(order_of(&bulk, p, &q), data.order_of(p, &q));
    }

    /// The incremental skyline (before any expansion) equals the naive skyline
    /// of the incomparable records, and the k-skyband contains the skyline.
    #[test]
    fn skyline_and_skyband_consistent(data in dataset_strategy(3), seed in any::<u64>()) {
        let (bulk, _) = build_both(&data);
        let focal = (seed % data.len() as u64) as u32;
        let p = data.record(focal).to_vec();
        let sky = IncrementalSkyline::new(&bulk, &p, Some(focal));
        let part = partition_by_focal(&data, &p, Some(focal));
        let mut expected = naive_skyline(&data, &part.incomparable);
        expected.sort_unstable();
        let mut got: Vec<u32> = sky.skyline().iter().map(|(id, _)| *id).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected);

        let band1 = {
            let mut b = k_skyband(&bulk, 1);
            b.sort_unstable();
            b
        };
        let ids: Vec<u32> = (0..data.len() as u32).collect();
        let mut full_sky = naive_skyline(&data, &ids);
        full_sky.sort_unstable();
        prop_assert_eq!(&band1, &full_sky);
        let band3 = k_skyband(&bulk, 3);
        prop_assert!(band3.len() >= full_sky.len());
    }
}
