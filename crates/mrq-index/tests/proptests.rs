//! Property-based tests for the spatial index: whatever the data and the
//! insertion order, queries must agree with a plain linear scan and the
//! structural invariants must hold.

use mrq_data::{dominates, naive_skyline, partition_by_focal, Dataset, Update};
use mrq_geometry::BoundingBox;
use mrq_index::{k_skyband, order_of, top_k, IncrementalSkyline, RStarConfig, RStarTree};
use proptest::prelude::*;

fn dataset_strategy(d: usize) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec(0.0f64..1.0, d), 1..200)
        .prop_map(move |rows| Dataset::from_rows(d, &rows))
}

fn build_both(data: &Dataset) -> (RStarTree, RStarTree) {
    let config = RStarConfig {
        max_entries: 8,
        min_entries: 3,
        reinsert_count: 2,
    };
    let bulk = RStarTree::bulk_load_with_config(data, config);
    let mut incr = RStarTree::with_config(data.dims(), config);
    for (id, r) in data.iter() {
        incr.insert(id, r);
    }
    (bulk, incr)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Range reporting and counting agree with a linear scan for both the
    /// bulk-loaded and the incrementally built tree, and the invariants hold.
    #[test]
    fn range_queries_match_scan(data in dataset_strategy(3), qlo in prop::collection::vec(0.0f64..1.0, 3), ext in prop::collection::vec(0.0f64..0.6, 3)) {
        let (bulk, incr) = build_both(&data);
        bulk.check_invariants().map_err(TestCaseError::fail)?;
        incr.check_invariants().map_err(TestCaseError::fail)?;
        let qhi: Vec<f64> = qlo.iter().zip(&ext).map(|(l, e)| (l + e).min(1.0)).collect();
        let query = BoundingBox::new(qlo.clone(), qhi);
        let mut expected: Vec<u32> = data
            .iter()
            .filter(|(_, r)| query.contains(r))
            .map(|(id, _)| id)
            .collect();
        expected.sort_unstable();
        for tree in [&bulk, &incr] {
            let mut got = tree.range_ids(&query);
            got.sort_unstable();
            prop_assert_eq!(&got, &expected);
            prop_assert_eq!(tree.range_count(&query) as usize, expected.len());
        }
    }

    /// Dominator counts and incomparable-record retrieval match the dominance
    /// definitions for an arbitrary focal point.
    #[test]
    fn focal_partition_queries_match(data in dataset_strategy(3), p in prop::collection::vec(0.0f64..1.0, 3)) {
        let (bulk, _) = build_both(&data);
        let expected_dom = data.iter().filter(|(_, r)| dominates(r, &p)).count();
        prop_assert_eq!(bulk.count_dominators(&p, None) as usize, expected_dom);
        let part = partition_by_focal(&data, &p, None);
        let mut got = bulk.incomparable_ids(&p, None);
        got.sort_unstable();
        let mut expected = part.incomparable.clone();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Best-first top-k returns the same score sequence as sorting, and the
    /// aggregate order computation matches the scan-based one.
    #[test]
    fn topk_and_order_match_scan(data in dataset_strategy(4), seed in any::<u64>()) {
        let (bulk, _) = build_both(&data);
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q: Vec<f64> = (0..4).map(|_| rng.gen::<f64>() + 1e-6).collect();
        let s: f64 = q.iter().sum();
        q.iter_mut().for_each(|x| *x /= s);
        let k = 1 + (seed as usize % 10).min(data.len() - 1);
        let res = top_k(&bulk, &q, k);
        let mut scores: Vec<f64> = data
            .iter()
            .map(|(_, r)| r.iter().zip(&q).map(|(a, b)| a * b).sum::<f64>())
            .collect();
        scores.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (got, want) in res.scores.iter().zip(scores.iter().take(k)) {
            prop_assert!((got - want).abs() < 1e-9);
        }
        let focal = (seed % data.len() as u64) as u32;
        let p = data.record(focal);
        prop_assert_eq!(order_of(&bulk, p, &q), data.order_of(p, &q));
    }

    /// The incremental skyline (before any expansion) equals the naive skyline
    /// of the incomparable records, and the k-skyband contains the skyline.
    #[test]
    fn skyline_and_skyband_consistent(data in dataset_strategy(3), seed in any::<u64>()) {
        let (bulk, _) = build_both(&data);
        let focal = (seed % data.len() as u64) as u32;
        let p = data.record(focal).to_vec();
        let sky = IncrementalSkyline::new(&bulk, &p, Some(focal));
        let part = partition_by_focal(&data, &p, Some(focal));
        let mut expected = naive_skyline(&data, &part.incomparable);
        expected.sort_unstable();
        let mut got: Vec<u32> = sky.skyline().iter().map(|(id, _)| *id).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected);

        let band1 = {
            let mut b = k_skyband(&bulk, 1);
            b.sort_unstable();
            b
        };
        let ids: Vec<u32> = (0..data.len() as u32).collect();
        let mut full_sky = naive_skyline(&data, &ids);
        full_sky.sort_unstable();
        prop_assert_eq!(&band1, &full_sky);
        let band3 = k_skyband(&bulk, 3);
        prop_assert!(band3.len() >= full_sky.len());
    }

    /// After an arbitrary interleaving of inserts and deletes the tree is
    /// structurally valid (MBR containment/tightness, min/max fan-out,
    /// aggregate counts, arena accounting — all enforced by
    /// `check_invariants`) and behaves exactly like a tree bulk-loaded over
    /// the final live records: range reporting, BBS skyline / k-skyband and
    /// best-first top-k all agree.
    #[test]
    fn insert_delete_interleavings_match_bulk_load(
        data in dataset_strategy(3),
        ops in prop::collection::vec((any::<bool>(), any::<u64>(), prop::collection::vec(0.0f64..1.0, 3)), 1..60),
        seed in any::<u64>(),
    ) {
        let config = RStarConfig {
            max_entries: 5,
            min_entries: 2,
            reinsert_count: 1,
        };
        let mut data = data;
        let mut tree = RStarTree::bulk_load_with_config(&data, config);
        for (is_delete, pick, row) in ops {
            if is_delete && data.live_len() > 0 {
                let live: Vec<u32> = data.iter().map(|(id, _)| id).collect();
                let id = live[(pick % live.len() as u64) as usize];
                let point = data.record(id).to_vec();
                data.apply(&Update::Delete(id)).map_err(|e| TestCaseError::fail(e.to_string()))?;
                prop_assert!(tree.delete(id, &point));
            } else {
                let applied = data
                    .apply(&Update::Insert(row.clone()))
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                tree.insert(applied.inserted.unwrap(), &row);
            }
            tree.check_invariants().map_err(TestCaseError::fail)?;
        }
        prop_assert_eq!(tree.len(), data.live_len());
        let rebuilt = RStarTree::bulk_load_with_config(&data, config);
        rebuilt.check_invariants().map_err(TestCaseError::fail)?;

        // Range reporting and counting agree.
        let query = BoundingBox::new(vec![0.2, 0.1, 0.3], vec![0.8, 0.9, 0.75]);
        let mut a = tree.range_ids(&query);
        let mut b = rebuilt.range_ids(&query);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert_eq!(tree.range_count(&query), rebuilt.range_count(&query));

        if data.live_len() == 0 {
            prop_assert!(tree.is_empty());
            return Ok(());
        }

        // BBS: 1-skyband == skyline of the live records, and the
        // incremental skyline seen through both trees agrees.
        let mut sky_incr = k_skyband(&tree, 1);
        let mut sky_bulk = k_skyband(&rebuilt, 1);
        sky_incr.sort_unstable();
        sky_bulk.sort_unstable();
        prop_assert_eq!(&sky_incr, &sky_bulk);
        let live_ids: Vec<u32> = data.iter().map(|(id, _)| id).collect();
        let mut naive = naive_skyline(&data, &live_ids);
        naive.sort_unstable();
        prop_assert_eq!(&sky_incr, &naive);
        let focal = live_ids[(seed % live_ids.len() as u64) as usize];
        let p = data.record(focal).to_vec();
        let mut inc_a: Vec<u32> = IncrementalSkyline::new(&tree, &p, Some(focal))
            .skyline().iter().map(|(id, _)| *id).collect();
        let mut inc_b: Vec<u32> = IncrementalSkyline::new(&rebuilt, &p, Some(focal))
            .skyline().iter().map(|(id, _)| *id).collect();
        inc_a.sort_unstable();
        inc_b.sort_unstable();
        prop_assert_eq!(inc_a, inc_b);

        // Top-k score sequences and order computations agree.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q: Vec<f64> = (0..3).map(|_| rng.gen::<f64>() + 1e-6).collect();
        let s: f64 = q.iter().sum();
        q.iter_mut().for_each(|x| *x /= s);
        let k = 1 + (seed as usize % 8).min(data.live_len() - 1);
        let got = top_k(&tree, &q, k);
        let want = top_k(&rebuilt, &q, k);
        prop_assert_eq!(got.scores.len(), want.scores.len());
        for (x, y) in got.scores.iter().zip(&want.scores) {
            prop_assert!((x - y).abs() < 1e-12);
        }
        prop_assert_eq!(order_of(&tree, &p, &q), data.order_of(&p, &q));
        prop_assert_eq!(order_of(&rebuilt, &p, &q), data.order_of(&p, &q));
    }

    /// Crash-recovery replay drives the index the same way live updates do:
    /// an op sequence is committed through a `DatasetStore` WAL, the store
    /// is reopened (snapshot load + replay), and the recovered batches are
    /// fed into an incrementally maintained tree.  The invariants must hold
    /// after **every** replayed batch, and the final tree must agree with a
    /// bulk load over the recovered records.
    #[test]
    fn recovery_replayed_sequences_preserve_tree_invariants(
        data in dataset_strategy(3),
        ops in prop::collection::vec((any::<bool>(), any::<u64>(), prop::collection::vec(0.0f64..1.0, 3)), 1..40),
    ) {
        use mrq_data::storage::{read_wal, replay_batch, DatasetStore, WalBatch, WalOp};
        use std::sync::atomic::{AtomicUsize, Ordering};

        static CASE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mrq_index_replay_{}_{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // Commit the op sequence through the WAL, one batch per op.
        let base = data;
        let mut live = base.clone();
        let mut store = DatasetStore::create(&dir, &base).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut committed = 0u64;
        for (is_delete, pick, row) in ops {
            let op = if is_delete && live.live_len() > 0 {
                let ids: Vec<u32> = live.iter().map(|(id, _)| id).collect();
                let id = ids[(pick % ids.len() as u64) as usize];
                live.apply(&Update::Delete(id)).map_err(|e| TestCaseError::fail(e.to_string()))?;
                WalOp::Delete { id }
            } else {
                let applied = live
                    .apply(&Update::Insert(row.clone()))
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                WalOp::Insert { id: applied.inserted.unwrap(), row }
            };
            let batch = WalBatch { lsn: live.version(), ops: vec![op] };
            store.append(&batch).map_err(|e| TestCaseError::fail(e.to_string()))?;
            committed += 1;
        }
        drop(store);

        // Recover, then replay the recovered log into an incremental tree
        // over the snapshot state — exactly what a durable registry does.
        let (_store, recovered, report) =
            DatasetStore::open(&dir).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(report.batches_replayed, committed);
        prop_assert_eq!(&recovered, &live);

        let wal = read_wal(&DatasetStore::wal_path(&dir)).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let config = RStarConfig { max_entries: 5, min_entries: 2, reinsert_count: 1 };
        let mut replayed = base.clone();
        let mut tree = RStarTree::bulk_load_with_config(&base, config);
        for batch in &wal.batches {
            prop_assert!(replay_batch(&mut replayed, batch).map_err(TestCaseError::fail)?);
            for op in &batch.ops {
                match op {
                    WalOp::Insert { id, row } => tree.insert(*id, row),
                    // A tombstoned slot still exposes its coordinates —
                    // exactly what the tree search needs.
                    WalOp::Delete { id } => prop_assert!(tree.delete(*id, replayed.record(*id))),
                }
            }
            tree.check_invariants().map_err(TestCaseError::fail)?;
        }
        prop_assert_eq!(&replayed, &recovered);
        prop_assert_eq!(tree.len(), recovered.live_len());

        // The replay-maintained tree answers like a bulk load over the
        // recovered records.
        let rebuilt = RStarTree::bulk_load_with_config(&recovered, config);
        let query = BoundingBox::new(vec![0.1, 0.2, 0.0], vec![0.9, 0.8, 0.7]);
        let mut a = tree.range_ids(&query);
        let mut b = rebuilt.range_ids(&query);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert_eq!(tree.range_count(&query), rebuilt.range_count(&query));

        std::fs::remove_dir_all(&dir).map_err(|e| TestCaseError::fail(e.to_string()))?;
    }
}
