//! Top-k evaluation and rank (order) computation over the aggregate R\*-tree.
//!
//! These routines are the "user-facing" side of the setting the paper works
//! in: a linear top-k query with positive weights.  They serve three roles in
//! the reproduction: validating MaxRank results (the order of the focal
//! record at a witness query vector must equal `k*`), the appendix
//! dimensionality-curse experiment (Figure 12), and the example programs.

use crate::rstar::{Child, RStarTree};
use mrq_data::RecordId;
use std::collections::BinaryHeap;

/// Result of a top-k query: ids and scores, best first.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult {
    /// Record ids in descending score order.
    pub ids: Vec<RecordId>,
    /// Scores aligned with `ids`.
    pub scores: Vec<f64>,
}

#[derive(Debug)]
struct QueueItem {
    key: f64,
    child: Child,
}

impl PartialEq for QueueItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .partial_cmp(&other.key)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// Best-first top-k over the index.  `q` must have positive weights (a
/// permissible query vector); the MBR upper corner then gives an exact upper
/// bound for the best score inside a sub-tree.
pub fn top_k(tree: &RStarTree, q: &[f64], k: usize) -> TopKResult {
    assert_eq!(q.len(), tree.dims(), "query dimensionality mismatch");
    assert!(
        q.iter().all(|w| *w >= 0.0),
        "top-k requires non-negative weights"
    );
    let mut result = TopKResult {
        ids: Vec::with_capacity(k),
        scores: Vec::with_capacity(k),
    };
    if tree.is_empty() || k == 0 {
        return result;
    }
    let mut heap = BinaryHeap::new();
    heap.push(QueueItem {
        key: f64::INFINITY,
        child: Child::Node(tree.root as u32),
    });
    while let Some(item) = heap.pop() {
        match item.child {
            Child::Record(id) => {
                result.ids.push(id);
                result.scores.push(item.key);
                if result.ids.len() == k {
                    break;
                }
            }
            Child::Node(idx) => {
                tree.io().record_read();
                let node = &tree.nodes[idx as usize];
                for e in &node.entries {
                    let bound: f64 = e.mbr.hi.iter().zip(q).map(|(x, w)| x * w).sum();
                    heap.push(QueueItem {
                        key: bound,
                        child: e.child,
                    });
                }
            }
        }
    }
    result
}

/// The order (1-based rank) of an arbitrary point `p` under query `q`: one
/// plus the number of indexed records scoring strictly above `p`.  Uses the
/// aggregate counts to avoid descending into sub-trees that lie entirely
/// above or entirely below the score of `p`.
pub fn order_of(tree: &RStarTree, p: &[f64], q: &[f64]) -> usize {
    assert_eq!(q.len(), tree.dims());
    assert_eq!(p.len(), tree.dims());
    if tree.is_empty() {
        return 1;
    }
    let sp: f64 = p.iter().zip(q).map(|(x, w)| x * w).sum();
    1 + count_above(tree, tree.root, q, sp)
}

fn count_above(tree: &RStarTree, idx: usize, q: &[f64], threshold: f64) -> usize {
    tree.io().record_read();
    let node = &tree.nodes[idx];
    let mut total = 0usize;
    for e in &node.entries {
        let upper: f64 = e.mbr.hi.iter().zip(q).map(|(x, w)| x * w).sum();
        if upper <= threshold {
            continue;
        }
        let lower: f64 = e.mbr.lo.iter().zip(q).map(|(x, w)| x * w).sum();
        if lower > threshold {
            total += e.count as usize;
            continue;
        }
        match e.child {
            Child::Record(_) => {
                // The record's exact score is `upper` (point MBR); it exceeds
                // the threshold because of the first check.
                total += 1;
            }
            Child::Node(child) => total += count_above(tree, child as usize, q, threshold),
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrq_data::{synthetic, Dataset, Distribution};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn top_k_matches_sort_small() {
        let data = Dataset::from_rows(
            2,
            &[
                vec![0.8, 0.9],
                vec![0.2, 0.7],
                vec![0.9, 0.4],
                vec![0.7, 0.2],
                vec![0.4, 0.3],
            ],
        );
        let tree = RStarTree::bulk_load(&data);
        let q = [0.7, 0.3];
        let res = top_k(&tree, &q, 3);
        // Scores: r1 .83, r3 .75, r4 .55, ...
        assert_eq!(res.ids, vec![0, 2, 3]);
        assert!((res.scores[0] - 0.83).abs() < 1e-9);
        assert!((res.scores[1] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn top_k_matches_linear_scan_random() {
        let mut rng = StdRng::seed_from_u64(19);
        let data = synthetic::generate(Distribution::Independent, 700, 4, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        for _ in 0..10 {
            let mut q: Vec<f64> = (0..4).map(|_| rng.gen::<f64>() + 0.01).collect();
            let s: f64 = q.iter().sum();
            q.iter_mut().for_each(|x| *x /= s);
            let k = rng.gen_range(1..20);
            let res = top_k(&tree, &q, k);
            let mut scored: Vec<(f64, u32)> = data
                .iter()
                .map(|(id, r)| (r.iter().zip(&q).map(|(a, b)| a * b).sum::<f64>(), id))
                .collect();
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            let expected: Vec<u32> = scored.iter().take(k).map(|(_, id)| *id).collect();
            // Scores may tie; compare score sequences instead of ids.
            let expected_scores: Vec<f64> = scored.iter().take(k).map(|(s, _)| *s).collect();
            assert_eq!(res.ids.len(), k);
            for (a, b) in res.scores.iter().zip(&expected_scores) {
                assert!((a - b).abs() < 1e-9);
            }
            // And the id multiset must agree up to ties; verify by score
            // membership.
            for id in &res.ids {
                assert!(
                    expected.contains(id) || {
                        let s: f64 = data.record(*id).iter().zip(&q).map(|(a, b)| a * b).sum();
                        expected_scores.iter().any(|e| (e - s).abs() < 1e-12)
                    }
                );
            }
        }
    }

    #[test]
    fn order_of_matches_dataset_scan() {
        let mut rng = StdRng::seed_from_u64(23);
        let data = synthetic::generate(Distribution::AntiCorrelated, 900, 3, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        for _ in 0..15 {
            let focal: u32 = rng.gen_range(0..900);
            let p = data.record(focal).to_vec();
            let mut q: Vec<f64> = (0..3).map(|_| rng.gen::<f64>() + 0.01).collect();
            let s: f64 = q.iter().sum();
            q.iter_mut().for_each(|x| *x /= s);
            assert_eq!(order_of(&tree, &p, &q), data.order_of(&p, &q));
        }
    }

    #[test]
    fn order_of_uses_aggregate_pruning() {
        let mut rng = StdRng::seed_from_u64(29);
        let data = synthetic::generate(Distribution::Independent, 5000, 3, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let p = data.record(0).to_vec();
        let q = [0.4, 0.3, 0.3];
        tree.reset_io();
        let _ = order_of(&tree, &p, &q);
        let with_pruning = tree.io().reads();
        assert!(
            (with_pruning as usize) < tree.node_count(),
            "order_of must not read the whole tree ({with_pruning} reads of {} nodes)",
            tree.node_count()
        );
    }

    #[test]
    fn top_k_larger_than_dataset() {
        let data = Dataset::from_rows(2, &[vec![0.2, 0.3], vec![0.4, 0.1]]);
        let tree = RStarTree::bulk_load(&data);
        let res = top_k(&tree, &[0.5, 0.5], 10);
        assert_eq!(res.ids.len(), 2);
        let empty = top_k(&RStarTree::new(2), &[0.5, 0.5], 3);
        assert!(empty.ids.is_empty());
    }

    #[test]
    fn order_of_empty_tree_is_one() {
        let tree = RStarTree::new(2);
        assert_eq!(order_of(&tree, &[0.3, 0.3], &[0.5, 0.5]), 1);
    }
}
