//! Page-access (I/O) accounting.
//!
//! The evaluation of the paper measures I/O as the number of disk page
//! accesses with a 4 KB page size, one R\*-tree node per page.  Algorithms in
//! this workspace run in memory, so the counter simulates that cost model:
//! every R\*-tree node *read* during a query increments the counter by one.

use std::cell::Cell;

/// The simulated disk page size, as in the paper's experimental setup.
pub const PAGE_SIZE_BYTES: usize = 4096;

/// A cheap interior-mutable I/O counter attached to an index.
///
/// Interior mutability keeps query methods `&self` (reads do not logically
/// mutate the index) while still tracking accesses; the algorithms are
/// single-threaded, matching the paper's setting.
#[derive(Debug, Default, Clone)]
pub struct IoStats {
    node_reads: Cell<u64>,
}

impl IoStats {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one node/page read.
    #[inline]
    pub fn record_read(&self) {
        self.node_reads.set(self.node_reads.get() + 1);
    }

    /// Number of node/page reads since the last reset.
    #[inline]
    pub fn reads(&self) -> u64 {
        self.node_reads.get()
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.node_reads.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let io = IoStats::new();
        assert_eq!(io.reads(), 0);
        io.record_read();
        io.record_read();
        assert_eq!(io.reads(), 2);
        io.reset();
        assert_eq!(io.reads(), 0);
    }

    #[test]
    fn page_size_matches_paper() {
        assert_eq!(PAGE_SIZE_BYTES, 4096);
    }
}
