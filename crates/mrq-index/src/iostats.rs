//! Page-access (I/O) accounting.
//!
//! The evaluation of the paper measures I/O as the number of disk page
//! accesses with a 4 KB page size, one R\*-tree node per page.  Algorithms in
//! this workspace run in memory, so the counter simulates that cost model:
//! every R\*-tree node *read* during a query increments the counter by one.
//!
//! This is a **simulated** figure — nothing is actually paged in or out, and
//! the counter is therefore independent of the durability layer.  The *real*
//! file I/O the system performs (reading `snapshot.bin` and replaying
//! `wal.log` during recovery) is counted separately, in bytes and pages of
//! the same 4 KiB size, by `mrq_data::storage::RecoveryReport` and surfaced
//! through the service's `STATS` durability counters.  Keep the two apart
//! when reading reports: `io_reads` reproduces the paper's cost model,
//! `recovery_pages_read` measures disk traffic that genuinely happened.

use std::sync::atomic::{AtomicU64, Ordering};

/// The simulated disk page size, as in the paper's experimental setup.
pub const PAGE_SIZE_BYTES: usize = 4096;

/// A cheap interior-mutable I/O counter attached to an index.
///
/// Interior mutability keeps query methods `&self` (reads do not logically
/// mutate the index).  The counter is a relaxed [`AtomicU64`] so a tree can be
/// shared across threads (`RStarTree: Send + Sync`), which the serving layer
/// relies on.  Note that the counter is *per tree*: the algorithms charge a
/// query by snapshotting the counter and reporting the delta (never calling
/// [`IoStats::reset`] on a shared tree), so when several queries run
/// concurrently against one tree a query's `io_reads` can be *inflated* by
/// its neighbours' page reads, but never zeroed mid-flight.  Figures are
/// exact for non-overlapping queries — the bench harness runs
/// single-threaded, and `evaluate_batch` clones the tree per worker,
/// precisely to keep those numbers meaningful.
#[derive(Debug, Default)]
pub struct IoStats {
    node_reads: AtomicU64,
}

impl Clone for IoStats {
    fn clone(&self) -> Self {
        Self {
            node_reads: AtomicU64::new(self.reads()),
        }
    }
}

impl IoStats {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one node/page read.
    #[inline]
    pub fn record_read(&self) {
        self.node_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of node/page reads since the last reset.
    #[inline]
    pub fn reads(&self) -> u64 {
        self.node_reads.load(Ordering::Relaxed)
    }

    /// Folds `reads` page reads into the counter at once.  Used to merge the
    /// deltas accumulated by per-worker tree clones back into the shared
    /// tree's counter, so aggregate accounting survives the cloning that
    /// keeps per-query figures exact (see `mrq_core::evaluate_batch`).
    #[inline]
    pub fn add(&self, reads: u64) {
        self.node_reads.fetch_add(reads, Ordering::Relaxed);
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.node_reads.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let io = IoStats::new();
        assert_eq!(io.reads(), 0);
        io.record_read();
        io.record_read();
        assert_eq!(io.reads(), 2);
        io.reset();
        assert_eq!(io.reads(), 0);
    }

    #[test]
    fn add_merges_deltas() {
        let io = IoStats::new();
        io.record_read();
        let clone = io.clone();
        clone.record_read();
        clone.record_read();
        io.add(clone.reads() - io.reads());
        assert_eq!(io.reads(), 3);
    }

    #[test]
    fn clone_snapshots_the_count() {
        let io = IoStats::new();
        io.record_read();
        let copy = io.clone();
        io.record_read();
        assert_eq!(copy.reads(), 1);
        assert_eq!(io.reads(), 2);
    }

    #[test]
    fn counter_is_shareable_across_threads() {
        let io = IoStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        io.record_read();
                    }
                });
            }
        });
        assert_eq!(io.reads(), 4000);
    }

    #[test]
    fn page_size_matches_paper() {
        assert_eq!(PAGE_SIZE_BYTES, 4096);
    }
}
