//! Branch-and-Bound Skyline (BBS) with incremental maintenance through
//! *deferral buckets*.
//!
//! The advanced approach (AA) of the paper maintains the skyline of the
//! incomparable records and *expands* skyline records on demand; when a
//! record is expanded it is removed from the skyline and the records it was
//! implicitly subsuming must surface (paper §6.2).  The paper implements this
//! by letting BBS "reuse its search heap ... without re-accessing the same
//! R\*-tree nodes".  [`IncrementalSkyline`] realises that idea explicitly:
//!
//! * entries popped from the best-first heap that are dominated by a *live*
//!   skyline record are parked in that record's deferral bucket instead of
//!   being discarded;
//! * expanding a skyline record flushes its bucket back into the heap, so the
//!   entries (and only those) are reconsidered;
//! * every R\*-tree node is read at most once over the whole lifetime of the
//!   structure, no matter how many expansions happen.
//!
//! Records that dominate or are dominated by the focal record are filtered
//! out: the structure maintains the skyline of the *incomparable* records
//! only, which is exactly what AA consumes.

use crate::rstar::{Child, RStarTree};
use mrq_data::RecordId;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// A heap item: either a sub-tree (node) or a record, keyed by the L1 norm of
/// its upper corner (best possible attribute sum), popped largest first.
#[derive(Debug, Clone)]
struct HeapItem {
    key: f64,
    /// Upper corner of the MBR (the point itself for records).
    corner: Vec<f64>,
    /// Lower corner of the MBR (equals `corner` for records).
    lower: Vec<f64>,
    child: Child,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .partial_cmp(&other.key)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// Incrementally maintained skyline of the records incomparable to a focal
/// point, backed by BBS over the aggregate R\*-tree.
pub struct IncrementalSkyline<'a> {
    tree: &'a RStarTree,
    focal: Vec<f64>,
    focal_id: Option<RecordId>,
    heap: BinaryHeap<HeapItem>,
    /// Live skyline: record id → its point.
    skyline: Vec<(RecordId, Vec<f64>)>,
    /// Deferral buckets, keyed by the live skyline record subsuming them.
    buckets: HashMap<RecordId, Vec<HeapItem>>,
    /// Records that have been expanded (removed from the skyline for good).
    expanded: Vec<RecordId>,
    /// Number of record (not node) accesses, for instrumentation.
    records_seen: u64,
}

impl<'a> IncrementalSkyline<'a> {
    /// Builds the structure and computes the initial skyline of the records
    /// incomparable to `focal`.
    pub fn new(tree: &'a RStarTree, focal: &[f64], focal_id: Option<RecordId>) -> Self {
        assert_eq!(focal.len(), tree.dims());
        let mut this = Self {
            tree,
            focal: focal.to_vec(),
            focal_id,
            heap: BinaryHeap::new(),
            skyline: Vec::new(),
            buckets: HashMap::new(),
            expanded: Vec::new(),
            records_seen: 0,
        };
        if !tree.is_empty() {
            let root_entry_mbr = tree.bounding_box().expect("non-empty tree has an MBR");
            this.heap.push(HeapItem {
                key: root_entry_mbr.hi.iter().sum(),
                corner: root_entry_mbr.hi.clone(),
                lower: root_entry_mbr.lo.clone(),
                child: Child::Node(tree.root as u32),
            });
            this.drain();
        }
        this
    }

    /// The current (live) skyline of non-expanded incomparable records.
    pub fn skyline(&self) -> &[(RecordId, Vec<f64>)] {
        &self.skyline
    }

    /// Records expanded so far, in expansion order.
    pub fn expanded(&self) -> &[RecordId] {
        &self.expanded
    }

    /// Number of data records popped from the heap so far.
    pub fn records_seen(&self) -> u64 {
        self.records_seen
    }

    /// Expands a live skyline record: removes it from the skyline, flushes its
    /// deferral bucket, and returns the records that newly joined the skyline
    /// as a consequence.
    ///
    /// # Panics
    /// Panics if `id` is not currently on the live skyline.
    pub fn expand(&mut self, id: RecordId) -> Vec<(RecordId, Vec<f64>)> {
        let pos = self
            .skyline
            .iter()
            .position(|(rid, _)| *rid == id)
            .expect("expanded record must be on the live skyline");
        self.skyline.swap_remove(pos);
        self.expanded.push(id);
        if let Some(bucket) = self.buckets.remove(&id) {
            for item in bucket {
                self.heap.push(item);
            }
        }
        let before: Vec<RecordId> = self.skyline.iter().map(|(rid, _)| *rid).collect();
        self.drain();
        self.skyline
            .iter()
            .filter(|(rid, _)| !before.contains(rid))
            .cloned()
            .collect()
    }

    /// Pops heap entries until it is empty, maintaining the live skyline and
    /// the deferral buckets.
    fn drain(&mut self) {
        while let Some(item) = self.heap.pop() {
            // Focal-record pruning: sub-trees (or records) consisting solely of
            // dominators/duplicates of the focal point, or solely of
            // dominees/duplicates, are irrelevant to the incomparable skyline.
            let all_ge = item.lower.iter().zip(&self.focal).all(|(l, p)| l >= p);
            let all_le = item.corner.iter().zip(&self.focal).all(|(h, p)| h <= p);
            if all_ge || all_le {
                continue;
            }
            // Dominance against the live skyline: defer rather than discard.
            if let Some((owner, _)) = self
                .skyline
                .iter()
                .find(|(_, s)| dominates_weakly(s, &item.corner))
            {
                let owner = *owner;
                self.buckets.entry(owner).or_default().push(item);
                continue;
            }
            match item.child {
                Child::Record(id) => {
                    self.records_seen += 1;
                    if Some(id) == self.focal_id {
                        continue;
                    }
                    // The point is incomparable (checked above) and not
                    // dominated by any live skyline record: it joins the
                    // skyline.
                    self.skyline.push((id, item.corner));
                }
                Child::Node(node_idx) => {
                    self.tree.io().record_read();
                    let node = &self.tree.nodes[node_idx as usize];
                    for e in &node.entries {
                        self.heap.push(HeapItem {
                            key: e.mbr.hi.iter().sum(),
                            corner: e.mbr.hi.clone(),
                            lower: e.mbr.lo.clone(),
                            child: e.child,
                        });
                    }
                }
            }
        }
    }
}

/// `a` weakly dominates `b`: every coordinate of `a` is ≥ the corresponding
/// coordinate of `b`.  Weak dominance is the right test for pruning sub-trees
/// by their upper corner (records equal to a skyline point are duplicates and
/// may be deferred safely).
fn dominates_weakly(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x >= y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrq_data::{naive_skyline, partition_by_focal, synthetic, Dataset, Distribution};
    use rand::{rngs::StdRng, SeedableRng};

    fn check_matches_naive(data: &Dataset, focal_id: RecordId) {
        let tree = RStarTree::bulk_load(data);
        let p = data.record(focal_id).to_vec();
        let sky = IncrementalSkyline::new(&tree, &p, Some(focal_id));
        let part = partition_by_focal(data, &p, Some(focal_id));
        let mut expected = naive_skyline(data, &part.incomparable);
        expected.sort_unstable();
        let mut got: Vec<RecordId> = sky.skyline().iter().map(|(id, _)| *id).collect();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn initial_skyline_matches_naive() {
        let mut rng = StdRng::seed_from_u64(11);
        for d in 2..=4 {
            let data = synthetic::generate(Distribution::Independent, 500, d, &mut rng);
            check_matches_naive(&data, 17);
        }
    }

    #[test]
    fn initial_skyline_anticorrelated() {
        let mut rng = StdRng::seed_from_u64(12);
        let data = synthetic::generate(Distribution::AntiCorrelated, 800, 3, &mut rng);
        check_matches_naive(&data, 3);
    }

    #[test]
    fn expansion_reveals_next_layer() {
        // Figure 6 of the paper: expanding a skyline record surfaces exactly
        // the records it implicitly subsumed (its dominees not dominated by
        // any other live skyline record).
        let data = Dataset::from_rows(
            2,
            &[
                vec![0.5, 0.5],   // 0: focal
                vec![0.9, 0.45],  // 1: skyline (incomparable to the focal)
                vec![0.3, 0.95],  // 2: skyline
                vec![0.85, 0.45], // 3: subsumed under 1
                vec![0.75, 0.3],  // 4: subsumed under 3 (nested subsumption)
                vec![0.25, 0.9],  // 5: subsumed under 2
            ],
        );
        let tree = RStarTree::bulk_load(&data);
        let p = data.record(0).to_vec();
        let mut sky = IncrementalSkyline::new(&tree, &p, Some(0));
        let mut initial: Vec<RecordId> = sky.skyline().iter().map(|(id, _)| *id).collect();
        initial.sort_unstable();
        assert_eq!(initial, vec![1, 2]);
        // Expanding record 1 surfaces 3 (dominated only by 1), but not 4
        // (dominated by 3, which is now live).
        let new: Vec<RecordId> = sky.expand(1).iter().map(|(id, _)| *id).collect();
        assert_eq!(new, vec![3]);
        // Expanding 3 surfaces 4.
        let new: Vec<RecordId> = sky.expand(3).iter().map(|(id, _)| *id).collect();
        assert_eq!(new, vec![4]);
        // Expanding 2 surfaces 5.
        let new: Vec<RecordId> = sky.expand(2).iter().map(|(id, _)| *id).collect();
        assert_eq!(new, vec![5]);
        assert_eq!(sky.expanded(), &[1, 3, 2]);
    }

    #[test]
    fn full_expansion_enumerates_all_incomparable_records() {
        // Repeatedly expanding every skyline record must eventually surface
        // every incomparable record exactly once.
        let mut rng = StdRng::seed_from_u64(13);
        let data = synthetic::generate(Distribution::Independent, 300, 3, &mut rng);
        let focal_id = 42u32;
        let p = data.record(focal_id).to_vec();
        let tree = RStarTree::bulk_load(&data);
        let mut sky = IncrementalSkyline::new(&tree, &p, Some(focal_id));
        let mut seen: Vec<RecordId> = Vec::new();
        loop {
            let live: Vec<RecordId> = sky.skyline().iter().map(|(id, _)| *id).collect();
            if live.is_empty() {
                break;
            }
            for id in live {
                // A record may have been surfaced and expanded within this
                // round; guard against double expansion.
                if sky.skyline().iter().any(|(rid, _)| *rid == id) {
                    seen.push(id);
                    sky.expand(id);
                }
            }
        }
        let part = partition_by_focal(&data, &p, Some(focal_id));
        let mut expected = part.incomparable.clone();
        expected.sort_unstable();
        seen.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn nodes_read_at_most_once() {
        let mut rng = StdRng::seed_from_u64(14);
        let data = synthetic::generate(Distribution::Independent, 2000, 3, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let p = data.record(7).to_vec();
        tree.reset_io();
        let mut sky = IncrementalSkyline::new(&tree, &p, Some(7));
        // Expand everything.
        loop {
            let live: Vec<RecordId> = sky.skyline().iter().map(|(id, _)| *id).collect();
            if live.is_empty() {
                break;
            }
            for id in live {
                if sky.skyline().iter().any(|(rid, _)| *rid == id) {
                    sky.expand(id);
                }
            }
        }
        assert!(
            tree.io().reads() <= tree.node_count() as u64,
            "every node must be read at most once ({} reads, {} nodes)",
            tree.io().reads(),
            tree.node_count()
        );
    }

    #[test]
    fn empty_tree_yields_empty_skyline() {
        let tree = RStarTree::new(2);
        let sky = IncrementalSkyline::new(&tree, &[0.5, 0.5], None);
        assert!(sky.skyline().is_empty());
        assert_eq!(sky.records_seen(), 0);
    }

    #[test]
    fn skyline_cheaper_than_full_scan_io() {
        // AA's motivation: the skyline needs far fewer node reads than reading
        // all incomparable records (correlated data makes this stark).
        let mut rng = StdRng::seed_from_u64(15);
        let data = synthetic::generate(Distribution::Correlated, 5000, 4, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let p = data.record(11).to_vec();
        tree.reset_io();
        let _sky = IncrementalSkyline::new(&tree, &p, Some(11));
        let skyline_io = tree.io().reads();
        tree.reset_io();
        let _ = tree.incomparable_ids(&p, Some(11));
        let scan_io = tree.io().reads();
        assert!(
            skyline_io < scan_io,
            "skyline I/O {skyline_io} should be below incomparable-scan I/O {scan_io}"
        );
    }
}
