//! Spatial access methods for the MaxRank reproduction.
//!
//! The paper assumes the dataset is indexed by an R\*-tree residing on disk
//! (4 KB pages) and charges one I/O per node access.  This crate provides
//! that substrate from scratch:
//!
//! * [`rstar`] — an aggregate R\*-tree (R\*-tree insertion with forced
//!   reinsertion, STR bulk loading, and per-entry record counts in the style
//!   of the aggregate R-tree of Papadias et al.), with range / count /
//!   dominator queries and page-access accounting,
//! * [`bbs`] — the Branch-and-Bound Skyline algorithm (BBS) extended with
//!   *deferral buckets*, which realises the "reuse of the BBS search heap"
//!   that AA's implicit-subsumption strategy relies on (paper §6.2),
//! * [`topk`] — top-k evaluation over the index (best-first search) and
//!   rank/order counting used by oracles and the appendix experiment,
//! * [`iostats`] — the shared page-access counter.

#![warn(missing_docs)]

pub mod bbs;
pub mod iostats;
pub mod rstar;
pub mod skyband;
pub mod topk;

pub use bbs::IncrementalSkyline;
pub use iostats::{IoStats, PAGE_SIZE_BYTES};
pub use rstar::{RStarConfig, RStarTree};
pub use skyband::{k_skyband, k_skyband_incomparable};
pub use topk::{order_of, top_k, TopKResult};
