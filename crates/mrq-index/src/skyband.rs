//! k-skyband computation over the aggregate R\*-tree.
//!
//! The k-skyband generalises the skyline: it contains every record dominated
//! by fewer than `k` other records.  The paper points out (Section 2) that
//! BBS can compute it; MaxRank itself only needs the skyline, but the
//! k-skyband is the natural pre-filter for answering *any* top-k query with
//! `k ≤ K` (only skyband records can ever appear in a top-k result), so it is
//! provided as part of the index layer and used by the examples and tests as
//! an independent cross-check of the ranking machinery.

use crate::rstar::{Child, RStarTree};
use mrq_data::RecordId;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Item {
    key: f64,
    corner: Vec<f64>,
    /// Lower corner of the MBR (equals `corner` for records); used by the
    /// focal-pruned variant to discard all-comparable sub-trees.
    lower: Vec<f64>,
    child: Child,
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Item {}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .partial_cmp(&other.key)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// Computes the `k`-skyband: the ids of all records dominated by fewer than
/// `k` others.  `k = 1` yields the ordinary skyline.
///
/// The traversal is best-first on the attribute sum (as in BBS); an entry is
/// pruned once `k` already-confirmed skyband records dominate its upper
/// corner, which is safe because those records dominate everything inside the
/// entry.
pub fn k_skyband(tree: &RStarTree, k: usize) -> Vec<RecordId> {
    k_skyband_impl(tree, k, None)
}

/// Computes the `k`-skyband of the records **incomparable to a focal point**:
/// the ids of incomparable records dominated by fewer than `k` *other
/// incomparable* records.  `focal_id` (if given) is excluded from the result.
///
/// This is the dominance filter the MaxRank algorithms reason with: a record
/// outranking the focal record somewhere is always accompanied there by all
/// of its incomparable dominators, so any record listed in a result region of
/// rank `k` must belong to the `(k − |D⁺| − 1)`-skyband of the incomparable
/// set.  The differential test harness uses this as an algorithm-independent
/// cross-check of every reported outranking set.
pub fn k_skyband_incomparable(
    tree: &RStarTree,
    focal: &[f64],
    focal_id: Option<RecordId>,
    k: usize,
) -> Vec<RecordId> {
    assert_eq!(focal.len(), tree.dims());
    k_skyband_impl(tree, k, Some((focal, focal_id)))
}

fn k_skyband_impl(
    tree: &RStarTree,
    k: usize,
    focal: Option<(&[f64], Option<RecordId>)>,
) -> Vec<RecordId> {
    assert!(k >= 1, "the 0-skyband is empty by definition");
    let mut result: Vec<(RecordId, Vec<f64>)> = Vec::new();
    if tree.is_empty() {
        return Vec::new();
    }
    let root_mbr = tree.bounding_box().expect("non-empty tree");
    let mut heap = BinaryHeap::new();
    heap.push(Item {
        key: root_mbr.hi.iter().sum(),
        corner: root_mbr.hi.clone(),
        lower: root_mbr.lo.clone(),
        child: Child::Node(tree.root as u32),
    });
    while let Some(item) = heap.pop() {
        if let Some((p, skip)) = focal {
            // Focal pruning, as in `IncrementalSkyline`: sub-trees (or
            // records) consisting solely of dominators/duplicates of the
            // focal point, or solely of dominees/duplicates, contain no
            // incomparable record.
            let all_ge = item.lower.iter().zip(p).all(|(l, v)| l >= v);
            let all_le = item.corner.iter().zip(p).all(|(h, v)| h <= v);
            if all_ge || all_le {
                continue;
            }
            if let Child::Record(id) = item.child {
                if Some(id) == skip {
                    continue;
                }
            }
        }
        let dominated_by = result
            .iter()
            .filter(|(_, s)| dominates_strictly(s, &item.corner))
            .count();
        if dominated_by >= k {
            continue;
        }
        match item.child {
            Child::Record(id) => result.push((id, item.corner)),
            Child::Node(idx) => {
                tree.io().record_read();
                let node = &tree.nodes[idx as usize];
                for e in &node.entries {
                    heap.push(Item {
                        key: e.mbr.hi.iter().sum(),
                        corner: e.mbr.hi.clone(),
                        lower: e.mbr.lo.clone(),
                        child: e.child,
                    });
                }
            }
        }
    }
    result.into_iter().map(|(id, _)| id).collect()
}

fn dominates_strictly(a: &[f64], b: &[f64]) -> bool {
    let mut strict = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strict = true;
        }
    }
    strict
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrq_data::{dominates, synthetic, Dataset, Distribution};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn naive_skyband(data: &Dataset, k: usize) -> Vec<RecordId> {
        data.iter()
            .filter(|(i, r)| {
                data.iter()
                    .filter(|(j, other)| i != j && dominates(other, r))
                    .count()
                    < k
            })
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn skyband_matches_naive() {
        let mut rng = StdRng::seed_from_u64(3);
        for dist in Distribution::all() {
            let data = synthetic::generate(dist, 400, 3, &mut rng);
            let tree = RStarTree::bulk_load(&data);
            for k in [1usize, 2, 5] {
                let mut got = k_skyband(&tree, k);
                got.sort_unstable();
                let mut expected = naive_skyband(&data, k);
                expected.sort_unstable();
                assert_eq!(got, expected, "dist {dist:?} k {k}");
            }
        }
    }

    #[test]
    fn one_skyband_is_skyline() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = synthetic::generate(Distribution::Independent, 500, 2, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let ids: Vec<u32> = (0..data.len() as u32).collect();
        let mut sky = mrq_data::naive_skyline(&data, &ids);
        sky.sort_unstable();
        let mut got = k_skyband(&tree, 1);
        got.sort_unstable();
        assert_eq!(got, sky);
    }

    #[test]
    fn skyband_grows_with_k() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = synthetic::generate(Distribution::Correlated, 600, 3, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let mut prev = 0usize;
        for k in 1..=6 {
            let cur = k_skyband(&tree, k).len();
            assert!(cur >= prev);
            prev = cur;
        }
    }

    #[test]
    fn skyband_contains_every_topk_answer() {
        // The classic property: any top-k result (k ≤ K) is a subset of the
        // K-skyband.
        let mut rng = StdRng::seed_from_u64(6);
        let data = synthetic::generate(Distribution::AntiCorrelated, 300, 3, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let band: std::collections::HashSet<u32> = k_skyband(&tree, 4).into_iter().collect();
        for _ in 0..20 {
            let mut q: Vec<f64> = (0..3).map(|_| rng.gen::<f64>() + 1e-9).collect();
            let s: f64 = q.iter().sum();
            q.iter_mut().for_each(|x| *x /= s);
            let top = crate::topk::top_k(&tree, &q, 4);
            for id in top.ids {
                assert!(
                    band.contains(&id),
                    "top-4 answer {id} missing from 4-skyband"
                );
            }
        }
    }

    #[test]
    fn empty_tree_empty_skyband() {
        let tree = RStarTree::new(2);
        assert!(k_skyband(&tree, 3).is_empty());
        assert!(k_skyband_incomparable(&tree, &[0.5, 0.5], None, 3).is_empty());
    }

    fn naive_skyband_incomparable(data: &Dataset, focal: u32, k: usize) -> Vec<RecordId> {
        let p = data.record(focal);
        let part = mrq_data::partition_by_focal(data, p, Some(focal));
        part.incomparable
            .iter()
            .copied()
            .filter(|&i| {
                part.incomparable
                    .iter()
                    .filter(|&&j| i != j && dominates(data.record(j), data.record(i)))
                    .count()
                    < k
            })
            .collect()
    }

    #[test]
    fn incomparable_skyband_matches_naive() {
        let mut rng = StdRng::seed_from_u64(21);
        for dist in Distribution::all() {
            let data = synthetic::generate(dist, 350, 3, &mut rng);
            let tree = RStarTree::bulk_load(&data);
            for focal in [4u32, 99] {
                let p = data.record(focal).to_vec();
                for k in [1usize, 3, 7] {
                    let mut got = k_skyband_incomparable(&tree, &p, Some(focal), k);
                    got.sort_unstable();
                    let mut expected = naive_skyband_incomparable(&data, focal, k);
                    expected.sort_unstable();
                    assert_eq!(got, expected, "dist {dist:?} focal {focal} k {k}");
                }
            }
        }
    }

    #[test]
    fn incomparable_one_skyband_matches_incremental_skyline() {
        let mut rng = StdRng::seed_from_u64(22);
        let data = synthetic::generate(Distribution::AntiCorrelated, 400, 2, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let p = data.record(13).to_vec();
        let mut band = k_skyband_incomparable(&tree, &p, Some(13), 1);
        band.sort_unstable();
        let sky = crate::IncrementalSkyline::new(&tree, &p, Some(13));
        let mut expected: Vec<RecordId> = sky.skyline().iter().map(|(id, _)| *id).collect();
        expected.sort_unstable();
        assert_eq!(band, expected);
    }
}
