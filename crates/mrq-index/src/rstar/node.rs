//! Node and entry types of the aggregate R\*-tree.

use mrq_data::RecordId;
use mrq_geometry::BoundingBox;

/// Fan-out and reinsertion configuration of the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RStarConfig {
    /// Maximum number of entries per node (page capacity).
    pub max_entries: usize,
    /// Minimum number of entries per non-root node.
    pub min_entries: usize,
    /// Number of entries removed and reinserted on the first overflow of a
    /// level (the R\* "forced reinsertion", typically 30% of the capacity).
    pub reinsert_count: usize,
}

impl RStarConfig {
    /// Derives the fan-out from a simulated page size: each entry stores a
    /// `2·d`-coordinate MBR (8 bytes each), a 4-byte aggregate count and a
    /// 4-byte child pointer, mirroring the paper's 4 KB-page setup.
    pub fn for_page_size(dims: usize, page_size_bytes: usize) -> Self {
        let entry_bytes = 2 * dims * 8 + 8;
        let max_entries = (page_size_bytes / entry_bytes).clamp(4, 256);
        let min_entries = (max_entries * 2 / 5).max(2);
        let reinsert_count = (max_entries * 3 / 10).max(1);
        Self {
            max_entries,
            min_entries,
            reinsert_count,
        }
    }

    /// Panics if the configuration is internally inconsistent.
    pub fn validate(&self) {
        assert!(self.max_entries >= 4, "max_entries must be at least 4");
        assert!(
            self.min_entries >= 2 && self.min_entries <= self.max_entries / 2,
            "min_entries must be in [2, max_entries/2]"
        );
        assert!(
            self.reinsert_count >= 1 && self.reinsert_count < self.max_entries - self.min_entries,
            "reinsert_count must leave a legal node behind"
        );
    }
}

/// What an entry points to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Child {
    /// A data record (leaf level).
    Record(RecordId),
    /// A child node (internal levels), as an index into the node arena.
    Node(u32),
}

/// A node entry: minimum bounding rectangle, aggregate record count of the
/// subtree, and the child reference.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Minimum bounding rectangle of the subtree (the point itself for
    /// record entries).
    pub mbr: BoundingBox,
    /// Number of records in the subtree (1 for record entries) — the
    /// aggregate-R-tree augmentation of \[16\].
    pub count: u32,
    /// Child reference.
    pub child: Child,
}

impl Entry {
    /// Builds a record (leaf) entry.
    pub fn record(id: RecordId, point: &[f64]) -> Self {
        Entry {
            mbr: BoundingBox::new(point.to_vec(), point.to_vec()),
            count: 1,
            child: Child::Record(id),
        }
    }

    /// Area of the entry's MBR.
    pub fn area(&self) -> f64 {
        self.mbr.volume()
    }

    /// Margin (perimeter generalisation) of the entry's MBR.
    pub fn margin(&self) -> f64 {
        self.mbr
            .lo
            .iter()
            .zip(&self.mbr.hi)
            .map(|(l, h)| h - l)
            .sum()
    }
}

/// A tree node: its level (0 = leaf) and its entries.
#[derive(Debug, Clone)]
pub struct Node {
    /// Level of the node; leaves are at level 0.
    pub level: u32,
    /// The node's entries.
    pub entries: Vec<Entry>,
}

impl Node {
    /// Tight MBR over the node's entries (None if the node is empty).
    pub fn mbr(&self) -> Option<BoundingBox> {
        let mut it = self.entries.iter();
        let first = it.next()?;
        let mut mbr = first.mbr.clone();
        for e in it {
            mbr = mbr.union(&e.mbr);
        }
        Some(mbr)
    }

    /// Total record count over the node's entries.
    pub fn total_count(&self) -> u32 {
        self.entries.iter().map(|e| e.count).sum()
    }
}

/// Overlap (intersection volume) of two boxes.
pub(crate) fn overlap(a: &BoundingBox, b: &BoundingBox) -> f64 {
    a.lo.iter()
        .zip(&a.hi)
        .zip(b.lo.iter().zip(&b.hi))
        .map(|((al, ah), (bl, bh))| (ah.min(*bh) - al.max(*bl)).max(0.0))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_record_shape() {
        let e = Entry::record(7, &[0.25, 0.5]);
        assert_eq!(e.count, 1);
        assert_eq!(e.child, Child::Record(7));
        assert_eq!(e.area(), 0.0);
        assert_eq!(e.margin(), 0.0);
    }

    #[test]
    fn node_mbr_and_count() {
        let n = Node {
            level: 0,
            entries: vec![Entry::record(0, &[0.1, 0.2]), Entry::record(1, &[0.6, 0.9])],
        };
        let mbr = n.mbr().unwrap();
        assert_eq!(mbr.lo, vec![0.1, 0.2]);
        assert_eq!(mbr.hi, vec![0.6, 0.9]);
        assert_eq!(n.total_count(), 2);
        let empty = Node {
            level: 0,
            entries: vec![],
        };
        assert!(empty.mbr().is_none());
    }

    #[test]
    fn overlap_volume() {
        let a = BoundingBox::new(vec![0.0, 0.0], vec![0.5, 0.5]);
        let b = BoundingBox::new(vec![0.25, 0.25], vec![1.0, 1.0]);
        assert!((overlap(&a, &b) - 0.0625).abs() < 1e-12);
        let c = BoundingBox::new(vec![0.6, 0.6], vec![1.0, 1.0]);
        assert_eq!(overlap(&a, &c), 0.0);
        assert!((a.union(&b).volume() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn config_validation() {
        RStarConfig {
            max_entries: 10,
            min_entries: 4,
            reinsert_count: 3,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "min_entries")]
    fn config_invalid_min() {
        RStarConfig {
            max_entries: 10,
            min_entries: 6,
            reinsert_count: 3,
        }
        .validate();
    }
}
