//! Deletion with underfull-node condensing.
//!
//! This is the classic R-tree `FindLeaf` / `CondenseTree` pair (Guttman \[9\],
//! unchanged by the R\* paper): locate the leaf holding the record, remove
//! the entry, then walk the path back to the root dissolving every node that
//! fell below the minimum fan-out.  A dissolved node's entries are reinserted
//! at their original level — leaf records as ordinary inserts, internal
//! entries with their whole subtree intact — so the tree re-packs itself
//! instead of tolerating underfull pages.  Finally the root collapses while
//! it has a single child, shrinking the tree height.
//!
//! Freed node slots go on the arena free list and are reused by later
//! allocations, so a workload of balanced inserts and deletes does not grow
//! the arena without bound.  Like insertion and the queries, the
//! root-to-leaf search is charged to [`IoStats`](crate::iostats::IoStats) (one read
//! per node visited, including the dead ends of the containment search).

use super::node::{Child, Entry};
use super::RStarTree;
use mrq_data::RecordId;

impl RStarTree {
    /// Removes record `id` located at `point`, returning whether it was
    /// found.  `point` must be the exact coordinates the record was inserted
    /// with (the search descends only into subtrees whose MBR contains it).
    ///
    /// # Panics
    /// Panics if `point` has the wrong dimensionality.
    pub fn delete(&mut self, id: RecordId, point: &[f64]) -> bool {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        if self.len == 0 {
            return false;
        }
        let mut path = Vec::with_capacity(self.height as usize + 1);
        if !self.find_leaf(self.root, id, point, &mut path) {
            return false;
        }
        let leaf = *path.last().expect("find_leaf pushed the leaf");
        let pos = self.nodes[leaf]
            .entries
            .iter()
            .position(|e| e.child == Child::Record(id) && e.mbr.lo == point)
            .expect("find_leaf verified the entry is present");
        self.nodes[leaf].entries.swap_remove(pos);
        self.len -= 1;
        self.condense(&path);
        true
    }

    /// Depth-first search for the leaf containing record `id` at `point`,
    /// recording the root-to-leaf path.  Returns `false` (with `path`
    /// rolled back) when the record is not in this subtree.
    fn find_leaf(&self, idx: usize, id: RecordId, point: &[f64], path: &mut Vec<usize>) -> bool {
        self.io.record_read();
        path.push(idx);
        let node = &self.nodes[idx];
        if node.level == 0 {
            if node
                .entries
                .iter()
                .any(|e| e.child == Child::Record(id) && e.mbr.lo == point)
            {
                return true;
            }
        } else {
            for e in &node.entries {
                if !e.mbr.contains(point) {
                    continue;
                }
                if let Child::Node(c) = e.child {
                    if self.find_leaf(c as usize, id, point, path) {
                        return true;
                    }
                }
            }
        }
        path.pop();
        false
    }

    /// `CondenseTree`: walk the deletion path bottom-up, dissolving
    /// underfull nodes and refreshing ancestor MBRs/counts, then reinsert
    /// the orphaned entries and collapse a single-child root.
    fn condense(&mut self, path: &[usize]) {
        // Orphan groups, pushed bottom-up: (node level, its entries).
        let mut orphans: Vec<(u32, Vec<Entry>)> = Vec::new();
        for i in (1..path.len()).rev() {
            let idx = path[i];
            let parent = path[i - 1];
            if self.nodes[idx].entries.len() < self.config.min_entries {
                let pos = self.nodes[parent]
                    .entries
                    .iter()
                    .position(|e| e.child == Child::Node(idx as u32))
                    .expect("path parent links path child");
                self.nodes[parent].entries.swap_remove(pos);
                let level = self.nodes[idx].level;
                let entries = std::mem::take(&mut self.nodes[idx].entries);
                if !entries.is_empty() {
                    orphans.push((level, entries));
                }
                self.free.push(idx);
            } else {
                self.refresh_child_entry(parent, idx);
            }
        }

        if self.height > 0 && self.nodes[self.root].entries.is_empty() {
            // The cascade consumed the root's last child, so everything left
            // lives in the orphan groups.  The highest group (pushed last)
            // belongs exactly one level below the old root: demote the root
            // to that level and seed it with the group, then reinsertion of
            // the lower groups proceeds as usual.
            let (level, entries) = orphans.pop().expect("an emptied root implies orphans");
            debug_assert_eq!(level + 1, self.nodes[self.root].level);
            let root = self.root;
            self.nodes[root].level = level;
            self.nodes[root].entries = entries;
            self.height = level;
        }

        // Reinsert highest level first so internal entries always find a
        // resident level to land in (orphan levels are strictly below the
        // current root level).
        for (level, entries) in orphans.into_iter().rev() {
            for entry in entries {
                let mut reinserted = vec![false; self.height as usize + 1];
                self.insert_entry(entry, level, &mut reinserted);
            }
        }

        // Collapse a single-child internal root (possibly repeatedly).
        while self.height > 0 && self.nodes[self.root].entries.len() == 1 {
            let child = match self.nodes[self.root].entries[0].child {
                Child::Node(c) => c as usize,
                Child::Record(_) => unreachable!("internal node entry points to a node"),
            };
            self.nodes[self.root].entries.clear();
            self.free.push(self.root);
            self.root = child;
            self.height -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rstar::RStarConfig;
    use mrq_data::{synthetic, Distribution, Update};
    use mrq_geometry::BoundingBox;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn small_config() -> RStarConfig {
        RStarConfig {
            max_entries: 4,
            min_entries: 2,
            reinsert_count: 1,
        }
    }

    #[test]
    fn delete_missing_record_is_a_noop() {
        let mut t = RStarTree::with_config(2, small_config());
        assert!(!t.delete(0, &[0.5, 0.5]));
        t.insert(0, &[0.25, 0.75]);
        assert!(!t.delete(1, &[0.25, 0.75]), "wrong id");
        assert!(!t.delete(0, &[0.5, 0.5]), "wrong point");
        assert_eq!(t.len(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn delete_down_to_empty_and_reuse() {
        let mut t = RStarTree::with_config(2, small_config());
        let pts: Vec<[f64; 2]> = (0..30)
            .map(|i| [(i as f64 * 0.618) % 1.0, (i as f64 * 0.37) % 1.0])
            .collect();
        for (i, p) in pts.iter().enumerate() {
            t.insert(i as u32, p);
        }
        t.check_invariants().unwrap();
        let grown_slots = t.nodes.len();
        for (i, p) in pts.iter().enumerate() {
            assert!(t.delete(i as u32, p), "record {i} must be found");
            t.check_invariants().unwrap();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.bounding_box().is_none());
        // Refill: freed slots are reused, the arena does not grow.
        for (i, p) in pts.iter().enumerate() {
            t.insert(i as u32, p);
        }
        t.check_invariants().unwrap();
        assert!(t.nodes.len() <= grown_slots, "arena slots must be reused");
        assert_eq!(t.len(), 30);
    }

    #[test]
    fn delete_counts_io() {
        let mut rng = StdRng::seed_from_u64(11);
        let data = synthetic::generate(Distribution::Independent, 500, 2, &mut rng);
        let mut t = RStarTree::bulk_load(&data);
        t.reset_io();
        assert!(t.delete(123, data.record(123)));
        assert!(t.io().reads() > t.height() as u64, "find charges reads");
    }

    #[test]
    fn interleaved_updates_match_bulk_load() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut data = synthetic::generate(Distribution::AntiCorrelated, 300, 3, &mut rng);
        let mut tree = RStarTree::bulk_load(&data);
        for step in 0..400 {
            if rng.gen_bool(0.45) || data.live_len() < 5 {
                let row: Vec<f64> = (0..3).map(|_| rng.gen::<f64>()).collect();
                let applied = data.apply(&Update::Insert(row.clone())).unwrap();
                tree.insert(applied.inserted.unwrap(), &row);
            } else {
                // Pick a live id uniformly.
                let live: Vec<u32> = data.iter().map(|(id, _)| id).collect();
                let id = live[rng.gen_range(0..live.len())];
                let point = data.record(id).to_vec();
                data.apply(&Update::Delete(id)).unwrap();
                assert!(tree.delete(id, &point), "step {step}: {id} must exist");
            }
            if step % 50 == 0 {
                tree.check_invariants().unwrap();
            }
        }
        tree.check_invariants().unwrap();
        assert_eq!(tree.len(), data.live_len());
        let rebuilt = RStarTree::bulk_load(&data);
        let q = BoundingBox::new(vec![0.2, 0.1, 0.25], vec![0.8, 0.9, 0.7]);
        let mut a = tree.range_ids(&q);
        let mut b = rebuilt.range_ids(&q);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(tree.range_count(&q), rebuilt.range_count(&q));
        assert_eq!(
            tree.count_dominators(&[0.4, 0.4, 0.4], None),
            rebuilt.count_dominators(&[0.4, 0.4, 0.4], None)
        );
    }

    #[test]
    fn delete_duplicate_points_one_at_a_time() {
        let mut t = RStarTree::with_config(2, small_config());
        for i in 0..12u32 {
            t.insert(i, &[0.5, 0.5]);
        }
        for i in 0..12u32 {
            assert!(t.delete(i, &[0.5, 0.5]));
            t.check_invariants().unwrap();
            assert_eq!(t.len() as u32, 11 - i);
        }
        assert!(t.is_empty());
    }
}
