//! STR (sort-tile-recursive) bulk loading.
//!
//! Bulk loading packs the dataset bottom-up into nearly full nodes; it is the
//! way the experiment harness builds the index over the large synthetic and
//! simulated-real datasets before running queries (the paper pre-builds its
//! R\*-trees the same way).

use super::node::{Child, Entry, Node};
use super::RStarTree;
use mrq_data::Dataset;

impl RStarTree {
    pub(crate) fn str_bulk_load(&mut self, data: &Dataset) {
        // `Dataset::iter` yields live records only, so a bulk load over a
        // mutated dataset matches an incrementally maintained tree.
        let mut entries: Vec<Entry> = data.iter().map(|(id, r)| Entry::record(id, r)).collect();
        self.len = entries.len();
        if entries.is_empty() {
            return;
        }
        // Drop the placeholder empty root so every arena slot is reachable.
        self.nodes.clear();
        self.free.clear();
        let mut level = 0u32;
        loop {
            let parents = self.pack_level(entries, level);
            if parents.len() == 1 {
                match parents[0].child {
                    Child::Node(idx) => {
                        self.root = idx as usize;
                        self.height = level;
                    }
                    Child::Record(_) => unreachable!("pack_level always produces node entries"),
                }
                return;
            }
            entries = parents;
            level += 1;
        }
    }

    /// Packs one level's entries into nodes, returning the entries describing
    /// the created nodes (for the next level up).
    fn pack_level(&mut self, entries: Vec<Entry>, level: u32) -> Vec<Entry> {
        let cap = self.config.max_entries;
        let min = self.config.min_entries;
        let groups = str_tile(entries, 0, self.dims, cap, min);
        let mut parents = Vec::with_capacity(groups.len());
        for group in groups {
            debug_assert!(!group.is_empty());
            let node = Node {
                level,
                entries: group,
            };
            let idx = self.alloc_node(node);
            parents.push(self.make_node_entry(idx));
        }
        parents
    }
}

/// Recursively tiles entries along successive dimensions (classic STR),
/// producing groups of at most `cap` entries and — except when there are too
/// few entries overall — at least `min` entries.
fn str_tile(
    mut entries: Vec<Entry>,
    dim: usize,
    dims: usize,
    cap: usize,
    min: usize,
) -> Vec<Vec<Entry>> {
    if entries.len() <= cap {
        return vec![entries];
    }
    let node_count = entries.len().div_ceil(cap);
    if dim + 1 >= dims {
        sort_by_center(&mut entries, dim);
        return chunk_balanced(entries, cap, min);
    }
    // Number of slabs along this dimension ≈ node_count^(1/remaining_dims).
    let remaining = (dims - dim) as f64;
    let slabs = (node_count as f64).powf(1.0 / remaining).ceil() as usize;
    let slabs = slabs.clamp(1, node_count);
    sort_by_center(&mut entries, dim);
    let per_slab = entries.len().div_ceil(slabs);
    let mut out = Vec::new();
    let mut rest = entries;
    while !rest.is_empty() {
        let take = per_slab.min(rest.len());
        let slab: Vec<Entry> = rest.drain(..take).collect();
        out.extend(str_tile(slab, dim + 1, dims, cap, min));
    }
    out
}

fn sort_by_center(entries: &mut [Entry], dim: usize) {
    entries.sort_by(|a, b| {
        let ca = a.mbr.lo[dim] + a.mbr.hi[dim];
        let cb = b.mbr.lo[dim] + b.mbr.hi[dim];
        ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
    });
}

/// Splits a sorted run into chunks of `cap`, rebalancing the tail so no chunk
/// falls below `min` (when the run is large enough to allow it).
fn chunk_balanced(entries: Vec<Entry>, cap: usize, min: usize) -> Vec<Vec<Entry>> {
    let total = entries.len();
    let mut chunks: Vec<Vec<Entry>> = Vec::with_capacity(total.div_ceil(cap));
    let mut it = entries.into_iter();
    loop {
        let chunk: Vec<Entry> = it.by_ref().take(cap).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    if chunks.len() >= 2 {
        let last_len = chunks.last().map(|c| c.len()).unwrap_or(0);
        if last_len < min {
            let deficit = min - last_len;
            let prev = chunks.len() - 2;
            if chunks[prev].len() >= min + deficit {
                let moved: Vec<Entry> = {
                    let prev_chunk = &mut chunks[prev];
                    let at = prev_chunk.len() - deficit;
                    prev_chunk.split_off(at)
                };
                chunks.last_mut().unwrap().splice(0..0, moved);
            }
        }
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrq_data::RecordId;

    fn entry(id: RecordId, x: f64) -> Entry {
        Entry::record(id, &[x, 0.5])
    }

    #[test]
    fn chunk_balanced_avoids_tiny_tail() {
        let entries: Vec<Entry> = (0..21).map(|i| entry(i, i as f64 / 21.0)).collect();
        let chunks = chunk_balanced(entries, 10, 4);
        let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 21);
        assert!(sizes.iter().all(|&s| s >= 4), "sizes {sizes:?}");
    }

    #[test]
    fn str_tile_group_sizes() {
        let entries: Vec<Entry> = (0..137)
            .map(|i| entry(i, (i as f64 * 0.37) % 1.0))
            .collect();
        let groups = str_tile(entries, 0, 2, 16, 6);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 137);
        assert!(groups.iter().all(|g| g.len() <= 16));
    }
}
