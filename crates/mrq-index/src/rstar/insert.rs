//! One-by-one insertion with the R\* heuristics: choose-subtree by minimum
//! overlap enlargement at the leaf level, forced reinsertion on the first
//! overflow of each level, and the topological (margin-driven) split.

use super::node::{overlap, Child, Entry, Node};
use super::RStarTree;
use mrq_data::RecordId;
use mrq_geometry::BoundingBox;

impl RStarTree {
    pub(crate) fn insert_record(&mut self, id: RecordId, point: &[f64]) {
        let entry = Entry::record(id, point);
        // Forced reinsertion is allowed once per level per logical insertion.
        let mut reinserted = vec![false; self.height as usize + 1];
        self.insert_entry(entry, 0, &mut reinserted);
    }

    /// Inserts an entry (record or subtree) at the given level.  Also used
    /// by deletion to reinsert the entries of dissolved underfull nodes.
    pub(super) fn insert_entry(
        &mut self,
        entry: Entry,
        target_level: u32,
        reinserted: &mut Vec<bool>,
    ) {
        let path = self.choose_path(&entry.mbr, target_level);
        let target = *path.last().expect("path always contains the root");
        self.nodes[target].entries.push(entry);
        self.propagate(&path, reinserted);
    }

    /// Root-to-target path following the R\* choose-subtree rule.  Each node
    /// on the path is charged as one page read.
    fn choose_path(&self, mbr: &BoundingBox, target_level: u32) -> Vec<usize> {
        let mut path = vec![self.root];
        let mut current = self.root;
        self.io.record_read();
        while self.nodes[current].level > target_level {
            let node = &self.nodes[current];
            let child_is_leaf = node.level == target_level + 1 && target_level == 0;
            let mut best: Option<(usize, f64, f64, f64)> = None; // (pos, overlap_incr, area_incr, area)
            for (pos, e) in node.entries.iter().enumerate() {
                let enlarged = e.mbr.union(mbr);
                let area = e.mbr.volume();
                let area_incr = enlarged.volume() - area;
                let overlap_incr = if child_is_leaf {
                    // Overlap enlargement against the sibling entries.
                    let mut before = 0.0;
                    let mut after = 0.0;
                    for (other_pos, other) in node.entries.iter().enumerate() {
                        if other_pos == pos {
                            continue;
                        }
                        before += overlap(&e.mbr, &other.mbr);
                        after += overlap(&enlarged, &other.mbr);
                    }
                    after - before
                } else {
                    0.0
                };
                let candidate = (pos, overlap_incr, area_incr, area);
                best = Some(match best {
                    None => candidate,
                    Some(b) => {
                        let better = (candidate.1, candidate.2, candidate.3) < (b.1, b.2, b.3);
                        if better {
                            candidate
                        } else {
                            b
                        }
                    }
                });
            }
            let chosen = best.expect("internal nodes are never empty").0;
            current = match node.entries[chosen].child {
                Child::Node(idx) => idx as usize,
                Child::Record(_) => unreachable!("internal node entry must point to a node"),
            };
            self.io.record_read();
            path.push(current);
        }
        path
    }

    /// Walks the insertion path bottom-up, handling overflows and refreshing
    /// parent MBRs / aggregate counts.
    fn propagate(&mut self, path: &[usize], reinserted: &mut Vec<bool>) {
        let mut i = path.len() - 1;
        loop {
            let idx = path[i];
            let level = self.nodes[idx].level as usize;
            if self.nodes[idx].entries.len() > self.config.max_entries {
                if reinserted.len() <= level {
                    reinserted.resize(level + 1, false);
                }
                if i > 0 && !reinserted[level] {
                    reinserted[level] = true;
                    let removed = self.take_reinsert_entries(idx);
                    // Tighten ancestors before reinserting.
                    for j in (1..=i).rev() {
                        self.refresh_child_entry(path[j - 1], path[j]);
                    }
                    let lvl = level as u32;
                    for e in removed {
                        self.insert_entry(e, lvl, reinserted);
                    }
                    return;
                }
                let new_entry = self.split_node(idx);
                if i == 0 {
                    // The root split: grow the tree by one level.
                    let old_root_entry = self.make_node_entry(self.root);
                    let new_root = Node {
                        level: self.nodes[self.root].level + 1,
                        entries: vec![old_root_entry, new_entry],
                    };
                    self.root = self.alloc_node(new_root);
                    self.height += 1;
                    return;
                }
                let parent = path[i - 1];
                self.refresh_child_entry(parent, idx);
                self.nodes[parent].entries.push(new_entry);
                i -= 1;
                continue;
            }
            if i == 0 {
                return;
            }
            let parent = path[i - 1];
            self.refresh_child_entry(parent, idx);
            i -= 1;
        }
    }

    /// Builds the parent entry describing `node_idx`.
    pub(crate) fn make_node_entry(&self, node_idx: usize) -> Entry {
        let node = &self.nodes[node_idx];
        Entry {
            mbr: node
                .mbr()
                .expect("nodes referenced by entries are never empty"),
            count: node.total_count(),
            child: Child::Node(node_idx as u32),
        }
    }

    /// Recomputes the MBR and aggregate count of the `parent`'s entry pointing
    /// to `child`.
    pub(crate) fn refresh_child_entry(&mut self, parent: usize, child: usize) {
        let fresh = self.make_node_entry(child);
        let node = &mut self.nodes[parent];
        for e in node.entries.iter_mut() {
            if e.child == Child::Node(child as u32) {
                e.mbr = fresh.mbr;
                e.count = fresh.count;
                return;
            }
        }
        panic!("parent {parent} has no entry for child {child}");
    }

    /// Removes the `reinsert_count` entries farthest from the node's centre
    /// (the R\* forced-reinsertion set), leaving the node legal.
    fn take_reinsert_entries(&mut self, idx: usize) -> Vec<Entry> {
        let count = self.config.reinsert_count;
        let node = &mut self.nodes[idx];
        let node_mbr = node.mbr().expect("overflowing node is not empty");
        let center = node_mbr.center();
        let mut order: Vec<usize> = (0..node.entries.len()).collect();
        let dist = |e: &Entry| -> f64 {
            e.mbr
                .center()
                .iter()
                .zip(&center)
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        };
        order.sort_by(|&a, &b| {
            dist(&node.entries[b])
                .partial_cmp(&dist(&node.entries[a]))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let to_remove: Vec<usize> = order.into_iter().take(count).collect();
        let mut removed = Vec::with_capacity(to_remove.len());
        let mut sorted = to_remove;
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        for pos in sorted {
            removed.push(node.entries.swap_remove(pos));
        }
        removed
    }

    /// R\* topological split of an overflowing node.  The node keeps the first
    /// group; the returned entry describes the newly created sibling.
    pub(crate) fn split_node(&mut self, idx: usize) -> Entry {
        let min = self.config.min_entries;
        let level = self.nodes[idx].level;
        let entries = std::mem::take(&mut self.nodes[idx].entries);
        let total = entries.len();
        debug_assert!(total > self.config.max_entries);
        let dims = self.dims;

        // Candidate distributions: for each axis, entries sorted by lower and
        // by upper coordinate; for each sort, split positions k in
        // [min, total - min].
        let mut best_axis = 0;
        let mut best_axis_margin = f64::INFINITY;
        let mut sorted_by_axis: Vec<(Vec<usize>, Vec<usize>)> = Vec::with_capacity(dims);
        for axis in 0..dims {
            let mut by_lo: Vec<usize> = (0..total).collect();
            by_lo.sort_by(|&a, &b| {
                entries[a].mbr.lo[axis]
                    .partial_cmp(&entries[b].mbr.lo[axis])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut by_hi: Vec<usize> = (0..total).collect();
            by_hi.sort_by(|&a, &b| {
                entries[a].mbr.hi[axis]
                    .partial_cmp(&entries[b].mbr.hi[axis])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut margin_sum = 0.0;
            for order in [&by_lo, &by_hi] {
                for k in min..=total - min {
                    let (m1, m2) = group_mbrs(&entries, order, k);
                    margin_sum += margin(&m1) + margin(&m2);
                }
            }
            if margin_sum < best_axis_margin {
                best_axis_margin = margin_sum;
                best_axis = axis;
            }
            sorted_by_axis.push((by_lo, by_hi));
        }

        let (by_lo, by_hi) = &sorted_by_axis[best_axis];
        let mut best: Option<(Vec<usize>, usize, f64, f64)> = None; // (order, k, overlap, area)
        for order in [by_lo, by_hi] {
            for k in min..=total - min {
                let (m1, m2) = group_mbrs(&entries, order, k);
                let ov = overlap(&m1, &m2);
                let area = m1.volume() + m2.volume();
                let better = match &best {
                    None => true,
                    Some((_, _, bo, ba)) => {
                        ov < *bo - 1e-15 || ((ov - bo).abs() <= 1e-15 && area < *ba)
                    }
                };
                if better {
                    best = Some((order.clone(), k, ov, area));
                }
            }
        }
        let (order, k, _, _) = best.expect("at least one distribution exists");

        let mut first = Vec::with_capacity(k);
        let mut second = Vec::with_capacity(total - k);
        for (pos, &e_idx) in order.iter().enumerate() {
            if pos < k {
                first.push(entries[e_idx].clone());
            } else {
                second.push(entries[e_idx].clone());
            }
        }
        self.nodes[idx].entries = first;
        let new_node = Node {
            level,
            entries: second,
        };
        let new_idx = self.alloc_node(new_node);
        self.make_node_entry(new_idx)
    }
}

fn group_mbrs(entries: &[Entry], order: &[usize], k: usize) -> (BoundingBox, BoundingBox) {
    let mut first = entries[order[0]].mbr.clone();
    for &i in &order[1..k] {
        first = first.union(&entries[i].mbr);
    }
    let mut second = entries[order[k]].mbr.clone();
    for &i in &order[k + 1..] {
        second = second.union(&entries[i].mbr);
    }
    (first, second)
}

fn margin(b: &BoundingBox) -> f64 {
    b.lo.iter().zip(&b.hi).map(|(l, h)| h - l).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rstar::RStarConfig;

    #[test]
    fn split_respects_min_entries() {
        let config = RStarConfig {
            max_entries: 4,
            min_entries: 2,
            reinsert_count: 1,
        };
        let mut tree = RStarTree::with_config(2, config);
        // Fill a single node beyond capacity manually, then split.
        for i in 0..5u32 {
            let x = i as f64 / 5.0;
            tree.nodes[0].entries.push(Entry::record(i, &[x, 1.0 - x]));
        }
        let new_entry = tree.split_node(0);
        let first_len = tree.nodes[0].entries.len();
        let second_len = match new_entry.child {
            Child::Node(idx) => tree.nodes[idx as usize].entries.len(),
            _ => panic!("split must create a node entry"),
        };
        assert_eq!(first_len + second_len, 5);
        assert!(first_len >= 2 && second_len >= 2);
    }
}
