//! An aggregate R\*-tree over point data.
//!
//! This is the disk-resident spatial index the paper assumes for the dataset
//! `D` (Beckmann et al.'s R\*-tree \[2\], augmented with per-entry record
//! counts as in the aggregate R-tree of \[16\]).  Features:
//!
//! * one-by-one insertion with the R\* heuristics (choose-subtree by minimum
//!   overlap enlargement at the leaf level, forced reinsertion, topological
//!   split),
//! * deletion with underfull-node condensing (an underfull node is dissolved
//!   and its entries reinserted at their level, the classic R-tree
//!   `CondenseTree`), root collapse, and node-slot reuse through a free
//!   list,
//! * STR (sort-tile-recursive) bulk loading,
//! * axis-parallel range reporting and *aggregate* range counting (counted
//!   sub-trees are not descended into, saving I/O exactly as the paper's
//!   dominator counting does),
//! * focal-record partitioning queries used by BA (retrieve incomparable
//!   records) and by both algorithms (count dominators),
//! * page-access accounting via [`IoStats`].
//!
//! Node fan-out defaults to what fits a 4 KB page for the given
//! dimensionality, mirroring the experimental setup of Section 8.

mod bulk;
mod delete;
mod insert;
mod node;
mod query;

pub use node::{Child, Entry, Node, RStarConfig};

use crate::iostats::{IoStats, PAGE_SIZE_BYTES};
use mrq_data::{Dataset, RecordId};
use mrq_geometry::BoundingBox;

/// The aggregate R\*-tree.
///
/// The tree stores point entries only (each record is a degenerate box); the
/// arena-based node storage keeps the implementation simple and cache
/// friendly while the [`IoStats`] counter simulates the paged cost model.
#[derive(Debug, Clone)]
pub struct RStarTree {
    pub(crate) dims: usize,
    pub(crate) config: RStarConfig,
    pub(crate) nodes: Vec<Node>,
    /// Arena slots of dissolved nodes, reused by later allocations.
    pub(crate) free: Vec<usize>,
    pub(crate) root: usize,
    pub(crate) height: u32,
    pub(crate) len: usize,
    pub(crate) io: IoStats,
}

impl RStarTree {
    /// Creates an empty tree for `dims`-dimensional points with a fan-out
    /// derived from the 4 KB page size (at least 4, at most 256 entries).
    pub fn new(dims: usize) -> Self {
        Self::with_config(dims, RStarConfig::for_page_size(dims, PAGE_SIZE_BYTES))
    }

    /// Creates an empty tree with an explicit configuration.
    pub fn with_config(dims: usize, config: RStarConfig) -> Self {
        assert!(dims >= 1, "dimensionality must be positive");
        config.validate();
        let root_node = Node {
            level: 0,
            entries: Vec::new(),
        };
        Self {
            dims,
            config,
            nodes: vec![root_node],
            free: Vec::new(),
            root: 0,
            height: 0,
            len: 0,
            io: IoStats::new(),
        }
    }

    /// Allocates a node slot, reusing a freed one when available.
    pub(crate) fn alloc_node(&mut self, node: Node) -> usize {
        match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    /// Builds a tree over an entire dataset using STR bulk loading.
    pub fn bulk_load(data: &Dataset) -> Self {
        Self::bulk_load_with_config(
            data,
            RStarConfig::for_page_size(data.dims(), PAGE_SIZE_BYTES),
        )
    }

    /// Bulk loads with an explicit configuration.
    pub fn bulk_load_with_config(data: &Dataset, config: RStarConfig) -> Self {
        let mut tree = Self::with_config(data.dims(), config);
        tree.str_bulk_load(data);
        tree
    }

    /// Inserts a single record (id + coordinates).  The root-to-leaf
    /// traversal is charged to [`IoStats`] (one read per node visited), as
    /// deletion and the queries are.
    pub fn insert(&mut self, id: RecordId, point: &[f64]) {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        self.insert_record(id, point);
        self.len += 1;
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the indexed points.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Height of the tree (0 for a single leaf node).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of live nodes (= simulated disk pages) in the tree.
    /// Arena slots freed by deletions are not counted (they are reused by
    /// later allocations).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// The I/O counter shared by all queries on this tree.
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// Resets the I/O counter.
    pub fn reset_io(&self) {
        self.io.reset();
    }

    /// Minimum bounding box of all indexed points (None when empty).
    pub fn bounding_box(&self) -> Option<BoundingBox> {
        let root = &self.nodes[self.root];
        let mut it = root.entries.iter();
        let first = it.next()?;
        let mut mbr = first.mbr.clone();
        for e in it {
            mbr = mbr.union(&e.mbr);
        }
        Some(mbr)
    }

    /// Internal consistency check used by tests: every node entry's MBR and
    /// count must match its child subtree, node fan-outs must respect the
    /// configuration, all leaves must be at level 0, and every arena slot
    /// must be either reachable from the root or on the free list.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut visited = 0usize;
        let (count, _mbr) = self.check_node(self.root, self.height, &mut visited)?;
        if count != self.len {
            return Err(format!("root count {count} != len {}", self.len));
        }
        let distinct_free: std::collections::HashSet<usize> = self.free.iter().copied().collect();
        if distinct_free.len() != self.free.len() {
            return Err("free list holds a duplicate slot".into());
        }
        if visited + self.free.len() != self.nodes.len() {
            return Err(format!(
                "arena accounting broken: {visited} reachable + {} free != {} slots",
                self.free.len(),
                self.nodes.len()
            ));
        }
        Ok(())
    }

    fn check_node(
        &self,
        idx: usize,
        expected_level: u32,
        visited: &mut usize,
    ) -> Result<(usize, Option<BoundingBox>), String> {
        *visited += 1;
        let node = &self.nodes[idx];
        if node.level != expected_level {
            return Err(format!(
                "node {idx} level {} expected {expected_level}",
                node.level
            ));
        }
        if idx != self.root && node.entries.len() < self.config.min_entries {
            return Err(format!(
                "node {idx} underfull: {} < {}",
                node.entries.len(),
                self.config.min_entries
            ));
        }
        if node.entries.len() > self.config.max_entries {
            return Err(format!(
                "node {idx} overfull: {} > {}",
                node.entries.len(),
                self.config.max_entries
            ));
        }
        let mut total = 0usize;
        let mut mbr: Option<BoundingBox> = None;
        for e in &node.entries {
            match e.child {
                Child::Record(_) => {
                    if node.level != 0 {
                        return Err(format!("record entry in internal node {idx}"));
                    }
                    if e.count != 1 {
                        return Err(format!("record entry with count {}", e.count));
                    }
                    total += 1;
                }
                Child::Node(c) => {
                    if node.level == 0 {
                        return Err(format!("child node entry in leaf {idx}"));
                    }
                    let (cnt, cmbr) = self.check_node(c as usize, node.level - 1, visited)?;
                    if cnt != e.count as usize {
                        return Err(format!("entry count {} != subtree count {cnt}", e.count));
                    }
                    if let Some(cmbr) = cmbr {
                        // The entry MBR must equal the child's tight MBR.
                        let tol = 1e-9;
                        let tight = cmbr;
                        let ok = tight
                            .lo
                            .iter()
                            .zip(&e.mbr.lo)
                            .all(|(a, b)| (a - b).abs() < tol)
                            && tight
                                .hi
                                .iter()
                                .zip(&e.mbr.hi)
                                .all(|(a, b)| (a - b).abs() < tol);
                        if !ok {
                            return Err(format!("entry MBR of node {idx} not tight"));
                        }
                    }
                    total += cnt;
                }
            }
            mbr = Some(match mbr {
                None => e.mbr.clone(),
                Some(m) => m.union(&e.mbr),
            });
        }
        Ok((total, mbr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrq_data::{synthetic, Distribution};
    use rand::{rngs::StdRng, SeedableRng};

    fn point_box(p: &[f64]) -> BoundingBox {
        BoundingBox::new(p.to_vec(), p.to_vec())
    }

    #[test]
    fn empty_tree() {
        let t = RStarTree::new(3);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 0);
        assert!(t.bounding_box().is_none());
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_small_and_query() {
        let mut t = RStarTree::with_config(
            2,
            RStarConfig {
                max_entries: 4,
                min_entries: 2,
                reinsert_count: 1,
            },
        );
        let pts = [
            [0.1, 0.2],
            [0.5, 0.5],
            [0.9, 0.1],
            [0.3, 0.8],
            [0.7, 0.6],
            [0.2, 0.4],
            [0.8, 0.9],
            [0.4, 0.1],
        ];
        for (i, p) in pts.iter().enumerate() {
            t.insert(i as u32, p);
            t.check_invariants().unwrap();
        }
        assert_eq!(t.len(), 8);
        assert!(t.height() >= 1);
        let all = t.range_ids(&BoundingBox::unit(2));
        assert_eq!(all.len(), 8);
        let some = t.range_ids(&BoundingBox::new(vec![0.0, 0.0], vec![0.5, 0.5]));
        let mut some_sorted = some.clone();
        some_sorted.sort_unstable();
        // (0.1,0.2), (0.2,0.4), (0.4,0.1) plus (0.5,0.5), which lies on the
        // closed range boundary and must be included.
        assert_eq!(some_sorted, vec![0, 1, 5, 7]);
        assert!(t.range_count(&point_box(&[0.5, 0.5])) == 1);
    }

    #[test]
    fn insertion_matches_bulk_load_results() {
        let mut rng = StdRng::seed_from_u64(42);
        let data = synthetic::generate(Distribution::Independent, 600, 3, &mut rng);
        let bulk = RStarTree::bulk_load(&data);
        bulk.check_invariants().unwrap();
        let mut incr = RStarTree::new(3);
        for (id, r) in data.iter() {
            incr.insert(id, r);
        }
        incr.check_invariants().unwrap();
        let query = BoundingBox::new(vec![0.2, 0.1, 0.3], vec![0.7, 0.8, 0.9]);
        let mut a = bulk.range_ids(&query);
        let mut b = incr.range_ids(&query);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(bulk.range_count(&query) as usize, a.len());
        assert_eq!(incr.range_count(&query) as usize, a.len());
    }

    #[test]
    fn bulk_load_respects_fanout() {
        let mut rng = StdRng::seed_from_u64(7);
        let data = synthetic::generate(Distribution::Correlated, 2000, 4, &mut rng);
        let t = RStarTree::bulk_load(&data);
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 2000);
        assert!(t.height() >= 1);
    }

    #[test]
    fn aggregate_count_saves_io() {
        let mut rng = StdRng::seed_from_u64(9);
        let data = synthetic::generate(Distribution::Independent, 3000, 2, &mut rng);
        let t = RStarTree::bulk_load(&data);
        // Count the whole space: the aggregate counts mean only the root needs
        // to be read.
        t.reset_io();
        let c = t.range_count(&BoundingBox::unit(2));
        assert_eq!(c as usize, 3000);
        assert_eq!(
            t.io().reads(),
            1,
            "whole-space count must touch only the root"
        );
        // Reporting ids, in contrast, must touch every leaf.
        t.reset_io();
        let ids = t.range_ids(&BoundingBox::unit(2));
        assert_eq!(ids.len(), 3000);
        assert!(t.io().reads() as usize >= t.node_count() / 2);
    }

    #[test]
    fn count_dominators_matches_linear_scan() {
        let mut rng = StdRng::seed_from_u64(21);
        let data = synthetic::generate(Distribution::AntiCorrelated, 1000, 3, &mut rng);
        let t = RStarTree::bulk_load(&data);
        for focal in [5u32, 77, 400, 999] {
            let p = data.record(focal);
            let expected = data
                .iter()
                .filter(|(id, r)| *id != focal && mrq_data::dominates(r, p))
                .count();
            assert_eq!(t.count_dominators(p, Some(focal)) as usize, expected);
        }
    }

    #[test]
    fn incomparable_ids_match_partition() {
        let mut rng = StdRng::seed_from_u64(33);
        let data = synthetic::generate(Distribution::Independent, 800, 3, &mut rng);
        let t = RStarTree::bulk_load(&data);
        let focal = 123u32;
        let p = data.record(focal).to_vec();
        let part = mrq_data::partition_by_focal(&data, &p, Some(focal));
        let mut got = t.incomparable_ids(&p, Some(focal));
        got.sort_unstable();
        let mut expected = part.incomparable.clone();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn duplicate_points_supported() {
        let mut t = RStarTree::new(2);
        for i in 0..20u32 {
            t.insert(i, &[0.5, 0.5]);
        }
        t.check_invariants().unwrap();
        assert_eq!(
            t.range_count(&BoundingBox::new(vec![0.5, 0.5], vec![0.5, 0.5])),
            20
        );
        assert_eq!(t.count_dominators(&[0.5, 0.5], None), 0);
    }

    #[test]
    fn config_from_page_size_reasonable() {
        let c4 = RStarConfig::for_page_size(4, PAGE_SIZE_BYTES);
        assert!(c4.max_entries >= 16 && c4.max_entries <= 256);
        assert!(c4.min_entries >= 2);
        assert!(c4.min_entries <= c4.max_entries / 2);
        let c9 = RStarConfig::for_page_size(9, PAGE_SIZE_BYTES);
        assert!(c9.max_entries < c4.max_entries);
    }
}
