//! Query operations over the aggregate R\*-tree: range reporting, aggregate
//! counting, dominator counting and incomparable-record retrieval.
//!
//! Every *node read* increments the tree's [`IoStats`](crate::IoStats)
//! counter; aggregate counts deliberately avoid descending into sub-trees
//! whose MBR is fully covered by the query, which is exactly how the paper's
//! aggregate R-tree makes dominator counting cheap.

use super::node::{Child, Node};
use super::RStarTree;
use mrq_data::RecordId;
use mrq_geometry::BoundingBox;

impl RStarTree {
    /// Reports the ids of all records inside the closed query box.
    pub fn range_ids(&self, query: &BoundingBox) -> Vec<RecordId> {
        let mut out = Vec::new();
        if self.len == 0 {
            return out;
        }
        self.range_ids_rec(self.root, query, &mut out);
        out
    }

    fn range_ids_rec(&self, idx: usize, query: &BoundingBox, out: &mut Vec<RecordId>) {
        self.io.record_read();
        let node: &Node = &self.nodes[idx];
        for e in &node.entries {
            if !query.intersects(&e.mbr) {
                continue;
            }
            match e.child {
                Child::Record(id) => out.push(id),
                Child::Node(child) => self.range_ids_rec(child as usize, query, out),
            }
        }
    }

    /// Counts the records inside the closed query box, using the aggregate
    /// counts to avoid descending into fully covered sub-trees.
    pub fn range_count(&self, query: &BoundingBox) -> u64 {
        if self.len == 0 {
            return 0;
        }
        self.range_count_rec(self.root, query)
    }

    fn range_count_rec(&self, idx: usize, query: &BoundingBox) -> u64 {
        self.io.record_read();
        let node = &self.nodes[idx];
        let mut total = 0u64;
        for e in &node.entries {
            if !query.intersects(&e.mbr) {
                continue;
            }
            if query.contains_box(&e.mbr) {
                total += u64::from(e.count);
                continue;
            }
            match e.child {
                Child::Record(_) => {
                    // The record's point MBR intersects but is not contained —
                    // impossible for a degenerate box, so this is unreachable;
                    // kept for robustness.
                }
                Child::Node(child) => total += self.range_count_rec(child as usize, query),
            }
        }
        total
    }

    /// Counts the dominators of `p`: records with every attribute ≥ the
    /// corresponding attribute of `p`, excluding records equal to `p`
    /// (which covers the focal record itself when it belongs to the dataset).
    ///
    /// `_focal_id` documents intent at call sites; the exclusion works through
    /// coordinates, so the id itself is not needed.
    pub fn count_dominators(&self, p: &[f64], _focal_id: Option<RecordId>) -> u64 {
        assert_eq!(p.len(), self.dims);
        if self.len == 0 {
            return 0;
        }
        let upper = self
            .bounding_box()
            .map(|b| b.hi)
            .unwrap_or_else(|| vec![1.0; self.dims]);
        let hi: Vec<f64> = upper.iter().zip(p).map(|(u, pi)| u.max(*pi)).collect();
        let dominator_box = BoundingBox::new(p.to_vec(), hi);
        let equal_box = BoundingBox::new(p.to_vec(), p.to_vec());
        let weak = self.range_count(&dominator_box);
        let equal = self.range_count(&equal_box);
        weak - equal
    }

    /// Reports the ids of all records *incomparable* to the focal point `p`
    /// (neither dominating nor dominated by it, and not equal to it),
    /// excluding `skip` if given.  This is the record-access pattern of the
    /// basic approach (BA), which must read every incomparable record.
    pub fn incomparable_ids(&self, p: &[f64], skip: Option<RecordId>) -> Vec<RecordId> {
        assert_eq!(p.len(), self.dims);
        let mut out = Vec::new();
        if self.len == 0 {
            return out;
        }
        self.incomparable_rec(self.root, p, skip, &mut out);
        out
    }

    fn incomparable_rec(
        &self,
        idx: usize,
        p: &[f64],
        skip: Option<RecordId>,
        out: &mut Vec<RecordId>,
    ) {
        self.io.record_read();
        let node = &self.nodes[idx];
        for e in &node.entries {
            // Prune sub-trees that contain only dominators / duplicates
            // (lower corner weakly dominates p) or only dominees / duplicates
            // (upper corner weakly dominated by p).
            let all_ge = e.mbr.lo.iter().zip(p).all(|(l, pi)| l >= pi);
            let all_le = e.mbr.hi.iter().zip(p).all(|(h, pi)| h <= pi);
            if all_ge || all_le {
                continue;
            }
            match e.child {
                Child::Record(id) => {
                    if Some(id) == skip {
                        continue;
                    }
                    let r = &e.mbr.lo;
                    let ge = r.iter().zip(p).all(|(a, b)| a >= b);
                    let le = r.iter().zip(p).all(|(a, b)| a <= b);
                    if !ge && !le {
                        out.push(id);
                    }
                }
                Child::Node(child) => self.incomparable_rec(child as usize, p, skip, out),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rstar::RStarConfig;
    use mrq_data::{synthetic, Dataset, Distribution};
    use rand::{rngs::StdRng, SeedableRng};

    fn small_tree() -> (Dataset, RStarTree) {
        let mut rng = StdRng::seed_from_u64(5);
        let data = synthetic::generate(Distribution::Independent, 400, 2, &mut rng);
        let tree = RStarTree::bulk_load_with_config(
            &data,
            RStarConfig {
                max_entries: 8,
                min_entries: 3,
                reinsert_count: 2,
            },
        );
        (data, tree)
    }

    #[test]
    fn range_ids_match_scan() {
        let (data, tree) = small_tree();
        let q = BoundingBox::new(vec![0.25, 0.4], vec![0.75, 0.95]);
        let mut got = tree.range_ids(&q);
        got.sort_unstable();
        let expected: Vec<u32> = data
            .iter()
            .filter(|(_, r)| q.contains(r))
            .map(|(id, _)| id)
            .collect();
        assert_eq!(got, expected);
        assert_eq!(tree.range_count(&q) as usize, expected.len());
    }

    #[test]
    fn count_uses_fewer_reads_than_report() {
        let (_, tree) = small_tree();
        let q = BoundingBox::new(vec![0.1, 0.1], vec![0.9, 0.9]);
        tree.reset_io();
        let _ = tree.range_count(&q);
        let count_io = tree.io().reads();
        tree.reset_io();
        let _ = tree.range_ids(&q);
        let report_io = tree.io().reads();
        assert!(
            count_io < report_io,
            "count {count_io} vs report {report_io}"
        );
    }

    #[test]
    fn dominators_empty_tree() {
        let t = RStarTree::new(3);
        assert_eq!(t.count_dominators(&[0.5, 0.5, 0.5], None), 0);
        assert!(t.incomparable_ids(&[0.5, 0.5, 0.5], None).is_empty());
        assert!(t.range_ids(&BoundingBox::unit(3)).is_empty());
        assert_eq!(t.range_count(&BoundingBox::unit(3)), 0);
    }

    #[test]
    fn incomparable_excludes_boundary_cases() {
        // Records exactly equal to p, dominating p, and dominated by p are
        // all excluded; only genuinely incomparable ones remain.
        let data = Dataset::from_rows(
            2,
            &[
                vec![0.5, 0.5], // equal to p
                vec![0.6, 0.5], // dominator (weak, one equal coordinate)
                vec![0.5, 0.4], // dominee (weak)
                vec![0.9, 0.1], // incomparable
                vec![0.1, 0.9], // incomparable
            ],
        );
        let tree = RStarTree::bulk_load(&data);
        let mut ids = tree.incomparable_ids(&[0.5, 0.5], None);
        ids.sort_unstable();
        assert_eq!(ids, vec![3, 4]);
        assert_eq!(tree.count_dominators(&[0.5, 0.5], None), 1);
    }

    #[test]
    fn focal_point_not_in_dataset() {
        let (data, tree) = small_tree();
        let p = [0.5, 0.5];
        let expected_dom = data
            .iter()
            .filter(|(_, r)| mrq_data::dominates(r, &p))
            .count();
        assert_eq!(tree.count_dominators(&p, None) as usize, expected_dom);
        let expected_inc = data
            .iter()
            .filter(|(_, r)| !mrq_data::dominates(r, &p) && !mrq_data::dominates(&p, r) && *r != p)
            .count();
        assert_eq!(tree.incomparable_ids(&p, None).len(), expected_inc);
    }
}
