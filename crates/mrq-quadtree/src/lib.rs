//! The augmented quad-tree over the reduced query space (paper, Section 5.1).
//!
//! Both the basic approach (BA) and the advanced approach (AA) organise the
//! half-spaces induced by (a subset of) the incomparable records in a
//! space-partitioning index over the (d−1)-dimensional reduced query space.
//! The index is a quad-tree augmented with two sets per node:
//!
//! * the **full-containment set** — half-spaces that fully contain the node's
//!   region but do *not* contain its parent (recording those would be
//!   redundant, exactly as the paper notes);
//! * the **partial-overlap set** (leaves only) — half-spaces whose supporting
//!   hyperplane crosses the leaf.
//!
//! A leaf splits into its `2^(d−1)` quadrants when its partial-overlap set
//! exceeds a threshold; children that fall completely outside the permissible
//! simplex (`Σ q_i < 1`) are discarded.
//!
//! For every leaf `l` the tree can report `F_l` (the union of the containment
//! sets on the root-to-leaf path) and `P_l`; `|F_l|` is the lower bound on the
//! order of every arrangement cell inside the leaf that drives BA's and AA's
//! leaf pruning.

pub mod tree;

pub use tree::{HalfSpaceId, HalfSpaceQuadTree, LeafView, QuadTreeConfig};
