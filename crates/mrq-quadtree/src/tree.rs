//! Implementation of the augmented half-space quad-tree.

use mrq_geometry::{reduced_simplex_constraint, BoundingBox, BoxRelation, HalfSpace};

/// Identifier of a half-space stored in the tree (insertion order).
pub type HalfSpaceId = u32;

/// Split/depth configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuadTreeConfig {
    /// A leaf splits when its partial-overlap set grows beyond this size.
    pub split_threshold: usize,
    /// Maximum tree depth (the root has depth 0).  Bounds memory: a split
    /// creates `2^(d−1)` children, so high-dimensional trees stay shallow.
    pub max_depth: usize,
}

impl QuadTreeConfig {
    /// A reasonable default for the given reduced dimensionality `d − 1`:
    /// the split threshold keeps within-leaf bit-string enumeration cheap,
    /// while the depth cap keeps the number of nodes bounded as the fan-out
    /// (`2^(d−1)`) grows.
    pub fn for_reduced_dims(dr: usize) -> Self {
        let max_depth = match dr {
            0 | 1 => 16,
            2 => 9,
            3 => 6,
            4 => 5,
            5 => 4,
            _ => 3,
        };
        Self {
            split_threshold: 12,
            max_depth,
        }
    }
}

/// A read-only view of one leaf, as consumed by the MaxRank algorithms.
#[derive(Debug, Clone)]
pub struct LeafView {
    /// Index of the leaf node inside the tree (stable across insertions that
    /// do not split it).
    pub node: usize,
    /// The leaf's region.
    pub bounds: BoundingBox,
    /// `F_l`: ids of half-spaces fully containing the leaf (union over the
    /// root-to-leaf path).
    pub full: Vec<HalfSpaceId>,
    /// `P_l`: ids of half-spaces partially overlapping the leaf.
    pub partial: Vec<HalfSpaceId>,
}

#[derive(Debug, Clone)]
enum NodeKind {
    Leaf { partial: Vec<HalfSpaceId> },
    Internal { children: Vec<usize> },
}

#[derive(Debug, Clone)]
struct QNode {
    bounds: BoundingBox,
    depth: usize,
    /// Half-spaces fully containing this node but not its parent.
    containment: Vec<HalfSpaceId>,
    kind: NodeKind,
}

/// The augmented quad-tree over the reduced query space `[0,1]^(d−1)`.
#[derive(Debug, Clone)]
pub struct HalfSpaceQuadTree {
    dr: usize,
    config: QuadTreeConfig,
    simplex: HalfSpace,
    halfspaces: Vec<HalfSpace>,
    nodes: Vec<QNode>,
    root: usize,
}

impl HalfSpaceQuadTree {
    /// Creates an empty tree over the `dr`-dimensional reduced query space
    /// (for data dimensionality `d`, `dr = d − 1`).
    pub fn new(dr: usize) -> Self {
        Self::with_config(dr, QuadTreeConfig::for_reduced_dims(dr))
    }

    /// Creates an empty tree with an explicit configuration.
    pub fn with_config(dr: usize, config: QuadTreeConfig) -> Self {
        assert!(
            dr >= 1,
            "the reduced query space has at least one dimension"
        );
        let root = QNode {
            bounds: BoundingBox::unit(dr),
            depth: 0,
            containment: Vec::new(),
            kind: NodeKind::Leaf {
                partial: Vec::new(),
            },
        };
        Self {
            dr,
            config,
            simplex: reduced_simplex_constraint(dr + 1),
            halfspaces: Vec::new(),
            nodes: vec![root],
            root: 0,
        }
    }

    /// Dimensionality of the reduced query space.
    pub fn reduced_dims(&self) -> usize {
        self.dr
    }

    /// Number of half-spaces inserted so far.
    pub fn halfspace_count(&self) -> usize {
        self.halfspaces.len()
    }

    /// Borrow a stored half-space by id.
    pub fn halfspace(&self, id: HalfSpaceId) -> &HalfSpace {
        &self.halfspaces[id as usize]
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves (including leaves that are partially outside the
    /// permissible simplex; fully outside leaves are never created).
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Leaf { .. }))
            .count()
    }

    /// Inserts a half-space of the reduced query space, returning its id.
    ///
    /// # Panics
    /// Panics if the half-space dimensionality does not match the tree's.
    pub fn insert(&mut self, h: HalfSpace) -> HalfSpaceId {
        assert_eq!(h.dim(), self.dr, "half-space dimensionality mismatch");
        let id = self.halfspaces.len() as HalfSpaceId;
        self.halfspaces.push(h);
        self.insert_into(self.root, id);
        id
    }

    fn insert_into(&mut self, node_idx: usize, id: HalfSpaceId) {
        let relation = {
            let node = &self.nodes[node_idx];
            node.bounds.relation_to(&self.halfspaces[id as usize])
        };
        match relation {
            BoxRelation::Disjoint => {}
            BoxRelation::Contained => self.nodes[node_idx].containment.push(id),
            BoxRelation::Overlapping => {
                let children = match &mut self.nodes[node_idx].kind {
                    NodeKind::Leaf { partial } => {
                        partial.push(id);
                        let should_split = partial.len() > self.config.split_threshold
                            && self.nodes[node_idx].depth < self.config.max_depth;
                        if should_split {
                            self.split_leaf(node_idx);
                        }
                        return;
                    }
                    NodeKind::Internal { children } => children.clone(),
                };
                for child in children {
                    self.insert_into(child, id);
                }
            }
        }
    }

    /// Splits a leaf into its quadrants, redistributing its partial-overlap
    /// set.  Children fully outside the permissible simplex are discarded.
    fn split_leaf(&mut self, node_idx: usize) {
        let (bounds, depth, partial) = {
            let node = &mut self.nodes[node_idx];
            let partial = match &mut node.kind {
                NodeKind::Leaf { partial } => std::mem::take(partial),
                NodeKind::Internal { .. } => unreachable!("split_leaf on internal node"),
            };
            (node.bounds.clone(), node.depth, partial)
        };
        let mut children = Vec::new();
        for quadrant in bounds.quadrants() {
            // Drop quadrants completely outside Σ q_i < 1.
            if quadrant.relation_to(&self.simplex) == BoxRelation::Disjoint {
                continue;
            }
            let mut containment = Vec::new();
            let mut child_partial = Vec::new();
            for &hid in &partial {
                match quadrant.relation_to(&self.halfspaces[hid as usize]) {
                    BoxRelation::Contained => containment.push(hid),
                    BoxRelation::Overlapping => child_partial.push(hid),
                    BoxRelation::Disjoint => {}
                }
            }
            let child = QNode {
                bounds: quadrant,
                depth: depth + 1,
                containment,
                kind: NodeKind::Leaf {
                    partial: child_partial,
                },
            };
            self.nodes.push(child);
            children.push(self.nodes.len() - 1);
        }
        self.nodes[node_idx].kind = NodeKind::Internal {
            children: children.clone(),
        };
        // Recursively split children that are still over the threshold.
        for child in children {
            let needs_split = match &self.nodes[child].kind {
                NodeKind::Leaf { partial } => {
                    partial.len() > self.config.split_threshold
                        && self.nodes[child].depth < self.config.max_depth
                }
                NodeKind::Internal { .. } => false,
            };
            if needs_split {
                self.split_leaf(child);
            }
        }
    }

    /// Collects all leaves together with their `F_l` and `P_l` sets.
    ///
    /// Leaves fully outside the permissible simplex never exist (discarded at
    /// split time); the root itself always straddles the simplex boundary and
    /// is therefore kept.
    pub fn leaves(&self) -> Vec<LeafView> {
        let mut out = Vec::new();
        let mut inherited = Vec::new();
        self.collect_leaves(self.root, &mut inherited, &mut out);
        out
    }

    fn collect_leaves(
        &self,
        node_idx: usize,
        inherited: &mut Vec<HalfSpaceId>,
        out: &mut Vec<LeafView>,
    ) {
        let node = &self.nodes[node_idx];
        let pushed = node.containment.len();
        inherited.extend_from_slice(&node.containment);
        match &node.kind {
            NodeKind::Leaf { partial } => {
                out.push(LeafView {
                    node: node_idx,
                    bounds: node.bounds.clone(),
                    full: inherited.clone(),
                    partial: partial.clone(),
                });
            }
            NodeKind::Internal { children } => {
                for &child in children {
                    self.collect_leaves(child, inherited, out);
                }
            }
        }
        inherited.truncate(inherited.len() - pushed);
    }

    /// For a single point of the reduced query space, the ids of all inserted
    /// half-spaces containing it (reference implementation used by tests and
    /// oracles; linear in the number of half-spaces).
    pub fn containing_halfspaces(&self, q: &[f64]) -> Vec<HalfSpaceId> {
        self.halfspaces
            .iter()
            .enumerate()
            .filter(|(_, h)| h.contains(q))
            .map(|(i, _)| i as HalfSpaceId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hs(coeffs: &[f64], rhs: f64) -> HalfSpace {
        HalfSpace::new(coeffs.to_vec(), rhs)
    }

    #[test]
    fn empty_tree_single_leaf() {
        let t = HalfSpaceQuadTree::new(2);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.leaf_count(), 1);
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 1);
        assert!(leaves[0].full.is_empty());
        assert!(leaves[0].partial.is_empty());
        assert_eq!(t.reduced_dims(), 2);
    }

    #[test]
    fn containment_vs_partial_classification() {
        let mut t = HalfSpaceQuadTree::new(2);
        // Contains the whole unit box.
        let a = t.insert(hs(&[1.0, 1.0], -0.5));
        // Crosses the box.
        let b = t.insert(hs(&[1.0, 0.0], 0.5));
        // Disjoint from the box.
        let c = t.insert(hs(&[1.0, 1.0], 5.0));
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves[0].full, vec![a]);
        assert_eq!(leaves[0].partial, vec![b]);
        assert!(!leaves[0].full.contains(&c) && !leaves[0].partial.contains(&c));
        assert_eq!(t.halfspace_count(), 3);
    }

    #[test]
    fn split_redistributes_and_avoids_redundancy() {
        let mut t = HalfSpaceQuadTree::with_config(
            2,
            QuadTreeConfig {
                split_threshold: 2,
                max_depth: 4,
            },
        );
        // Three crossing half-spaces force a split.
        let ids: Vec<_> = [
            hs(&[1.0, 0.0], 0.3),
            hs(&[0.0, 1.0], 0.6),
            hs(&[1.0, 1.0], 0.9),
        ]
        .into_iter()
        .map(|h| t.insert(h))
        .collect();
        assert!(t.leaf_count() > 1, "leaf must have split");
        for leaf in t.leaves() {
            // F_l and P_l are disjoint and never contain duplicates.
            let mut all: Vec<_> = leaf.full.iter().chain(&leaf.partial).collect();
            let before = all.len();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), before, "duplicate id in leaf sets");
            // Every id must be one of the inserted ones.
            for id in all {
                assert!(ids.contains(id));
            }
            // Classification must be geometrically correct.
            for &id in &leaf.full {
                assert_eq!(
                    leaf.bounds.relation_to(t.halfspace(id)),
                    BoxRelation::Contained
                );
            }
            for &id in &leaf.partial {
                assert_eq!(
                    leaf.bounds.relation_to(t.halfspace(id)),
                    BoxRelation::Overlapping
                );
            }
        }
    }

    #[test]
    fn leaf_sets_account_for_every_overlapping_halfspace() {
        // For any leaf and any inserted half-space: either the half-space is
        // in F_l, in P_l, disjoint from the leaf, or it contains the leaf via
        // an ancestor (and is then still reported in F_l by `leaves`).
        let mut t = HalfSpaceQuadTree::with_config(
            3,
            QuadTreeConfig {
                split_threshold: 3,
                max_depth: 3,
            },
        );
        let mut rng_state = 123456789u64;
        let mut next = || {
            // Simple xorshift for reproducibility without pulling rand here.
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state % 1000) as f64 / 1000.0
        };
        for _ in 0..40 {
            let coeffs = vec![next() - 0.5, next() - 0.5, next() - 0.5];
            let rhs = next() - 0.5;
            t.insert(HalfSpace::new(coeffs, rhs));
        }
        for leaf in t.leaves() {
            for id in 0..t.halfspace_count() as HalfSpaceId {
                let h = t.halfspace(id);
                let rel = leaf.bounds.relation_to(h);
                let in_full = leaf.full.contains(&id);
                let in_partial = leaf.partial.contains(&id);
                match rel {
                    BoxRelation::Contained => assert!(in_full && !in_partial),
                    BoxRelation::Overlapping => assert!(in_partial && !in_full),
                    BoxRelation::Disjoint => assert!(!in_full && !in_partial),
                }
            }
        }
    }

    #[test]
    fn children_outside_simplex_are_discarded() {
        // In a 2-d reduced space the permissible region is the triangle below
        // q1 + q2 = 1; after one split the upper-right quadrant is entirely
        // outside and must be dropped.
        let mut t = HalfSpaceQuadTree::with_config(
            2,
            QuadTreeConfig {
                split_threshold: 1,
                max_depth: 2,
            },
        );
        t.insert(hs(&[1.0, -1.0], 0.0));
        t.insert(hs(&[-1.0, 1.0], 0.0));
        assert!(t.leaf_count() > 1);
        for leaf in t.leaves() {
            let lo_sum: f64 = leaf.bounds.lo.iter().sum();
            assert!(
                lo_sum < 1.0 - 1e-9,
                "leaf entirely outside the simplex must not exist: {:?}",
                leaf.bounds
            );
        }
    }

    #[test]
    fn max_depth_caps_splitting() {
        let mut t = HalfSpaceQuadTree::with_config(
            2,
            QuadTreeConfig {
                split_threshold: 1,
                max_depth: 1,
            },
        );
        // Many half-spaces through the centre would split forever without the
        // depth cap.
        for i in 0..20 {
            let angle = i as f64 * 0.3;
            t.insert(hs(
                &[angle.cos(), angle.sin()],
                0.5 * (angle.cos() + angle.sin()),
            ));
        }
        let max_depth_seen = t
            .leaves()
            .iter()
            .map(|l| {
                // Depth can be inferred from the side length (unit box halved
                // per level).
                let side = l.bounds.extent(0);
                (1.0 / side).log2().round() as usize
            })
            .max()
            .unwrap();
        assert!(max_depth_seen <= 1);
    }

    #[test]
    fn containing_halfspaces_reference() {
        let mut t = HalfSpaceQuadTree::new(2);
        let a = t.insert(hs(&[1.0, 0.0], 0.2));
        let b = t.insert(hs(&[0.0, 1.0], 0.7));
        let got = t.containing_halfspaces(&[0.5, 0.5]);
        assert!(got.contains(&a) && !got.contains(&b));
    }

    #[test]
    fn default_config_scales_with_dimension() {
        assert!(
            QuadTreeConfig::for_reduced_dims(1).max_depth
                > QuadTreeConfig::for_reduced_dims(7).max_depth
        );
    }
}
