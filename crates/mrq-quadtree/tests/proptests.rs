//! Property-based tests for the augmented quad-tree: for random half-space
//! sets, every leaf's full-containment and partial-overlap sets must be
//! geometrically correct and jointly account for every inserted half-space,
//! and membership derived from the tree must agree with direct evaluation.

use mrq_geometry::{BoxRelation, HalfSpace};
use mrq_quadtree::{HalfSpaceQuadTree, QuadTreeConfig};
use proptest::prelude::*;

fn halfspaces_strategy(dr: usize) -> impl Strategy<Value = Vec<HalfSpace>> {
    prop::collection::vec(
        (prop::collection::vec(-1.0f64..1.0, dr), -0.8f64..0.8),
        1..40,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .filter(|(coeffs, _)| coeffs.iter().any(|c| c.abs() > 1e-6))
            .map(|(coeffs, rhs)| HalfSpace::new(coeffs, rhs))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Leaf set classification is geometrically exact for every half-space.
    #[test]
    fn leaf_sets_are_exact(
        dr in 1usize..4,
        seed in any::<u64>(),
        threshold in 2usize..10,
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut qt = HalfSpaceQuadTree::with_config(
            dr,
            QuadTreeConfig { split_threshold: threshold, max_depth: 4 },
        );
        let count = rng.gen_range(1..30);
        for _ in 0..count {
            let coeffs: Vec<f64> = (0..dr).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            if coeffs.iter().all(|c| c.abs() < 1e-6) {
                continue;
            }
            let rhs = rng.gen::<f64>() - 0.5;
            qt.insert(HalfSpace::new(coeffs, rhs));
        }
        for leaf in qt.leaves() {
            for id in 0..qt.halfspace_count() as u32 {
                let rel = leaf.bounds.relation_to(qt.halfspace(id));
                let in_full = leaf.full.contains(&id);
                let in_partial = leaf.partial.contains(&id);
                match rel {
                    BoxRelation::Contained => prop_assert!(in_full && !in_partial),
                    BoxRelation::Overlapping => prop_assert!(in_partial && !in_full),
                    BoxRelation::Disjoint => prop_assert!(!in_full && !in_partial),
                }
            }
        }
    }

    /// For any point of the permissible simplex, |F_l| of its leaf is a lower
    /// bound on (and |F_l| + |P_l| an upper bound on) the number of inserted
    /// half-spaces containing the point.
    #[test]
    fn leaf_bounds_bracket_point_membership(halfspaces in halfspaces_strategy(2), px in 0.01f64..0.95, py in 0.01f64..0.95) {
        prop_assume!(px + py < 0.99);
        let mut qt = HalfSpaceQuadTree::with_config(2, QuadTreeConfig { split_threshold: 4, max_depth: 5 });
        for h in &halfspaces {
            qt.insert(h.clone());
        }
        let point = [px, py];
        let direct = qt.containing_halfspaces(&point).len();
        // Find the leaf containing the point.
        let leaf = qt
            .leaves()
            .into_iter()
            .find(|l| l.bounds.contains(&point))
            .expect("the leaves cover the unit box");
        prop_assert!(leaf.full.len() <= direct);
        prop_assert!(direct <= leaf.full.len() + leaf.partial.len());
        // And every full-containment half-space really contains the point.
        for id in &leaf.full {
            prop_assert!(qt.halfspace(*id).contains(&point) || qt.halfspace(*id).slack(&point) > -1e-9);
        }
    }
}
