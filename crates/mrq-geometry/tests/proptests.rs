//! Property-based tests for the geometric substrate.

use mrq_geometry::{
    halfspace_for_record, maximize, reduced::expand_query, BoundingBox, BoxRelation, CellSpec,
    HalfSpace, LpOutcome,
};
use proptest::prelude::*;

fn unit_vec(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, d)
}

fn query_in_simplex(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..1.0, d).prop_map(|v| {
        let s: f64 = v.iter().sum();
        v.into_iter().map(|x| x / s).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The reduced-space half-space slack equals the score difference exactly
    /// (Section 5 derivation), for any dimensionality 2..=7.
    #[test]
    fn reduced_mapping_matches_score_difference(
        d in 2usize..=7,
        seed in any::<u64>(),
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let r: Vec<f64> = (0..d).map(|_| rng.gen::<f64>()).collect();
        let p: Vec<f64> = (0..d).map(|_| rng.gen::<f64>()).collect();
        let mut q: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() + 1e-3).collect();
        let s: f64 = q.iter().sum();
        q.iter_mut().for_each(|x| *x /= s);
        let reduced = &q[..d - 1];
        let h = halfspace_for_record(&r, &p);
        let expanded = expand_query(reduced);
        let score_diff: f64 = r.iter().zip(&expanded).map(|(a, b)| a * b).sum::<f64>()
            - p.iter().zip(&expanded).map(|(a, b)| a * b).sum::<f64>();
        prop_assert!((h.slack(reduced) - score_diff).abs() < 1e-9);
    }

    /// Box/half-space classification agrees with exhaustive corner checks.
    #[test]
    fn box_relation_consistent_with_corners(
        lo in unit_vec(3),
        ext in prop::collection::vec(0.01f64..0.5, 3),
        coeffs in prop::collection::vec(-1.0f64..1.0, 3),
        rhs in -1.0f64..1.0,
    ) {
        let hi: Vec<f64> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
        let b = BoundingBox::new(lo.clone(), hi.clone());
        let h = HalfSpace::new(coeffs, rhs);
        prop_assume!(!h.is_degenerate());
        // Enumerate the 8 corners.
        let mut inside = 0;
        let mut outside = 0;
        for mask in 0..8u32 {
            let corner: Vec<f64> = (0..3)
                .map(|i| if mask >> i & 1 == 1 { hi[i] } else { lo[i] })
                .collect();
            if h.slack(&corner) > 1e-7 {
                inside += 1;
            } else if h.slack(&corner) < -1e-7 {
                outside += 1;
            }
        }
        match b.relation_to(&h) {
            BoxRelation::Contained => prop_assert_eq!(outside, 0),
            BoxRelation::Disjoint => prop_assert_eq!(inside, 0),
            BoxRelation::Overlapping => {
                // A crossing hyperplane must leave at least one corner on a
                // non-strictly-inside side and one on a non-strictly-outside
                // side (corner signs may be all-boundary in degenerate cases).
                prop_assert!(inside < 8 && outside < 8);
            }
        }
    }

    /// The LP never reports an objective that violates a constraint, and a
    /// randomly generated feasible system is never declared infeasible.
    #[test]
    fn lp_respects_constraints(
        n in 1usize..4,
        m in 1usize..8,
        seed in any::<u64>(),
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        // Construct a system that is feasible by design: pick a point y0 >= 0,
        // random rows a_i, and set b_i = a_i . y0 + margin_i with margin >= 0.
        let y0: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0).collect();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..m {
            let row: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            let margin = rng.gen::<f64>();
            let rhs: f64 = row.iter().zip(&y0).map(|(x, y)| x * y).sum::<f64>() + margin;
            a.push(row);
            b.push(rhs);
        }
        // Bound the region so the LP cannot be unbounded.
        for i in 0..n {
            let mut row = vec![0.0; i];
            row.push(1.0);
            row.resize(n, 0.0);
            a.push(row);
            b.push(10.0);
        }
        let c: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        match maximize(&c, &a, &b) {
            LpOutcome::Optimal { objective, point } => {
                for (row, rhs) in a.iter().zip(&b) {
                    let lhs: f64 = row.iter().zip(&point).map(|(x, y)| x * y).sum();
                    prop_assert!(lhs <= rhs + 1e-6, "constraint violated: {lhs} > {rhs}");
                }
                for v in &point {
                    prop_assert!(*v >= -1e-9);
                }
                let recomputed: f64 = c.iter().zip(&point).map(|(x, y)| x * y).sum();
                prop_assert!((objective - recomputed).abs() < 1e-6);
                // The designed feasible point bounds the optimum from below.
                let lower: f64 = c.iter().zip(&y0).map(|(x, y)| x * y).sum();
                prop_assert!(objective >= lower - 1e-6);
            }
            LpOutcome::Infeasible => prop_assert!(false, "feasible-by-design system declared infeasible"),
            LpOutcome::Unbounded => prop_assert!(false, "bounded system declared unbounded"),
        }
    }

    /// A cell declared non-empty has a witness satisfying every constraint;
    /// a cell containing a half-space and its complement is always empty.
    #[test]
    fn cellspec_witness_is_valid(
        dr in 1usize..4,
        k in 0usize..5,
        seed in any::<u64>(),
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inside = Vec::new();
        let mut outside = Vec::new();
        for _ in 0..k {
            let coeffs: Vec<f64> = (0..dr).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            let rhs = rng.gen::<f64>() - 0.5;
            let h = HalfSpace::new(coeffs, rhs);
            if rng.gen::<bool>() {
                inside.push(h);
            } else {
                outside.push(h);
            }
        }
        let spec = CellSpec::new(inside.clone(), outside.clone(), BoundingBox::unit(dr));
        if let Some(region) = spec.solve() {
            for h in &inside {
                prop_assert!(h.contains(&region.witness));
            }
            for h in &outside {
                prop_assert!(!h.contains(&region.witness));
            }
            prop_assert!(region.contains(&region.witness));
        }
        // Contradictory spec must be empty.
        if let Some(h) = inside.first() {
            let mut out2 = outside.clone();
            out2.push(h.clone());
            let spec2 = CellSpec::new(inside.clone(), out2, BoundingBox::unit(dr));
            prop_assert!(spec2.solve().is_none());
        }
    }

    /// Permissible queries expand to vectors that sum to 1.
    #[test]
    fn expanded_queries_are_permissible(q in query_in_simplex(4)) {
        let reduced = &q[..3];
        let full = expand_query(reduced);
        prop_assert!((full.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
