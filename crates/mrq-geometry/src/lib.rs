//! Computational-geometry substrate for the MaxRank reproduction.
//!
//! The MaxRank query (Mouratidis, Zhang, Pang — VLDB 2015) maps every data
//! record that is *incomparable* to the focal record into a half-space of the
//! (d−1)-dimensional *reduced query space*, and then reasons about the
//! arrangement of those half-spaces.  This crate provides the geometric
//! building blocks used by every higher layer:
//!
//! * [`vector`] — dense d-dimensional vector/score arithmetic,
//! * [`halfspace`] — hyperplanes and open half-spaces,
//! * [`boxes`] — axis-parallel boxes and box/half-space classification,
//! * [`reduced`] — the record → half-space mapping of Section 5 of the paper,
//! * [`lp`] — a dense two-phase simplex used to decide whether a cell of the
//!   arrangement has non-zero extent (the role Qhull plays in the paper),
//! * [`region`] — convex result regions (H-representation + interior witness).
//!
//! Everything is `f64`-based; the numerical tolerances used throughout are
//! collected in [`EPS`] and [`FEASIBILITY_SLACK`].

pub mod boxes;
pub mod halfspace;
pub mod lp;
pub mod reduced;
pub mod region;
pub mod vector;

pub use boxes::{BoundingBox, BoxRelation};
pub use halfspace::{HalfSpace, Hyperplane};
pub use lp::{maximize, maximize_with, LpOutcome, LpScratch, LpStatus};
pub use reduced::{
    halfline_for_record, halfspace_for_record, reduced_simplex_constraint, reduced_space_box,
    HalfLine2d,
};
pub use region::{interval_region, CellSpec, Region};
pub use vector::{dot, l1_norm, l2_norm, score, sub};

/// Geometric tolerance used for classification decisions (containment,
/// disjointness, sign tests).
pub const EPS: f64 = 1e-9;

/// Minimum interior slack for a cell to be considered full-dimensional
/// (non-zero extent).  The paper ignores score ties / degenerate cells; we
/// make the same choice explicit through this threshold.
pub const FEASIBILITY_SLACK: f64 = 1e-7;
