//! Hyperplanes and open half-spaces in the reduced query space.
//!
//! A [`HalfSpace`] represents the open set `{ x : a · x > b }`.  In the
//! MaxRank construction (paper, Section 5) each record `r` that is
//! incomparable to the focal record `p` induces exactly one such half-space:
//! the query vectors for which `S(r) > S(p)`.

use crate::vector::{dot, l2_norm};
use crate::EPS;

/// The hyperplane `{ x : a · x = b }`.
#[derive(Debug, Clone, PartialEq)]
pub struct Hyperplane {
    /// Normal coefficients `a`.
    pub coeffs: Vec<f64>,
    /// Offset `b`.
    pub rhs: f64,
}

impl Hyperplane {
    /// Creates a hyperplane `a · x = b`.
    pub fn new(coeffs: Vec<f64>, rhs: f64) -> Self {
        Self { coeffs, rhs }
    }

    /// Signed evaluation `a · x − b` (positive on the "inside" of the
    /// half-space sharing this supporting hyperplane).
    #[inline]
    pub fn eval(&self, x: &[f64]) -> f64 {
        dot(&self.coeffs, x) - self.rhs
    }

    /// Dimensionality of the ambient space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }
}

/// The open half-space `{ x : a · x > b }`.
#[derive(Debug, Clone, PartialEq)]
pub struct HalfSpace {
    /// Normal coefficients `a`.
    pub coeffs: Vec<f64>,
    /// Offset `b`.
    pub rhs: f64,
}

impl HalfSpace {
    /// Creates the half-space `a · x > b`.
    pub fn new(coeffs: Vec<f64>, rhs: f64) -> Self {
        Self { coeffs, rhs }
    }

    /// The supporting hyperplane `a · x = b`.
    pub fn boundary(&self) -> Hyperplane {
        Hyperplane::new(self.coeffs.clone(), self.rhs)
    }

    /// Dimensionality of the ambient space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }

    /// Signed slack `a · x − b`; strictly positive inside the half-space.
    #[inline]
    pub fn slack(&self, x: &[f64]) -> f64 {
        dot(&self.coeffs, x) - self.rhs
    }

    /// Strict containment test with the crate tolerance.
    #[inline]
    pub fn contains(&self, x: &[f64]) -> bool {
        self.slack(x) > EPS
    }

    /// The (closed complement's interior) `{ x : a · x < b }`, i.e. the open
    /// half-space on the other side of the supporting hyperplane.
    pub fn complement(&self) -> HalfSpace {
        HalfSpace::new(self.coeffs.iter().map(|c| -c).collect(), -self.rhs)
    }

    /// Euclidean norm of the normal vector; zero for a degenerate half-space.
    pub fn normal_norm(&self) -> f64 {
        l2_norm(&self.coeffs)
    }

    /// A degenerate half-space has an (almost) zero normal: it is either the
    /// whole space (rhs < 0) or empty (rhs ≥ 0), and corresponds to a record
    /// whose score equals the focal record's for every query vector.
    pub fn is_degenerate(&self) -> bool {
        self.normal_norm() < EPS
    }

    /// For a degenerate half-space, whether it covers the whole space.
    pub fn degenerate_is_full(&self) -> bool {
        debug_assert!(self.is_degenerate());
        self.rhs < -EPS
    }

    /// Returns a copy whose normal has unit Euclidean length (the geometry of
    /// the half-space is unchanged).  Degenerate half-spaces are returned
    /// as-is.
    pub fn normalized(&self) -> HalfSpace {
        let n = self.normal_norm();
        if n < EPS {
            return self.clone();
        }
        HalfSpace::new(self.coeffs.iter().map(|c| c / n).collect(), self.rhs / n)
    }
}

/// Pairwise relationship between (the within-leaf restrictions of) two
/// half-spaces whose supporting hyperplanes do not cross inside the leaf.
/// Mirrors Figure 4 of the paper and drives the bit-string pruning rules of
/// Section 5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairRelation {
    /// The hyperplanes cross inside the leaf; no constraint between the bits.
    Crossing,
    /// The two half-spaces are disjoint inside the leaf: bits cannot both be 1.
    Disjoint,
    /// The first half-space contains the second inside the leaf: the second's
    /// bit cannot be 1 while the first's is 0.
    FirstContainsSecond,
    /// The second half-space contains the first inside the leaf.
    SecondContainsFirst,
    /// The union covers the leaf but neither contains the other: bits cannot
    /// both be 0.
    CoveringOverlap,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halfspace_contains_and_complement() {
        // x + y > 1
        let h = HalfSpace::new(vec![1.0, 1.0], 1.0);
        assert!(h.contains(&[0.8, 0.8]));
        assert!(!h.contains(&[0.2, 0.2]));
        assert!(!h.contains(&[0.5, 0.5])); // boundary: not strictly inside
        let c = h.complement();
        assert!(c.contains(&[0.2, 0.2]));
        assert!(!c.contains(&[0.8, 0.8]));
    }

    #[test]
    fn boundary_eval_sign() {
        let h = HalfSpace::new(vec![2.0, -1.0], 0.5);
        let b = h.boundary();
        assert!(b.eval(&[1.0, 0.0]) > 0.0);
        assert!(b.eval(&[0.0, 1.0]) < 0.0);
        assert_eq!(b.dim(), 2);
        assert_eq!(h.dim(), 2);
    }

    #[test]
    fn normalized_preserves_geometry() {
        let h = HalfSpace::new(vec![3.0, 4.0], 2.5);
        let n = h.normalized();
        assert!((n.normal_norm() - 1.0).abs() < 1e-12);
        for p in [[0.9, 0.9], [0.1, 0.1], [0.5, 0.25]] {
            assert_eq!(h.contains(&p), n.contains(&p));
        }
    }

    #[test]
    fn degenerate_halfspaces() {
        let full = HalfSpace::new(vec![0.0, 0.0], -1.0);
        assert!(full.is_degenerate());
        assert!(full.degenerate_is_full());
        let empty = HalfSpace::new(vec![0.0, 0.0], 1.0);
        assert!(empty.is_degenerate());
        assert!(!empty.degenerate_is_full());
    }

    #[test]
    fn slack_matches_dot() {
        let h = HalfSpace::new(vec![1.0, -2.0, 0.5], 0.25);
        let x = [0.3, 0.1, 0.6];
        assert!((h.slack(&x) - (0.3 - 0.2 + 0.3 - 0.25)).abs() < 1e-12);
    }
}
