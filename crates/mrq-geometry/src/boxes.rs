//! Axis-parallel boxes and their classification against half-spaces.
//!
//! The augmented quad-tree (paper, Section 5.1) needs to decide, for every
//! node region and every inserted half-space, whether the node is *fully
//! contained* in the half-space, *disjoint* from it, or *partially
//! overlapping*.  Because the regions are axis-parallel boxes, the minimum
//! and maximum of the linear form `a · x` over the box are attained at
//! corners and can be computed coordinate-wise.

use crate::halfspace::HalfSpace;
use crate::EPS;

/// Relationship of a box with respect to an open half-space `a · x > b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoxRelation {
    /// Every point of the box lies strictly inside the half-space.
    Contained,
    /// No point of the box lies inside the half-space.
    Disjoint,
    /// The supporting hyperplane crosses the box.
    Overlapping,
}

/// A closed axis-parallel box `[lo_1, hi_1] × … × [lo_d, hi_d]`.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundingBox {
    /// Lower corner.
    pub lo: Vec<f64>,
    /// Upper corner.
    pub hi: Vec<f64>,
}

impl BoundingBox {
    /// Creates a box from its corners.
    ///
    /// # Panics
    /// Panics if the corners have different dimensionality or if any lower
    /// coordinate exceeds the corresponding upper coordinate.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "box corners must share dimensionality");
        assert!(
            lo.iter().zip(&hi).all(|(l, h)| l <= h),
            "box lower corner must not exceed upper corner"
        );
        Self { lo, hi }
    }

    /// The unit hyper-cube `[0, 1]^dim`.
    pub fn unit(dim: usize) -> Self {
        Self::new(vec![0.0; dim], vec![1.0; dim])
    }

    /// Dimensionality of the box.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Side length along dimension `i`.
    #[inline]
    pub fn extent(&self, i: usize) -> f64 {
        self.hi[i] - self.lo[i]
    }

    /// Volume (product of side lengths).
    pub fn volume(&self) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| (h - l).max(0.0))
            .product()
    }

    /// Centre point of the box.
    pub fn center(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| 0.5 * (l + h))
            .collect()
    }

    /// Whether `x` lies in the closed box.
    pub fn contains(&self, x: &[f64]) -> bool {
        debug_assert_eq!(x.len(), self.dim());
        x.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(v, (l, h))| *v >= l - EPS && *v <= h + EPS)
    }

    /// Minimum of `a · x` over the box.
    pub fn min_dot(&self, a: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), self.dim());
        a.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(c, (l, h))| if *c >= 0.0 { c * l } else { c * h })
            .sum()
    }

    /// Maximum of `a · x` over the box.
    pub fn max_dot(&self, a: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), self.dim());
        a.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(c, (l, h))| if *c >= 0.0 { c * h } else { c * l })
            .sum()
    }

    /// Classifies the box against an open half-space `a · x > b`.
    pub fn relation_to(&self, h: &HalfSpace) -> BoxRelation {
        if h.is_degenerate() {
            return if h.degenerate_is_full() {
                BoxRelation::Contained
            } else {
                BoxRelation::Disjoint
            };
        }
        // Work with the normalised form so that EPS has consistent meaning
        // regardless of the magnitude of the coefficients.
        let n = h.normal_norm();
        let min = self.min_dot(&h.coeffs) / n;
        let max = self.max_dot(&h.coeffs) / n;
        let rhs = h.rhs / n;
        if min > rhs + EPS {
            BoxRelation::Contained
        } else if max <= rhs + EPS {
            BoxRelation::Disjoint
        } else {
            BoxRelation::Overlapping
        }
    }

    /// Splits the box into its `2^dim` quadrants (children of a quad-tree
    /// node), in lexicographic order of the child index bits: bit `i` of the
    /// child index selects the upper half along dimension `i`.
    pub fn quadrants(&self) -> Vec<BoundingBox> {
        let d = self.dim();
        let mid = self.center();
        let count = 1usize << d;
        let mut out = Vec::with_capacity(count);
        for mask in 0..count {
            let mut lo = Vec::with_capacity(d);
            let mut hi = Vec::with_capacity(d);
            for (i, &m) in mid.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    lo.push(m);
                    hi.push(self.hi[i]);
                } else {
                    lo.push(self.lo[i]);
                    hi.push(m);
                }
            }
            out.push(BoundingBox::new(lo, hi));
        }
        out
    }

    /// Smallest box containing both `self` and `other`.
    pub fn union(&self, other: &BoundingBox) -> BoundingBox {
        debug_assert_eq!(self.dim(), other.dim());
        BoundingBox::new(
            self.lo
                .iter()
                .zip(&other.lo)
                .map(|(a, b)| a.min(*b))
                .collect(),
            self.hi
                .iter()
                .zip(&other.hi)
                .map(|(a, b)| a.max(*b))
                .collect(),
        )
    }

    /// Whether the closed boxes intersect.
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((al, ah), (bl, bh))| al <= bh && bl <= ah)
    }

    /// Whether `other` is fully inside `self` (closed containment).
    pub fn contains_box(&self, other: &BoundingBox) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((al, ah), (bl, bh))| al <= bl && bh <= ah)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hs(coeffs: &[f64], rhs: f64) -> HalfSpace {
        HalfSpace::new(coeffs.to_vec(), rhs)
    }

    #[test]
    fn unit_box_basics() {
        let b = BoundingBox::unit(3);
        assert_eq!(b.dim(), 3);
        assert!((b.volume() - 1.0).abs() < 1e-12);
        assert_eq!(b.center(), vec![0.5, 0.5, 0.5]);
        assert!(b.contains(&[0.0, 1.0, 0.5]));
        assert!(!b.contains(&[1.2, 0.5, 0.5]));
    }

    #[test]
    fn min_max_dot() {
        let b = BoundingBox::new(vec![0.0, 0.5], vec![1.0, 1.0]);
        let a = [2.0, -1.0];
        assert!((b.min_dot(&a) - (0.0 - 1.0)).abs() < 1e-12);
        assert!((b.max_dot(&a) - (2.0 - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn relation_contained_disjoint_overlap() {
        let b = BoundingBox::unit(2);
        // x + y > -1 contains the unit box.
        assert_eq!(
            b.relation_to(&hs(&[1.0, 1.0], -1.0)),
            BoxRelation::Contained
        );
        // x + y > 3 is disjoint from it.
        assert_eq!(b.relation_to(&hs(&[1.0, 1.0], 3.0)), BoxRelation::Disjoint);
        // x + y > 1 crosses it.
        assert_eq!(
            b.relation_to(&hs(&[1.0, 1.0], 1.0)),
            BoxRelation::Overlapping
        );
        // Touching along a face only (x > 1) counts as disjoint for an OPEN
        // half-space.
        assert_eq!(b.relation_to(&hs(&[1.0, 0.0], 1.0)), BoxRelation::Disjoint);
    }

    #[test]
    fn relation_degenerate() {
        let b = BoundingBox::unit(2);
        assert_eq!(
            b.relation_to(&hs(&[0.0, 0.0], -0.5)),
            BoxRelation::Contained
        );
        assert_eq!(b.relation_to(&hs(&[0.0, 0.0], 0.5)), BoxRelation::Disjoint);
    }

    #[test]
    fn quadrants_partition_volume() {
        let b = BoundingBox::new(vec![0.0, 0.0, 0.0], vec![1.0, 2.0, 4.0]);
        let kids = b.quadrants();
        assert_eq!(kids.len(), 8);
        let total: f64 = kids.iter().map(|k| k.volume()).sum();
        assert!((total - b.volume()).abs() < 1e-9);
        for k in &kids {
            assert!(b.contains_box(k));
        }
    }

    #[test]
    fn union_and_intersects() {
        let a = BoundingBox::new(vec![0.0, 0.0], vec![0.5, 0.5]);
        let b = BoundingBox::new(vec![0.4, 0.4], vec![1.0, 1.0]);
        let c = BoundingBox::new(vec![0.6, 0.6], vec![1.0, 1.0]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let u = a.union(&b);
        assert_eq!(u, BoundingBox::unit(2));
        assert!(u.contains_box(&a) && u.contains_box(&b));
    }
}
