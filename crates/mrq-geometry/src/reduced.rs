//! The record → half-space mapping into the *reduced query space*.
//!
//! Section 5 of the paper: with the normalisation `Σ q_i = 1` the d-th weight
//! is determined by the others (`q_d = 1 − Σ_{i<d} q_i`), so the query space
//! can be reduced to the (d−1)-dimensional space of `(q_1, …, q_{d−1})`.
//! For an incomparable record `r`, the score comparison `S(r) > S(p)` is
//! equivalent to
//!
//! ```text
//! Σ_{i<d} (r_i − r_d − p_i + p_d) · q_i  >  p_d − r_d
//! ```
//!
//! i.e. membership of the reduced query vector in an open half-space.  The
//! permissible region of the reduced space is the open simplex
//! `{ q : q_i > 0, Σ_{i<d} q_i < 1 }`.

use crate::boxes::BoundingBox;
use crate::halfspace::HalfSpace;
use crate::vector::score;
use crate::EPS;

/// Builds the half-space of the reduced query space in which record `r`
/// scores strictly higher than the focal record `p`.
///
/// Both `r` and `p` are full-dimensional (`d ≥ 2`) records; the returned
/// half-space lives in `d − 1` dimensions.
///
/// # Panics
/// Panics if `r` and `p` have different lengths or fewer than two dimensions.
pub fn halfspace_for_record(r: &[f64], p: &[f64]) -> HalfSpace {
    assert_eq!(
        r.len(),
        p.len(),
        "record and focal record dimensions differ"
    );
    let d = r.len();
    assert!(d >= 2, "MaxRank requires at least two dimensions");
    let rd = r[d - 1];
    let pd = p[d - 1];
    let coeffs: Vec<f64> = (0..d - 1).map(|i| r[i] - rd - p[i] + pd).collect();
    HalfSpace::new(coeffs, pd - rd)
}

/// The axis-parallel bounding box of the reduced query space: `[0, 1]^{d−1}`.
///
/// The true permissible region is the open simplex inside this box; see
/// [`reduced_simplex_constraint`].
pub fn reduced_space_box(d: usize) -> BoundingBox {
    assert!(d >= 2);
    BoundingBox::unit(d - 1)
}

/// The additional constraint `Σ_{i<d} q_i < 1` of the reduced query space,
/// expressed as the open half-space `−Σ q_i > −1` so it can be handled
/// uniformly with the record-induced half-spaces.
pub fn reduced_simplex_constraint(d: usize) -> HalfSpace {
    assert!(d >= 2);
    HalfSpace::new(vec![-1.0; d - 1], -1.0)
}

/// The half-line of the one-dimensional reduced query space (`d = 2`) on
/// which a record outranks the focal record.
///
/// With `d = 2` the half-space of [`halfspace_for_record`] collapses to
/// `c · q_1 > b`; depending on the sign of `c` and on where the breakpoint
/// `t = b / c` falls relative to the open domain `(0, 1)`, the record wins on
/// a right half-line, a left half-line, everywhere, or nowhere.  FCA and the
/// 2-d event sweep of AA both consume this classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HalfLine2d {
    /// The record outranks the focal record for every permissible `q_1`
    /// (numerically indistinguishable from a dominator).
    AlwaysAbove,
    /// The record never outranks the focal record inside `(0, 1)`.
    NeverAbove,
    /// The record wins exactly for `q_1 > t`, with `t` strictly inside
    /// `(0, 1)`.
    WinsRight(f64),
    /// The record wins exactly for `q_1 < t`, with `t` strictly inside
    /// `(0, 1)`.
    WinsLeft(f64),
}

/// Classifies a two-dimensional record against a two-dimensional focal point.
///
/// # Panics
/// Panics if `r` or `p` is not two-dimensional.
pub fn halfline_for_record(r: &[f64], p: &[f64]) -> HalfLine2d {
    assert_eq!(r.len(), 2, "half-lines exist only for d = 2");
    assert_eq!(p.len(), 2, "half-lines exist only for d = 2");
    // S(r) > S(p)  ⇔  (r_1 − r_2 − p_1 + p_2) · q_1 > p_2 − r_2.
    let c = r[0] - r[1] - p[0] + p[1];
    let b = p[1] - r[1];
    if c.abs() < EPS {
        return if b < -EPS {
            HalfLine2d::AlwaysAbove
        } else {
            HalfLine2d::NeverAbove
        };
    }
    let t = b / c;
    if c > 0.0 {
        // Wins for q1 > t.
        if t <= EPS {
            HalfLine2d::AlwaysAbove
        } else if t >= 1.0 - EPS {
            HalfLine2d::NeverAbove
        } else {
            HalfLine2d::WinsRight(t)
        }
    } else if t >= 1.0 - EPS {
        // Wins for q1 < t, and t is beyond the right edge of the domain.
        HalfLine2d::AlwaysAbove
    } else if t <= EPS {
        HalfLine2d::NeverAbove
    } else {
        HalfLine2d::WinsLeft(t)
    }
}

/// Expands a reduced query vector `(q_1, …, q_{d−1})` back to the full
/// d-dimensional permissible query vector by appending `q_d = 1 − Σ q_i`.
pub fn expand_query(reduced: &[f64]) -> Vec<f64> {
    let mut q = reduced.to_vec();
    let last = 1.0 - reduced.iter().sum::<f64>();
    q.push(last);
    q
}

/// Checks the defining property of the mapping: `r` scores above `p` under
/// the expanded query iff the reduced query lies in the record's half-space.
/// Exposed for tests and the oracle implementations.
pub fn mapping_consistent(r: &[f64], p: &[f64], reduced_q: &[f64], tol: f64) -> bool {
    let h = halfspace_for_record(r, p);
    let q = expand_query(reduced_q);
    let diff = score(r, &q) - score(p, &q);
    let slack = h.slack(reduced_q);
    // Same sign (up to tolerance) — in fact the two quantities are equal.
    (diff - slack).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn paper_example_d2() {
        // Figure 1(a) / Section 6.3: p = (.5,.5).  For r2 = (.2,.7) the
        // half-line is q1 < 0.4, for r3 = (.9,.4) it is q1 > 0.2.
        let p = [0.5, 0.5];
        let h2 = halfspace_for_record(&[0.2, 0.7], &p);
        // (r1 - r2 - p1 + p2) q1 > p2 - r2  =>  -0.5 q1 > -0.2  =>  q1 < 0.4.
        assert!(h2.contains(&[0.3]));
        assert!(!h2.contains(&[0.5]));
        let h3 = halfspace_for_record(&[0.9, 0.4], &p);
        assert!(h3.contains(&[0.3]));
        assert!(!h3.contains(&[0.1]));
    }

    #[test]
    fn mapping_equals_score_difference() {
        // The slack of the reduced half-space equals S(r) − S(p) exactly.
        let mut rng = StdRng::seed_from_u64(7);
        for d in 2..=6 {
            for _ in 0..50 {
                let r: Vec<f64> = (0..d).map(|_| rng.gen::<f64>()).collect();
                let p: Vec<f64> = (0..d).map(|_| rng.gen::<f64>()).collect();
                // Random reduced query in the open simplex.
                let mut q: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() + 1e-3).collect();
                let s: f64 = q.iter().sum();
                q.iter_mut().for_each(|v| *v /= s);
                let reduced = &q[..d - 1];
                assert!(mapping_consistent(&r, &p, reduced, 1e-9));
            }
        }
    }

    #[test]
    fn dominator_halfspace_covers_simplex() {
        // A record that dominates p scores above p for every permissible q, so
        // its half-space must contain the whole open simplex.
        let p = [0.3, 0.4, 0.2];
        let r = [0.5, 0.6, 0.4];
        let h = halfspace_for_record(&r, &p);
        for q in [[0.1, 0.1], [0.8, 0.1], [0.1, 0.8], [0.33, 0.33]] {
            assert!(h.contains(&q), "dominator must win at {q:?}");
        }
    }

    #[test]
    fn dominee_halfspace_misses_simplex() {
        let p = [0.3, 0.4, 0.2];
        let r = [0.1, 0.2, 0.05];
        let h = halfspace_for_record(&r, &p);
        for q in [[0.1, 0.1], [0.8, 0.1], [0.1, 0.8], [0.33, 0.33]] {
            assert!(!h.contains(&q), "dominee must lose at {q:?}");
        }
    }

    #[test]
    fn expand_query_sums_to_one() {
        let q = expand_query(&[0.2, 0.3]);
        assert_eq!(q.len(), 3);
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((q[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn simplex_constraint_excludes_outside() {
        let h = reduced_simplex_constraint(3);
        assert!(h.contains(&[0.3, 0.3]));
        assert!(!h.contains(&[0.7, 0.7]));
    }

    #[test]
    fn reduced_box_dimension() {
        assert_eq!(reduced_space_box(4).dim(), 3);
    }

    #[test]
    fn halfline_classification_matches_figure1() {
        // Section 6.3's running example, p = (.5,.5): r2 = (.2,.7) wins for
        // q1 < 0.4, r3 = (.9,.4) wins for q1 > 0.2.
        let p = [0.5, 0.5];
        match halfline_for_record(&[0.2, 0.7], &p) {
            HalfLine2d::WinsLeft(t) => assert!((t - 0.4).abs() < 1e-12),
            other => panic!("expected WinsLeft, got {other:?}"),
        }
        match halfline_for_record(&[0.9, 0.4], &p) {
            HalfLine2d::WinsRight(t) => assert!((t - 0.2).abs() < 1e-12),
            other => panic!("expected WinsRight, got {other:?}"),
        }
        // A dominator / dominee never produces a breakpoint.
        assert_eq!(
            halfline_for_record(&[0.8, 0.9], &p),
            HalfLine2d::AlwaysAbove
        );
        assert_eq!(halfline_for_record(&[0.4, 0.3], &p), HalfLine2d::NeverAbove);
    }

    #[test]
    fn halfline_agrees_with_halfspace_on_random_points() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..300 {
            let r = [rng.gen::<f64>(), rng.gen::<f64>()];
            let p = [rng.gen::<f64>(), rng.gen::<f64>()];
            let h = halfspace_for_record(&r, &p);
            let class = halfline_for_record(&r, &p);
            for q1 in [0.05, 0.25, 0.5, 0.75, 0.95] {
                // Skip queries numerically on the breakpoint.
                if (h.slack(&[q1])).abs() < 1e-6 {
                    continue;
                }
                let wins = h.contains(&[q1]);
                let classified = match class {
                    HalfLine2d::AlwaysAbove => true,
                    HalfLine2d::NeverAbove => false,
                    HalfLine2d::WinsRight(t) => q1 > t,
                    HalfLine2d::WinsLeft(t) => q1 < t,
                };
                assert_eq!(wins, classified, "r {r:?} p {p:?} q1 {q1}");
            }
        }
    }
}
