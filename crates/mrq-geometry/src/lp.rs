//! A small dense two-phase simplex solver.
//!
//! The paper decides whether a cell of the half-space arrangement has
//! non-zero extent by computing the half-space intersection with Qhull.  We
//! only ever need two facts about a cell: *is its interior non-empty* and, if
//! so, *a witness point inside it*.  Both are answered exactly by a linear
//! program that maximises the common slack of all constraints, which is what
//! this module provides.
//!
//! The solver handles the standard form
//!
//! ```text
//! maximise  c · y      subject to  A y ≤ b,   y ≥ 0
//! ```
//!
//! with arbitrary-sign `b` (phase 1 introduces artificial variables), using
//! Bland's rule for anti-cycling.  Problem sizes in MaxRank are tiny (at most
//! a few dozen constraints over at most ten variables), so a dense tableau is
//! both the simplest and the fastest representation.

/// Outcome of [`maximize`].
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal {
        /// The optimal objective value `c · y`.
        objective: f64,
        /// The maximiser `y`.
        point: Vec<f64>,
    },
    /// The constraint system `A y ≤ b, y ≥ 0` has no solution.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

impl LpOutcome {
    /// Convenience accessor: the optimal point, if any.
    pub fn point(&self) -> Option<&[f64]> {
        match self {
            LpOutcome::Optimal { point, .. } => Some(point),
            _ => None,
        }
    }

    /// Convenience accessor: the optimal objective, if any.
    pub fn objective(&self) -> Option<f64> {
        match self {
            LpOutcome::Optimal { objective, .. } => Some(*objective),
            _ => None,
        }
    }
}

/// Status of a [`maximize_with`] solve; the optimal point lives in the
/// [`LpScratch`] it was solved with (no per-call allocation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LpStatus {
    /// An optimal solution was found with this objective value.
    Optimal(f64),
    /// The constraint system has no solution.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

/// Reusable simplex workspace: tableau, basis and solution buffers survive
/// across solves, so a caller issuing thousands of tiny feasibility LPs (the
/// within-leaf cell enumeration) performs zero allocations per call after the
/// first.
#[derive(Debug, Default, Clone)]
pub struct LpScratch {
    data: Vec<f64>,
    basis: Vec<usize>,
    point: Vec<f64>,
}

impl LpScratch {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The maximiser of the most recent [`maximize_with`] call that returned
    /// [`LpStatus::Optimal`].  Contents are unspecified after a non-optimal
    /// solve.
    pub fn point(&self) -> &[f64] {
        &self.point
    }
}

const PIVOT_TOL: f64 = 1e-10;
const FEAS_TOL: f64 = 1e-7;
/// Hard cap on simplex pivots; problems in this workspace are tiny, so hitting
/// the cap indicates numerical trouble and is reported as infeasible (safe for
/// MaxRank: a cell is then conservatively treated as empty).
const MAX_ITERS: usize = 10_000;

/// Dense simplex tableau over borrowed scratch buffers.
///
/// Layout: `rows = m` constraint rows plus one objective row; `cols = n`
/// structural variables, `m` slack variables, optional artificials, plus the
/// right-hand side as the last column.
struct Tableau<'a> {
    rows: usize,
    cols: usize,
    data: &'a mut [f64],
    /// Basic variable (column index) of each constraint row.
    basis: &'a mut [usize],
}

impl Tableau<'_> {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    #[inline]
    fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    fn pivot(&mut self, pr: usize, pc: usize) {
        let cols = self.cols;
        let pivot = self.at(pr, pc);
        debug_assert!(pivot.abs() > PIVOT_TOL);
        for c in 0..cols {
            *self.at_mut(pr, c) /= pivot;
        }
        for r in 0..self.rows {
            if r == pr {
                continue;
            }
            let factor = self.at(r, pc);
            if factor.abs() <= PIVOT_TOL {
                continue;
            }
            for c in 0..cols {
                let v = self.at(pr, c);
                *self.at_mut(r, c) -= factor * v;
            }
        }
        self.basis[pr] = pc;
    }

    /// Runs the simplex loop on the current objective row (last row), which is
    /// expressed in terms of reduced costs: the entering column is any column
    /// with a positive reduced cost.  Returns `false` if unbounded.
    fn optimize(&mut self, usable_cols: usize) -> bool {
        let m = self.rows - 1;
        let obj_row = self.rows - 1;
        let rhs_col = self.cols - 1;
        for _ in 0..MAX_ITERS {
            // Bland's rule: smallest-index column with positive reduced cost.
            let mut entering = None;
            for c in 0..usable_cols {
                if self.at(obj_row, c) > PIVOT_TOL {
                    entering = Some(c);
                    break;
                }
            }
            let Some(pc) = entering else {
                return true; // optimal
            };
            // Ratio test with Bland's tie-break on the leaving basic variable.
            let mut leaving: Option<(usize, f64)> = None;
            for r in 0..m {
                let a = self.at(r, pc);
                if a > PIVOT_TOL {
                    let ratio = self.at(r, rhs_col) / a;
                    match leaving {
                        None => leaving = Some((r, ratio)),
                        Some((lr, lratio)) => {
                            if ratio < lratio - PIVOT_TOL
                                || (ratio < lratio + PIVOT_TOL && self.basis[r] < self.basis[lr])
                            {
                                leaving = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((pr, _)) = leaving else {
                return false; // unbounded
            };
            self.pivot(pr, pc);
        }
        // Pivot cap reached: treat as "could not certify feasibility".
        false
    }
}

/// Maximises `c · y` subject to `A y ≤ b`, `y ≥ 0`.
///
/// * `c` has length `n`, each row of `a` has length `n`, and `b` has length
///   `m = a.len()`.
/// * `b` entries may be negative; feasibility is established with a phase-1
///   problem.
///
/// # Panics
/// Panics if the dimensions of `c`, `a` and `b` are inconsistent.
pub fn maximize(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> LpOutcome {
    let n = c.len();
    for row in a {
        assert_eq!(row.len(), n, "every row must have the objective's length");
    }
    let a_flat: Vec<f64> = a.iter().flat_map(|row| row.iter().copied()).collect();
    let mut scratch = LpScratch::new();
    match maximize_with(&mut scratch, c, &a_flat, b) {
        LpStatus::Optimal(objective) => LpOutcome::Optimal {
            objective,
            point: scratch.point.clone(),
        },
        LpStatus::Infeasible => LpOutcome::Infeasible,
        LpStatus::Unbounded => LpOutcome::Unbounded,
    }
}

/// [`maximize`] over a flat row-major constraint matrix (`m` rows of `n = c
/// .len()` entries each) and a reusable [`LpScratch`], the allocation-free
/// entry point the within-leaf cell enumeration drives.  On
/// [`LpStatus::Optimal`] the maximiser is available as [`LpScratch::point`].
///
/// # Panics
/// Panics if `a_flat.len() != c.len() * b.len()`.
pub fn maximize_with(scratch: &mut LpScratch, c: &[f64], a_flat: &[f64], b: &[f64]) -> LpStatus {
    let n = c.len();
    let m = b.len();
    assert_eq!(
        a_flat.len(),
        n * m,
        "flat constraint matrix must be m rows of n entries"
    );

    // Count rows that need an artificial variable (negative rhs after adding
    // the slack).
    let n_art = b.iter().filter(|&&bi| bi < 0.0).count();
    // Columns: n structural + m slack + n_art artificial + 1 rhs.
    let cols = n + m + n_art + 1;
    let rows = m + 1;
    scratch.data.clear();
    scratch.data.resize(rows * cols, 0.0);
    scratch.basis.clear();
    scratch.basis.resize(m, 0);
    let mut t = Tableau {
        rows,
        cols,
        data: &mut scratch.data,
        basis: &mut scratch.basis,
    };

    // Fill constraint rows.  Row i:  a_i · y + s_i = b_i.  If b_i < 0 the row
    // is negated and an artificial variable is added so the rhs is ≥ 0.
    let mut art_idx = 0;
    for i in 0..m {
        let negate = b[i] < 0.0;
        let sign = if negate { -1.0 } else { 1.0 };
        for (j, &aij) in a_flat[i * n..(i + 1) * n].iter().enumerate() {
            *t.at_mut(i, j) = sign * aij;
        }
        *t.at_mut(i, n + i) = sign; // slack
        *t.at_mut(i, cols - 1) = sign * b[i];
        if negate {
            let col = n + m + art_idx;
            *t.at_mut(i, col) = 1.0;
            t.basis[i] = col;
            art_idx += 1;
        } else {
            t.basis[i] = n + i;
        }
    }

    // Phase 1: maximise -Σ artificials (reduced costs must be expressed w.r.t.
    // the starting basis, so add every artificial row into the objective row).
    if n_art > 0 {
        let obj_row = rows - 1;
        // objective: -sum of artificial columns  => row = sum of the rows whose
        // basis is artificial (since each such row has +1 in its artificial
        // column), with structural/slack entries accumulated.
        for i in 0..m {
            if t.basis[i] >= n + m {
                for cidx in 0..cols {
                    let v = t.at(i, cidx);
                    *t.at_mut(obj_row, cidx) += v;
                }
            }
        }
        // Zero out the artificial columns' own reduced costs (they are basic).
        for k in 0..n_art {
            *t.at_mut(obj_row, n + m + k) = 0.0;
        }
        let ok = t.optimize(n + m + n_art);
        let obj = t.at(rows - 1, cols - 1);
        if !ok || obj > FEAS_TOL {
            return LpStatus::Infeasible;
        }
        // Drive any remaining artificial variables out of the basis.
        for r in 0..m {
            if t.basis[r] >= n + m {
                let mut pivoted = false;
                for cidx in 0..n + m {
                    if t.at(r, cidx).abs() > PIVOT_TOL {
                        t.pivot(r, cidx);
                        pivoted = true;
                        break;
                    }
                }
                if !pivoted {
                    // Redundant row: leave the artificial basic at value ~0.
                }
            }
        }
        // Clear the objective row before phase 2.
        let obj_row = rows - 1;
        for cidx in 0..cols {
            *t.at_mut(obj_row, cidx) = 0.0;
        }
    }

    // Phase 2 objective row: reduced costs of `maximise c·y`.
    {
        let obj_row = rows - 1;
        for (j, &cj) in c.iter().enumerate() {
            *t.at_mut(obj_row, j) = cj;
        }
        // Express in terms of the current basis: subtract c_B * row for every
        // basic structural variable.
        for r in 0..m {
            let bv = t.basis[r];
            if bv < n && c[bv] != 0.0 {
                let coeff = c[bv];
                for cidx in 0..cols {
                    let v = t.at(r, cidx);
                    *t.at_mut(obj_row, cidx) -= coeff * v;
                }
            }
        }
    }

    // Forbid artificial columns from re-entering.
    let usable = n + m;
    if !t.optimize(usable) {
        return LpStatus::Unbounded;
    }

    // Extract the solution into the scratch's point buffer (a disjoint field,
    // so it can be written while the tableau still borrows data/basis).
    scratch.point.clear();
    scratch.point.resize(n, 0.0);
    for r in 0..m {
        let bv = t.basis[r];
        if bv < n {
            scratch.point[bv] = t.at(r, cols - 1);
        }
    }
    // The tableau's objective cell holds -(c·y) + constant bookkeeping; compute
    // the objective directly from the point for clarity and robustness.
    let objective = c.iter().zip(&scratch.point).map(|(ci, yi)| ci * yi).sum();
    LpStatus::Optimal(objective)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn simple_2d_lp() {
        // max x + y  s.t. x <= 2, y <= 3, x + y <= 4 => 4.
        let out = maximize(
            &[1.0, 1.0],
            &[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]],
            &[2.0, 3.0, 4.0],
        );
        assert_close(out.objective().unwrap(), 4.0);
    }

    #[test]
    fn lp_with_negative_rhs_feasible() {
        // max y  s.t. -x <= -1 (x >= 1), x <= 3, y <= 2, x + y <= 4.
        let out = maximize(
            &[0.0, 1.0],
            &[
                vec![-1.0, 0.0],
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 1.0],
            ],
            &[-1.0, 3.0, 2.0, 4.0],
        );
        assert_close(out.objective().unwrap(), 2.0);
        let p = out.point().unwrap();
        assert!(p[0] >= 1.0 - 1e-7 && p[0] <= 3.0 + 1e-7);
    }

    #[test]
    fn infeasible_lp() {
        // x >= 2 and x <= 1 cannot both hold.
        let out = maximize(&[1.0], &[vec![-1.0], vec![1.0]], &[-2.0, 1.0]);
        assert_eq!(out, LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_lp() {
        // max x with only x >= 0 (no upper bound).
        let out = maximize(&[1.0], &[], &[]);
        assert_eq!(out, LpOutcome::Unbounded);
    }

    #[test]
    fn unbounded_with_constraints() {
        // max x + y  s.t. x - y <= 1: still unbounded along y.
        let out = maximize(&[1.0, 1.0], &[vec![1.0, -1.0]], &[1.0]);
        assert_eq!(out, LpOutcome::Unbounded);
    }

    #[test]
    fn degenerate_equality_like() {
        // x <= 1 and x >= 1 force x = 1; max x = 1.
        let out = maximize(&[1.0], &[vec![1.0], vec![-1.0]], &[1.0, -1.0]);
        assert_close(out.objective().unwrap(), 1.0);
    }

    #[test]
    fn objective_zero_vector() {
        // Pure feasibility query.
        let out = maximize(
            &[0.0, 0.0],
            &[vec![1.0, 1.0], vec![-1.0, -1.0]],
            &[1.0, -0.25],
        );
        match out {
            LpOutcome::Optimal { objective, point } => {
                assert_close(objective, 0.0);
                let s = point[0] + point[1];
                assert!((0.25 - 1e-7..=1.0 + 1e-7).contains(&s));
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn redundant_constraints_ok() {
        // Duplicate rows should not confuse phase 1 / phase 2.
        let rows = vec![vec![1.0, 0.0]; 6];
        let out = maximize(&[1.0, 0.0], &rows, &[2.0; 6]);
        assert_close(out.objective().unwrap(), 2.0);
    }

    #[test]
    fn klee_minty_small() {
        // 3-dimensional Klee–Minty cube; the optimum is 5^3 = 125 at
        // (0, 0, 125).  Exercises many pivots with Bland's rule.
        let c = vec![4.0, 2.0, 1.0];
        let a = vec![
            vec![1.0, 0.0, 0.0],
            vec![4.0, 1.0, 0.0],
            vec![8.0, 4.0, 1.0],
        ];
        let b = vec![5.0, 25.0, 125.0];
        let out = maximize(&c, &a, &b);
        assert_close(out.objective().unwrap(), 125.0);
    }

    #[test]
    fn feasibility_with_slack_objective() {
        // The exact shape used by the cell-emptiness test: maximise eps with
        // constraints  -x + eps <= -0.2  (x >= 0.2 + eps)
        //               x + eps <= 0.8   (x <= 0.8 - eps)
        // => eps_max = 0.3 at x = 0.5.
        let out = maximize(
            &[0.0, 1.0],
            &[vec![-1.0, 1.0], vec![1.0, 1.0]],
            &[-0.2, 0.8],
        );
        assert_close(out.objective().unwrap(), 0.3);
        assert_close(out.point().unwrap()[0], 0.5);
    }

    #[test]
    fn scratch_reuse_across_solves() {
        // One scratch, three solves of different shapes: results must match
        // the allocating entry point, and the point buffer must be refreshed
        // between calls.
        let mut scratch = LpScratch::new();
        let s1 = maximize_with(
            &mut scratch,
            &[1.0, 1.0],
            &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0],
            &[2.0, 3.0, 4.0],
        );
        assert_eq!(s1, LpStatus::Optimal(4.0));
        assert_eq!(scratch.point().len(), 2);
        let s2 = maximize_with(&mut scratch, &[1.0], &[-1.0, 1.0], &[-2.0, 1.0]);
        assert_eq!(s2, LpStatus::Infeasible);
        let s3 = maximize_with(&mut scratch, &[1.0], &[1.0], &[7.0]);
        match s3 {
            LpStatus::Optimal(v) => {
                assert_close(v, 7.0);
                assert_close(scratch.point()[0], 7.0);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
        // Unbounded is reported through the same status type.
        assert_eq!(
            maximize_with(&mut scratch, &[1.0], &[], &[]),
            LpStatus::Unbounded
        );
    }

    #[test]
    fn infeasible_thin_cell() {
        // x >= 0.5 + eps and x <= 0.5 - eps with eps >= 0.01 is infeasible;
        // but with eps free the optimum is eps = 0 (degenerate cell).
        let out = maximize(
            &[0.0, 1.0],
            &[vec![-1.0, 1.0], vec![1.0, 1.0]],
            &[-0.5, 0.5],
        );
        assert_close(out.objective().unwrap(), 0.0);
    }
}
