//! Convex result regions of the (reduced) query space.
//!
//! A MaxRank result region — one cell of the half-space arrangement — is a
//! convex polytope.  The paper materialises cells with Qhull's half-space
//! intersection; we keep the H-representation (a set of open half-spaces plus
//! the enclosing leaf box) together with an interior *witness* point produced
//! by the feasibility LP.  That is sufficient for every use the paper makes of
//! the regions: testing whether a query vector attains the optimum rank,
//! describing the preference profiles, and estimating the probability mass of
//! the region under a query-vector distribution.

use crate::boxes::BoundingBox;
use crate::halfspace::HalfSpace;
use crate::lp::{maximize, LpOutcome};
use crate::FEASIBILITY_SLACK;

/// The description of a candidate cell: which half-spaces it lies inside,
/// which it lies outside of, and the box it is restricted to.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Open half-spaces the cell must lie inside (`a · x > b`).
    pub inside: Vec<HalfSpace>,
    /// Open half-spaces the cell must lie strictly outside of
    /// (`a · x < b`, i.e. inside their complements).
    pub outside: Vec<HalfSpace>,
    /// Axis-parallel box restricting the cell (a quad-tree leaf extent).
    pub bounds: BoundingBox,
}

impl CellSpec {
    /// Creates a cell specification.
    pub fn new(inside: Vec<HalfSpace>, outside: Vec<HalfSpace>, bounds: BoundingBox) -> Self {
        Self {
            inside,
            outside,
            bounds,
        }
    }

    /// All constraints in a uniform `a · x > b` form (complements are negated,
    /// box faces included).
    pub fn all_constraints(&self) -> Vec<HalfSpace> {
        let dim = self.bounds.dim();
        let mut out: Vec<HalfSpace> =
            Vec::with_capacity(self.inside.len() + self.outside.len() + 2 * dim);
        out.extend(self.inside.iter().cloned());
        out.extend(self.outside.iter().map(|h| h.complement()));
        for i in 0..dim {
            let mut lo_coeffs = vec![0.0; dim];
            lo_coeffs[i] = 1.0;
            out.push(HalfSpace::new(lo_coeffs, self.bounds.lo[i])); // x_i > lo_i
            let mut hi_coeffs = vec![0.0; dim];
            hi_coeffs[i] = -1.0;
            out.push(HalfSpace::new(hi_coeffs, -self.bounds.hi[i])); // x_i < hi_i
        }
        out
    }

    /// Decides whether the open cell is full-dimensional and, if so, returns
    /// the materialised [`Region`].
    ///
    /// The decision is made by maximising a common slack `ε` over all
    /// (unit-normalised) constraints; the cell is non-empty iff the optimum
    /// exceeds [`FEASIBILITY_SLACK`].
    pub fn solve(&self) -> Option<Region> {
        let dim = self.bounds.dim();
        debug_assert!(
            self.bounds.lo.iter().all(|&l| l >= -1e-12),
            "cells are expected to live in the non-negative orthant"
        );
        let constraints = self.all_constraints();
        // LP variables: x_1 … x_dim, ε.
        let nvars = dim + 1;
        let mut a: Vec<Vec<f64>> = Vec::with_capacity(constraints.len() + 1);
        let mut b: Vec<f64> = Vec::with_capacity(constraints.len() + 1);
        for h in &constraints {
            if h.is_degenerate() {
                if h.degenerate_is_full() {
                    continue; // trivially satisfied
                }
                return None; // trivially empty
            }
            let hn = h.normalized();
            // a · x > b  with slack:  a · x ≥ b + ε   ⇔   −a · x + ε ≤ −b.
            let mut row = Vec::with_capacity(nvars);
            row.extend(hn.coeffs.iter().map(|c| -c));
            row.push(1.0);
            a.push(row);
            b.push(-hn.rhs);
        }
        // Cap ε so the LP is bounded even for cells with huge extent.
        let mut cap = vec![0.0; nvars];
        cap[nvars - 1] = 1.0;
        a.push(cap);
        b.push(0.5);

        let mut c = vec![0.0; nvars];
        c[nvars - 1] = 1.0;
        match maximize(&c, &a, &b) {
            LpOutcome::Optimal { objective, point } if objective > FEASIBILITY_SLACK => {
                let witness = point[..dim].to_vec();
                Some(Region {
                    constraints,
                    bounds: self.bounds.clone(),
                    witness,
                    slack: objective,
                })
            }
            _ => None,
        }
    }
}

/// A materialised, full-dimensional convex region of the reduced query space.
#[derive(Debug, Clone)]
pub struct Region {
    /// All constraints in `a · x > b` form (record half-spaces, complements,
    /// box faces).
    pub constraints: Vec<HalfSpace>,
    /// The leaf box the region is restricted to (used for sampling).
    pub bounds: BoundingBox,
    /// A point strictly inside the region.
    pub witness: Vec<f64>,
    /// The inradius-like slack achieved by the witness (distance to the
    /// closest constraint in unit-normal terms).
    pub slack: f64,
}

impl Region {
    /// Ambient dimensionality (the reduced query space, `d − 1`).
    pub fn dim(&self) -> usize {
        self.bounds.dim()
    }

    /// Whether a reduced query vector lies strictly inside the region.
    pub fn contains(&self, x: &[f64]) -> bool {
        self.constraints.iter().all(|h| h.slack(x) > 0.0)
    }

    /// Monte-Carlo estimate of the region's volume by rejection sampling
    /// within its bounding box.  `samples` is the number of box samples drawn.
    pub fn estimate_volume<R: rand::Rng>(&self, rng: &mut R, samples: usize) -> f64 {
        if samples == 0 {
            return 0.0;
        }
        let dim = self.dim();
        let mut hits = 0usize;
        let mut x = vec![0.0; dim];
        for _ in 0..samples {
            for (i, xi) in x.iter_mut().enumerate() {
                *xi = self.bounds.lo[i] + rng.gen::<f64>() * self.bounds.extent(i);
            }
            if self.contains(&x) {
                hits += 1;
            }
        }
        self.bounds.volume() * hits as f64 / samples as f64
    }

    /// Draws up to `attempts` box samples and returns those inside the region
    /// (useful for picking representative query vectors to show a user).
    pub fn sample_points<R: rand::Rng>(&self, rng: &mut R, attempts: usize) -> Vec<Vec<f64>> {
        let dim = self.dim();
        let mut out = Vec::new();
        let mut x = vec![0.0; dim];
        for _ in 0..attempts {
            for (i, xi) in x.iter_mut().enumerate() {
                *xi = self.bounds.lo[i] + rng.gen::<f64>() * self.bounds.extent(i);
            }
            if self.contains(&x) {
                out.push(x.clone());
            }
        }
        out
    }
}

/// Builds a one-dimensional [`Region`] for the open interval `(lo, hi)` of
/// the reduced query space of `d = 2` — the cell shape produced by FCA and by
/// the 2-d event sweep of AA.
pub fn interval_region(lo: f64, hi: f64) -> Region {
    Region {
        constraints: vec![
            HalfSpace::new(vec![1.0], lo),
            HalfSpace::new(vec![-1.0], -hi),
        ],
        bounds: BoundingBox::new(vec![lo], vec![hi]),
        witness: vec![0.5 * (lo + hi)],
        slack: 0.5 * (hi - lo),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn hs(coeffs: &[f64], rhs: f64) -> HalfSpace {
        HalfSpace::new(coeffs.to_vec(), rhs)
    }

    #[test]
    fn full_box_cell_is_feasible() {
        let spec = CellSpec::new(vec![], vec![], BoundingBox::unit(2));
        let region = spec.solve().expect("unit box must be non-empty");
        assert!(region.contains(&region.witness.clone()));
        assert!(region.slack > 0.1);
    }

    #[test]
    fn halfspace_splits_box() {
        // Inside x + y > 1 within the unit box: non-empty; witness satisfies it.
        let spec = CellSpec::new(vec![hs(&[1.0, 1.0], 1.0)], vec![], BoundingBox::unit(2));
        let r = spec.solve().unwrap();
        assert!(r.witness[0] + r.witness[1] > 1.0);
        // Outside x + y > 1 AND inside x + y > 1 simultaneously: empty.
        let spec2 = CellSpec::new(
            vec![hs(&[1.0, 1.0], 1.0)],
            vec![hs(&[1.0, 1.0], 1.0)],
            BoundingBox::unit(2),
        );
        assert!(spec2.solve().is_none());
    }

    #[test]
    fn thin_cell_is_rejected() {
        // x > 0.5 and x < 0.5 + 1e-9: lower-dimensional / negligible extent.
        let spec = CellSpec::new(
            vec![hs(&[1.0, 0.0], 0.5)],
            vec![hs(&[1.0, 0.0], 0.5 + 1e-9)],
            BoundingBox::unit(2),
        );
        assert!(spec.solve().is_none());
    }

    #[test]
    fn paper_figure3_striped_cell() {
        // d = 3 style example in a 2-d reduced space: the cell inside h2 but
        // outside h1 within the unit box.
        let h1 = hs(&[1.0, 0.2], 0.6);
        let h2 = hs(&[0.2, 1.0], 0.5);
        let spec = CellSpec::new(vec![h2.clone()], vec![h1.clone()], BoundingBox::unit(2));
        let r = spec.solve().unwrap();
        assert!(h2.contains(&r.witness));
        assert!(!h1.contains(&r.witness));
    }

    #[test]
    fn degenerate_constraints_handled() {
        // A degenerate "whole space" constraint is ignored; a degenerate
        // "empty" constraint kills the cell.
        let spec_ok = CellSpec::new(vec![hs(&[0.0, 0.0], -1.0)], vec![], BoundingBox::unit(2));
        assert!(spec_ok.solve().is_some());
        let spec_bad = CellSpec::new(vec![hs(&[0.0, 0.0], 1.0)], vec![], BoundingBox::unit(2));
        assert!(spec_bad.solve().is_none());
    }

    #[test]
    fn volume_estimate_half_box() {
        let spec = CellSpec::new(vec![hs(&[1.0, 0.0], 0.5)], vec![], BoundingBox::unit(2));
        let r = spec.solve().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let v = r.estimate_volume(&mut rng, 20_000);
        assert!((v - 0.5).abs() < 0.02, "estimated {v}");
    }

    #[test]
    fn sampled_points_are_inside() {
        let spec = CellSpec::new(
            vec![hs(&[1.0, 1.0], 0.8)],
            vec![hs(&[1.0, 0.0], 0.9)],
            BoundingBox::unit(2),
        );
        let r = spec.solve().unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let pts = r.sample_points(&mut rng, 200);
        assert!(!pts.is_empty());
        for p in pts {
            assert!(r.contains(&p));
        }
    }

    #[test]
    fn all_constraints_include_box_faces() {
        let spec = CellSpec::new(vec![], vec![], BoundingBox::unit(3));
        assert_eq!(spec.all_constraints().len(), 6);
    }

    #[test]
    fn interval_region_contains_exactly_its_interior() {
        let r = interval_region(0.2, 0.6);
        assert!(r.contains(&[0.4]));
        assert!(!r.contains(&[0.1]));
        assert!(!r.contains(&[0.7]));
        assert_eq!(r.witness, vec![0.4]);
        assert!((r.slack - 0.2).abs() < 1e-12);
        assert_eq!(r.dim(), 1);
    }
}
