//! Dense vector arithmetic over `f64` slices.
//!
//! Records, query vectors and hyperplane normals are all plain `&[f64]`
//! slices throughout the workspace; this module holds the shared arithmetic
//! so that the scoring convention (`S(r) = r · q`) lives in exactly one place.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot product of mismatched lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// The linear top-k score of record `r` under query vector `q`:
/// `S(r) = Σ r_i · q_i`.
#[inline]
pub fn score(r: &[f64], q: &[f64]) -> f64 {
    dot(r, q)
}

/// Component-wise difference `a - b` as a newly allocated vector.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Euclidean norm.
#[inline]
pub fn l2_norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Manhattan norm.
#[inline]
pub fn l1_norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Returns `true` when the two vectors differ by at most `tol` in every
/// coordinate.
#[inline]
pub fn approx_eq(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

/// Normalises a query vector so that its components sum to one, yielding a
/// *permissible* query vector in the sense of the paper (Section 3).
///
/// Returns `None` if the components are not all strictly positive or if the
/// sum is zero.
pub fn normalize_query(q: &[f64]) -> Option<Vec<f64>> {
    if q.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let s: f64 = q.iter().sum();
    if s <= 0.0 {
        return None;
    }
    Some(q.iter().map(|x| x / s).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn score_matches_paper_example() {
        // Figure 1(a): p = (0.5, 0.5), q1 = (0.7, 0.3) => S1(p) = 0.5.
        let p = [0.5, 0.5];
        let q1 = [0.7, 0.3];
        assert!((score(&p, &q1) - 0.5).abs() < 1e-12);
        // r3 = (0.9, 0.4) => S1(r3) = 0.75.
        assert!((score(&[0.9, 0.4], &q1) - 0.75).abs() < 1e-12);
        // r2 = (0.2, 0.7) w.r.t. q2 = (0.1, 0.9) => 0.65.
        assert!((score(&[0.2, 0.7], &[0.1, 0.9]) - 0.65).abs() < 1e-12);
    }

    #[test]
    fn sub_basic() {
        assert_eq!(sub(&[3.0, 4.0], &[1.0, 6.0]), vec![2.0, -2.0]);
    }

    #[test]
    fn norms() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((l1_norm(&[-3.0, 4.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn approx_eq_tolerance() {
        assert!(approx_eq(&[1.0, 2.0], &[1.0 + 1e-12, 2.0 - 1e-12], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.1], 1e-3));
        assert!(!approx_eq(&[1.0], &[1.0, 2.0], 1.0));
    }

    #[test]
    fn normalize_query_rescales() {
        let q = normalize_query(&[2.0, 6.0]).unwrap();
        assert!(approx_eq(&q, &[0.25, 0.75], 1e-12));
    }

    #[test]
    fn normalize_query_rejects_nonpositive() {
        assert!(normalize_query(&[0.0, 1.0]).is_none());
        assert!(normalize_query(&[-1.0, 2.0]).is_none());
    }

    #[test]
    fn normalization_preserves_ranking() {
        // The paper argues ranking depends only on the direction of q.
        let records = [[0.8, 0.9], [0.2, 0.7], [0.9, 0.4]];
        let raw = [2.0, 3.0];
        let norm = normalize_query(&raw).unwrap();
        let mut by_raw: Vec<usize> = (0..records.len()).collect();
        let mut by_norm = by_raw.clone();
        by_raw.sort_by(|&a, &b| {
            score(&records[b], &raw)
                .partial_cmp(&score(&records[a], &raw))
                .unwrap()
        });
        by_norm.sort_by(|&a, &b| {
            score(&records[b], &norm)
                .partial_cmp(&score(&records[a], &norm))
                .unwrap()
        });
        assert_eq!(by_raw, by_norm);
    }
}
