//! Delta triage for standing (continuously maintained) MaxRank results.
//!
//! A subscription keeps the last full [`MaxRankResult`] of a focal record
//! resident.  When the dataset changes, most deltas cannot change that
//! result: in the reduced query space, an inserted or deleted record `r`
//! matters only where its half-space `S(r) > S(p)` overlaps the stored rank
//! regions, and that overlap is decidable with a handful of dot products
//! against the regions' retained bounding boxes — no index traversal, no
//! cell enumeration, no LPs.  This module classifies one delta record
//! against one resident result and, for the uniform-shift case, repairs the
//! result arithmetically.
//!
//! The taxonomy is deliberately conservative: every class short of
//! [`DeltaTriage::ReEnumerate`] carries a soundness argument (below), and
//! anything without one falls through to re-enumeration.  Correctness is
//! therefore never at stake — only how much work is skipped.
//!
//! # Why the cheap verdicts are exact
//!
//! * **Uniform shift** — a record that outranks the focal record for *every*
//!   permissible query vector (a dominator, or a numerically degenerate
//!   always-above record) adds one to the order of every cell of the
//!   arrangement and never appears as an arrangement half-space itself: the
//!   algorithms fold it into the `base` count and exclude it from
//!   `outranking` lists ([`crate::ResultRegion::outranking`]).  Inserting or
//!   deleting one shifts `k*` and every region order by ±1 and changes
//!   nothing else — the cell decomposition, witnesses, H-representations and
//!   outranking sets of a fresh evaluation are bit-for-bit identical.
//! * **Unaffected insert** — if the inserted record's half-space is disjoint
//!   from every result region's bounding box (the quad-tree leaf the cell
//!   was enumerated in), no result cell gains an outranking record, so
//!   orders there are unchanged; everywhere else an insert can only *raise*
//!   orders, so no outside cell can enter the `[k*, k* + τ]` window.  The
//!   half-space also never reaches those leaves in a fresh evaluation, so
//!   the enumerated cells and their constraint lists are unchanged too.
//!   Records shadowed by the insert (its dominees) live inside its
//!   half-space and therefore cannot touch the result regions either.
//! * **Unaffected delete / never-above records** — a record the focal record
//!   dominates (or whose half-space is empty inside the query domain) never
//!   participates in the arrangement at all; adding or removing it is
//!   invisible.
//!
//! The asymmetric case is a *delete* whose half-space crosses the query
//! domain away from the result regions: orders outside the stored window
//! may *drop* into it, which no retained certificate can refute — such
//! deletes re-enumerate.

use crate::result::MaxRankResult;
use mrq_data::{classify, DomRelation};
use mrq_geometry::{halfspace_for_record, BoxRelation};

/// Relationship of one delta record to a resident result, before the
/// insert/delete direction is applied.  Produced by [`classify_delta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaClass {
    /// The record outranks the focal record for every permissible query
    /// vector: it shifts every order and `k*` uniformly by one.
    OutranksEverywhere,
    /// The record never outranks the focal record: it is invisible to the
    /// result whether present or absent.
    NeverOutranks,
    /// The record's half-space is disjoint from every result region's
    /// bounding box but crosses the query domain elsewhere.
    MissesResult,
    /// The record's half-space may overlap a result region.
    CrossesResult,
}

/// Verdict of triaging one delta against a resident result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaTriage {
    /// The resident result is still exact; only its version stamp moves.
    Unaffected,
    /// The resident result stays structurally identical but every region
    /// order and `k*` shift by the carried amount (`+1` insert, `-1`
    /// delete).  Repair with [`shift_result`].
    RankShift(i32),
    /// No cheap certificate applies: re-run the evaluation.
    ReEnumerate,
}

/// Classifies one delta record `row` against the resident `result` for the
/// focal record `focal`, using only dominance tests and box/half-space dot
/// products.
///
/// # Panics
/// Panics if `row` and `focal` have different dimensionality.
pub fn classify_delta(result: &MaxRankResult, focal: &[f64], row: &[f64]) -> DeltaClass {
    assert_eq!(
        row.len(),
        focal.len(),
        "delta record and focal record dimensions differ"
    );
    match classify(row, focal) {
        DomRelation::Dominates => DeltaClass::OutranksEverywhere,
        DomRelation::DominatedBy | DomRelation::Equal => DeltaClass::NeverOutranks,
        DomRelation::Incomparable => {
            let h = halfspace_for_record(row, focal);
            if h.is_degenerate() {
                // Degenerate half-spaces are how the evaluators see records
                // within EPS of a dominator/dominee; mirror their verdicts.
                return if h.degenerate_is_full() {
                    DeltaClass::CrossesResult
                } else {
                    DeltaClass::NeverOutranks
                };
            }
            let disjoint = result
                .regions
                .iter()
                .all(|r| r.region.bounds.relation_to(&h) == BoxRelation::Disjoint);
            if disjoint {
                DeltaClass::MissesResult
            } else {
                DeltaClass::CrossesResult
            }
        }
    }
}

/// Triage for an **inserted** record.
pub fn triage_insert(result: &MaxRankResult, focal: &[f64], row: &[f64]) -> DeltaTriage {
    match classify_delta(result, focal, row) {
        DeltaClass::OutranksEverywhere => DeltaTriage::RankShift(1),
        DeltaClass::NeverOutranks | DeltaClass::MissesResult => DeltaTriage::Unaffected,
        DeltaClass::CrossesResult => DeltaTriage::ReEnumerate,
    }
}

/// Triage for a **deleted** record (pass the record's last coordinates —
/// tombstoned slots keep them readable).
pub fn triage_delete(result: &MaxRankResult, focal: &[f64], row: &[f64]) -> DeltaTriage {
    match classify_delta(result, focal, row) {
        DeltaClass::OutranksEverywhere => DeltaTriage::RankShift(-1),
        DeltaClass::NeverOutranks => DeltaTriage::Unaffected,
        // A delete can promote cells *outside* the stored regions into the
        // result window; missing the stored regions is not enough.
        DeltaClass::MissesResult | DeltaClass::CrossesResult => DeltaTriage::ReEnumerate,
    }
}

/// Applies a uniform rank shift to a resident result: `k*` and every region
/// order move by `shift`, everything else (regions, witnesses, outranking
/// sets, statistics) is carried over unchanged.
///
/// # Panics
/// Panics if the shift would take `k*` or any region order below 1 — a
/// negative shift is only ever produced for a record that outranked the
/// focal record everywhere, which contributes at least one to every order.
pub fn shift_result(result: &MaxRankResult, shift: i32) -> MaxRankResult {
    let apply = |order: usize| -> usize {
        let shifted = order as i64 + shift as i64;
        assert!(shifted >= 1, "rank shift would produce an order below 1");
        shifted as usize
    };
    let mut shifted = result.clone();
    shifted.k_star = apply(shifted.k_star);
    for region in &mut shifted.regions {
        region.order = apply(region.order);
    }
    shifted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{MaxRankConfig, MaxRankQuery};
    use mrq_data::Dataset;
    use mrq_index::RStarTree;

    /// Figure 1(a) of the paper: focal record 5 = (0.5, 0.5), k* = 3.
    fn figure1() -> (Dataset, RStarTree) {
        let rows = vec![
            vec![0.8, 0.9],
            vec![0.2, 0.7],
            vec![0.9, 0.4],
            vec![0.7, 0.2],
            vec![0.4, 0.3],
            vec![0.5, 0.5],
        ];
        let data = Dataset::from_rows(2, &rows);
        let tree = RStarTree::bulk_load(&data);
        (data, tree)
    }

    fn eval(data: &Dataset, tree: &RStarTree, focal: u32) -> MaxRankResult {
        MaxRankQuery::new(data, tree).evaluate(focal, &MaxRankConfig::new())
    }

    #[test]
    fn dominator_insert_shifts() {
        let (data, tree) = figure1();
        let result = eval(&data, &tree, 5);
        let p = data.record(5);
        assert_eq!(
            triage_insert(&result, p, &[0.95, 0.95]),
            DeltaTriage::RankShift(1)
        );
        // Weak dominance with one strict attribute still covers the open
        // simplex.
        assert_eq!(
            triage_insert(&result, p, &[0.5, 0.6]),
            DeltaTriage::RankShift(1)
        );
    }

    #[test]
    fn dominee_insert_is_unaffected() {
        let (data, tree) = figure1();
        let result = eval(&data, &tree, 5);
        let p = data.record(5);
        assert_eq!(
            triage_insert(&result, p, &[0.05, 0.05]),
            DeltaTriage::Unaffected
        );
        // An exact duplicate of the focal record never *strictly* outranks.
        assert_eq!(
            triage_insert(&result, p, &[0.5, 0.5]),
            DeltaTriage::Unaffected
        );
    }

    #[test]
    fn dominator_delete_shifts_down() {
        let (data, tree) = figure1();
        let result = eval(&data, &tree, 5);
        let p = data.record(5);
        // Record 0 = (0.8, 0.9) dominates the focal record.
        assert_eq!(
            triage_delete(&result, p, data.record(0)),
            DeltaTriage::RankShift(-1)
        );
    }

    #[test]
    fn incomparable_delete_reenumerates() {
        let (data, tree) = figure1();
        let result = eval(&data, &tree, 5);
        let p = data.record(5);
        // Record 2 = (0.9, 0.4) is incomparable: deleting it may promote
        // cells outside the stored regions.
        assert_eq!(
            triage_delete(&result, p, data.record(2)),
            DeltaTriage::ReEnumerate
        );
    }

    #[test]
    fn shift_matches_fresh_evaluation() {
        let (mut data, tree) = figure1();
        let before = eval(&data, &tree, 5);
        let shifted = shift_result(&before, 1);

        let mut tree = tree;
        let applied = data
            .apply(&mrq_data::Update::Insert(vec![0.95, 0.95]))
            .unwrap();
        let id = applied.inserted.expect("insert assigns an id");
        tree.insert(id, data.record(id));
        let fresh = eval(&data, &tree, 5);

        assert_eq!(shifted.k_star, fresh.k_star);
        assert_eq!(shifted.regions.len(), fresh.regions.len());
        for (a, b) in shifted.regions.iter().zip(&fresh.regions) {
            assert_eq!(a.order, b.order);
            let mut oa = a.outranking.clone();
            let mut ob = b.outranking.clone();
            oa.sort_unstable();
            ob.sort_unstable();
            assert_eq!(oa, ob);
        }
    }

    #[test]
    #[should_panic(expected = "below 1")]
    fn shift_below_one_panics() {
        let (data, tree) = figure1();
        let result = eval(&data, &tree, 5);
        // k* = 3; shifting down by 3 would produce order 0 somewhere.
        let _ = shift_result(&result, -(result.k_star as i32));
    }
}
