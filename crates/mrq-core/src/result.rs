//! Result and statistics types shared by every MaxRank algorithm.

use mrq_data::RecordId;
use mrq_geometry::{reduced::expand_query, Region};
use std::time::Duration;

/// One region of the MaxRank / iMaxRank result: a convex cell of the reduced
/// query space together with the order the focal record achieves inside it.
#[derive(Debug, Clone)]
pub struct ResultRegion {
    /// The cell (H-representation + witness) in the reduced query space.
    pub region: Region,
    /// The 1-based order (rank) of the focal record for every query vector in
    /// the region.  Equals `k*` for plain MaxRank regions and lies in
    /// `[k*, k* + τ]` for iMaxRank.
    pub order: usize,
    /// Ids of the incomparable records that outrank the focal record inside
    /// this region (the set `R_c` of the paper).  Dominators are not listed
    /// (they outrank the focal record everywhere); records that were never
    /// accessed by AA are not listed either — the paper reports the region
    /// extents and `k*`, not the full outranking sets.
    pub outranking: Vec<RecordId>,
}

impl ResultRegion {
    /// A representative *full-dimensional* permissible query vector inside the
    /// region (the LP witness expanded back to `d` weights summing to one).
    pub fn representative_query(&self) -> Vec<f64> {
        expand_query(&self.region.witness)
    }
}

/// Execution statistics of one MaxRank evaluation, mirroring the measurements
/// of the paper's Section 8 (CPU time and I/O) plus implementation-level
/// counters that the ablation experiments report.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Wall-clock time spent in the algorithm (index building excluded).
    pub cpu_time: Duration,
    /// Simulated page accesses charged to the R\*-tree during the query.
    pub io_reads: u64,
    /// Number of dominators of the focal record (`|D+|`).
    pub dominators: usize,
    /// Number of incomparable records whose half-space was inserted into the
    /// (mixed) arrangement.  For BA this is *all* incomparable records; for AA
    /// it is the (much smaller) number of records surfaced by the skyline.
    pub halfspaces_inserted: usize,
    /// Number of quad-tree leaves processed by the within-leaf module.
    pub leaves_processed: usize,
    /// Number of candidate cells whose non-emptiness was decided (by the
    /// witness cache or by an LP).
    pub cells_tested: usize,
    /// Number of simplex LPs actually solved by the within-leaf module:
    /// candidate feasibility tests plus the four tiny pair-condition LPs per
    /// half-space pair.  The headline cost metric the witness cache drives
    /// down.
    pub lp_calls: usize,
    /// Number of feasibility decisions answered by a cached witness point
    /// instead of an LP: candidate cells proven non-empty by a whole-pattern
    /// match, plus pairwise-condition combinations proven feasible by a
    /// witness realising the two-row sign combination.
    pub witness_hits: usize,
    /// Number of combination-search subtrees cut by a violated pairwise
    /// condition before their bit-strings were ever generated.
    pub subtrees_pruned: usize,
    /// Number of bit-strings dismissed by the pairwise containment conditions
    /// without an LP call (the optimisation of Section 5.2; every bit-string
    /// inside a cut subtree counts once).
    pub bitstrings_pruned: usize,
    /// Number of expansion decisions skipped by the 2-d event sweep because
    /// the swap at the event cannot bring any interval below the current
    /// candidate threshold (an augmented half-line re-examined across
    /// iterations counts once per iteration it is pruned in).
    pub events_pruned: usize,
    /// Number of AA iterations (always 1 for FCA/BA).
    pub iterations: usize,
}

/// The complete answer of a MaxRank / iMaxRank query.
#[derive(Debug, Clone)]
pub struct MaxRankResult {
    /// Dimensionality of the data (the regions live in `d − 1` dimensions).
    pub dims: usize,
    /// The minimum attainable order `k*` of the focal record.
    pub k_star: usize,
    /// The value of `τ` the query was evaluated with (0 = plain MaxRank).
    pub tau: usize,
    /// All regions where the focal record achieves an order in
    /// `[k*, k* + τ]`.
    pub regions: Vec<ResultRegion>,
    /// Execution statistics.
    pub stats: QueryStats,
}

impl MaxRankResult {
    /// Number of result regions (the paper's `|T|`).
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// The regions achieving exactly the optimum `k*` (for iMaxRank results
    /// this filters out the slack regions).
    pub fn optimal_regions(&self) -> impl Iterator<Item = &ResultRegion> {
        let k = self.k_star;
        self.regions.iter().filter(move |r| r.order == k)
    }

    /// Whether a *reduced* query vector is covered by some reported region,
    /// returning the region's order.
    pub fn order_at(&self, reduced_q: &[f64]) -> Option<usize> {
        self.regions
            .iter()
            .filter(|r| r.region.contains(reduced_q))
            .map(|r| r.order)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrq_geometry::{BoundingBox, CellSpec, HalfSpace};

    fn region(order: usize) -> ResultRegion {
        let spec = CellSpec::new(
            vec![HalfSpace::new(vec![1.0], 0.2 + order as f64 * 0.1)],
            vec![],
            BoundingBox::unit(1),
        );
        ResultRegion {
            region: spec.solve().unwrap(),
            order,
            outranking: vec![],
        }
    }

    #[test]
    fn representative_query_is_permissible() {
        let r = region(3);
        let q = r.representative_query();
        assert_eq!(q.len(), 2);
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(q.iter().all(|w| *w > 0.0));
    }

    #[test]
    fn result_accessors() {
        let res = MaxRankResult {
            dims: 2,
            k_star: 3,
            tau: 1,
            regions: vec![region(3), region(4), region(3)],
            stats: QueryStats::default(),
        };
        assert_eq!(res.region_count(), 3);
        assert_eq!(res.optimal_regions().count(), 2);
    }

    #[test]
    fn order_at_picks_smallest_cover() {
        let res = MaxRankResult {
            dims: 2,
            k_star: 2,
            tau: 3,
            regions: vec![region(2), region(4)],
            stats: QueryStats::default(),
        };
        // 0.9 is inside both regions (x > 0.4 and x > 0.6): the smaller order wins.
        assert_eq!(res.order_at(&[0.9]), Some(2));
        // 0.1 is inside neither.
        assert_eq!(res.order_at(&[0.1]), None);
    }
}
