//! Reference implementations used for validation.
//!
//! * [`sampled_min_order`] — evaluates the focal record's order at many
//!   random permissible query vectors; the minimum is an upper bound on `k*`
//!   that converges to `k*` as the sample grows (used as a sanity check).
//! * [`exhaustive`] — enumerates the cells of the *complete* arrangement of
//!   all incomparable half-spaces over the whole permissible simplex, without
//!   any quad-tree partitioning or subsumption.  Exponential in the worst
//!   case, but exact; only suitable for small inputs and used to validate BA
//!   and AA in the test-suite.

use crate::common::{build_result, map_record, trivial_result, HalfSpaceRegistry, MappedHalfSpace};
use crate::result::{MaxRankResult, QueryStats};
use crate::withinleaf::{process_leaf, ArrangementCell};
use mrq_data::{partition_by_focal, Dataset, RecordId};
use mrq_geometry::{reduced_simplex_constraint, BoundingBox, HalfSpace};
use rand::Rng;
use std::time::Instant;

/// Samples `samples` permissible query vectors uniformly (by normalising
/// positive uniforms) and returns the smallest observed order of `p` together
/// with the query vector achieving it.
pub fn sampled_min_order<R: Rng>(
    data: &Dataset,
    p: &[f64],
    samples: usize,
    rng: &mut R,
) -> (usize, Vec<f64>) {
    assert!(samples > 0);
    let d = data.dims();
    let mut best = usize::MAX;
    let mut best_q = vec![1.0 / d as f64; d];
    for _ in 0..samples {
        let mut q: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() + 1e-9).collect();
        let s: f64 = q.iter().sum();
        q.iter_mut().for_each(|x| *x /= s);
        let order = data.order_of(p, &q);
        if order < best {
            best = order;
            best_q = q;
        }
    }
    (best, best_q)
}

/// Exact MaxRank / iMaxRank by exhaustive cell enumeration over the complete
/// arrangement (no index, no pruning beyond Hamming-weight ordering).
///
/// Intended for validation on small datasets; the cost grows combinatorially
/// with the number of incomparable records **and** with `k*` (all bit-strings
/// of Hamming weight up to the answer are enumerated), so callers should use
/// it only for focal records that can rank well.
pub fn exhaustive(
    data: &Dataset,
    p: &[f64],
    focal_id: Option<RecordId>,
    tau: usize,
) -> MaxRankResult {
    let d = data.dims();
    assert_eq!(p.len(), d);
    let start = Instant::now();
    let mut stats = QueryStats {
        iterations: 1,
        ..QueryStats::default()
    };

    let part = partition_by_focal(data, p, focal_id);
    stats.dominators = part.dominators.len();
    let mut registry = HalfSpaceRegistry::default();
    let mut halfspaces: Vec<(u32, HalfSpace)> = Vec::with_capacity(part.incomparable.len());
    let mut always_above = 0usize;
    for &id in &part.incomparable {
        match map_record(data.record(id), p) {
            MappedHalfSpace::Usable(h) => {
                let hid = halfspaces.len() as u32;
                registry.push(hid, id);
                halfspaces.push((hid, h));
            }
            MappedHalfSpace::AlwaysAbove => always_above += 1,
            MappedHalfSpace::NeverAbove => {}
        }
    }
    stats.halfspaces_inserted = halfspaces.len();
    let base = part.dominators.len() + always_above;
    if halfspaces.is_empty() {
        stats.cpu_time = start.elapsed();
        return trivial_result(d, base, tau, stats);
    }

    let simplex = reduced_simplex_constraint(d);
    let bounds = BoundingBox::unit(d - 1);
    stats.leaves_processed = 1;
    // Every fast-path knob off: the oracle must stay on the plain
    // per-candidate LP filter so it remains an *independent* reference for
    // the witness-cache / implication-walker machinery it validates (the
    // oracle's inputs are tiny, so the blind path costs nothing here).
    let cells = process_leaf(
        &bounds,
        &halfspaces,
        &simplex,
        usize::MAX,
        tau,
        &crate::withinleaf::CellEnumOptions {
            pair_pruning: false,
            witness_cache: false,
            threads: 1,
        },
        &mut stats,
    );
    let cells: Vec<ArrangementCell> = cells
        .into_iter()
        .map(|c| ArrangementCell {
            order: c.p_order,
            full: Vec::new(),
            inside_partial: c.inside,
            region: c.region,
        })
        .collect();
    let mut result = build_result(d, base, tau, cells, &registry, stats);
    result.stats.cpu_time = start.elapsed();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ba::{self, AlgoConfig};
    use crate::{aa, fca};
    use mrq_data::{synthetic, Distribution};
    use mrq_index::RStarTree;
    use rand::{rngs::StdRng, SeedableRng};

    /// Focal records whose best attainable rank is small keep the exhaustive
    /// enumeration tractable (its cost is combinatorial in the first
    /// non-empty Hamming weight, i.e. in `k*`).
    fn well_ranked_focals(data: &mrq_data::Dataset, count: usize) -> Vec<u32> {
        let mut by_sum: Vec<(f64, u32)> = data
            .iter()
            .map(|(id, r)| (r.iter().sum::<f64>(), id))
            .collect();
        by_sum.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        by_sum.into_iter().take(count).map(|(_, id)| id).collect()
    }

    #[test]
    fn exhaustive_matches_fca_in_2d() {
        let mut rng = StdRng::seed_from_u64(31);
        let data = synthetic::generate(Distribution::Independent, 40, 2, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        for focal in well_ranked_focals(&data, 4) {
            let ex = exhaustive(&data, data.record(focal), Some(focal), 0);
            let fc = fca::run(&data, &tree, focal, 0);
            assert_eq!(ex.k_star, fc.k_star, "focal {focal}");
        }
    }

    #[test]
    fn exhaustive_matches_ba_and_aa_in_3d() {
        let mut rng = StdRng::seed_from_u64(37);
        let data = synthetic::generate(Distribution::AntiCorrelated, 35, 3, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        for focal in well_ranked_focals(&data, 3) {
            let p = data.record(focal).to_vec();
            let ex = exhaustive(&data, &p, Some(focal), 0);
            let b = ba::run(&data, &tree, focal, 0, &AlgoConfig::default());
            let a = aa::run(&data, &tree, focal, 0, &AlgoConfig::default());
            assert_eq!(ex.k_star, b.k_star, "focal {focal}");
            assert_eq!(ex.k_star, a.k_star, "focal {focal}");
        }
    }

    #[test]
    fn sampling_never_beats_exact() {
        let mut rng = StdRng::seed_from_u64(41);
        let data = synthetic::generate(Distribution::Independent, 50, 4, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let focal = 7u32;
        let exact = ba::run(&data, &tree, focal, 0, &AlgoConfig::default());
        let (sampled, q) = sampled_min_order(&data, data.record(focal), 30_000, &mut rng);
        assert!(sampled >= exact.k_star);
        assert_eq!(data.order_of(data.record(focal), &q), sampled);
        // With this many samples on 4-d data the bound is usually tight.
        assert!(
            sampled <= exact.k_star + 1,
            "sampled {sampled} vs exact {}",
            exact.k_star
        );
    }

    #[test]
    fn exhaustive_imaxrank_region_orders_verified() {
        let mut rng = StdRng::seed_from_u64(43);
        let data = synthetic::generate(Distribution::Independent, 30, 3, &mut rng);
        let focal = well_ranked_focals(&data, 1)[0];
        let p = data.record(focal).to_vec();
        let res = exhaustive(&data, &p, Some(focal), 2);
        assert!(!res.regions.is_empty());
        for region in &res.regions {
            let q = region.representative_query();
            assert_eq!(data.order_of(&p, &q), region.order);
            assert!(region.order <= res.k_star + 2);
        }
    }
}
