//! A convenient façade over the three MaxRank algorithms.

use crate::ba::AlgoConfig;
use crate::result::MaxRankResult;
use crate::{aa, aa2d, ba, fca};
use mrq_data::{Dataset, RecordId};
use mrq_index::RStarTree;
use mrq_quadtree::QuadTreeConfig;

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// The paper's recommendation: the specialised AA for `d = 2`, the
    /// general AA otherwise.
    #[default]
    Auto,
    /// First-cut algorithm (Section 4), `d = 2` only.
    Fca,
    /// Basic approach (Section 5).
    BasicApproach,
    /// Advanced approach (Section 6).
    AdvancedApproach,
    /// Advanced approach specialised for `d = 2` (Section 6.3).
    AdvancedApproach2D,
}

impl Algorithm {
    /// The short name used by the CLI and the service protocol.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Auto => "auto",
            Algorithm::Fca => "fca",
            Algorithm::BasicApproach => "ba",
            Algorithm::AdvancedApproach => "aa",
            Algorithm::AdvancedApproach2D => "aa2d",
        }
    }

    /// Parses a short algorithm name (`auto`, `fca`, `ba`, `aa`, `aa2d`).
    pub fn from_name(name: &str) -> Option<Algorithm> {
        match name {
            "auto" => Some(Algorithm::Auto),
            "fca" => Some(Algorithm::Fca),
            "ba" => Some(Algorithm::BasicApproach),
            "aa" => Some(Algorithm::AdvancedApproach),
            "aa2d" => Some(Algorithm::AdvancedApproach2D),
            _ => None,
        }
    }

    /// Resolves `Auto` to the concrete algorithm the engine would pick for
    /// dimensionality `d` (the paper's recommendation: the specialised AA for
    /// `d = 2`, the general AA otherwise).
    pub fn resolve(&self, dims: usize) -> Algorithm {
        match (self, dims) {
            (Algorithm::Auto, 2) => Algorithm::AdvancedApproach2D,
            (Algorithm::Auto, _) => Algorithm::AdvancedApproach,
            (other, _) => *other,
        }
    }

    /// Whether the algorithm only supports two-dimensional data.
    pub fn requires_2d(&self) -> bool {
        matches!(self, Algorithm::Fca | Algorithm::AdvancedApproach2D)
    }
}

/// Configuration of one MaxRank evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxRankConfig {
    /// iMaxRank slack `τ` (0 = plain MaxRank).
    pub tau: usize,
    /// Algorithm selection.
    pub algorithm: Algorithm,
    /// Whether the within-leaf pairwise pruning conditions are used.
    pub pair_pruning: bool,
    /// Whether the within-leaf witness cache is used (BA / AA only; the
    /// answer is identical either way).
    pub witness_cache: bool,
    /// Optional quad-tree tuning (BA / AA only).
    pub quadtree: Option<QuadTreeConfig>,
    /// Threads for the within-leaf cell enumeration (BA / AA only; 0 and 1
    /// both mean sequential).  The answer is identical for any value.
    pub threads: usize,
}

impl MaxRankConfig {
    /// Plain MaxRank with the default (Auto) algorithm.
    pub fn new() -> Self {
        Self {
            tau: 0,
            algorithm: Algorithm::Auto,
            pair_pruning: true,
            witness_cache: true,
            quadtree: None,
            threads: 1,
        }
    }

    /// iMaxRank with slack `tau`.
    pub fn with_tau(tau: usize) -> Self {
        Self { tau, ..Self::new() }
    }

    /// Selects an explicit algorithm.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Shards the cell enumeration over `threads` worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn algo_config(&self) -> AlgoConfig {
        AlgoConfig {
            quadtree: self.quadtree,
            pair_pruning: self.pair_pruning,
            witness_cache: self.witness_cache,
            threads: self.threads.max(1),
        }
    }
}

/// A MaxRank query engine bound to a dataset and its R\*-tree index.
pub struct MaxRankQuery<'a> {
    data: &'a Dataset,
    tree: &'a RStarTree,
}

impl<'a> MaxRankQuery<'a> {
    /// Binds the engine to a dataset and its index.
    ///
    /// # Panics
    /// Panics if the index dimensionality differs from the dataset's.
    pub fn new(data: &'a Dataset, tree: &'a RStarTree) -> Self {
        assert_eq!(
            data.dims(),
            tree.dims(),
            "index and dataset dimensionality differ"
        );
        Self { data, tree }
    }

    /// The underlying dataset.
    pub fn data(&self) -> &Dataset {
        self.data
    }

    /// The underlying index.
    pub fn tree(&self) -> &RStarTree {
        self.tree
    }

    /// Evaluates MaxRank / iMaxRank for a focal record of the dataset.
    pub fn evaluate(&self, focal_id: RecordId, config: &MaxRankConfig) -> MaxRankResult {
        let p = self.data.record(focal_id).to_vec();
        self.dispatch(&p, Some(focal_id), config)
    }

    /// Evaluates MaxRank / iMaxRank for an arbitrary focal point (a "what-if"
    /// record that does not belong to the dataset).
    pub fn evaluate_point(&self, p: &[f64], config: &MaxRankConfig) -> MaxRankResult {
        self.dispatch(p, None, config)
    }

    fn dispatch(
        &self,
        p: &[f64],
        focal_id: Option<RecordId>,
        config: &MaxRankConfig,
    ) -> MaxRankResult {
        let d = self.data.dims();
        let algo = config.algorithm.resolve(d);
        let ac = config.algo_config();
        match algo {
            Algorithm::Fca => fca::run_point(self.data, self.tree, p, focal_id, config.tau),
            Algorithm::BasicApproach => {
                ba::run_point(self.data, self.tree, p, focal_id, config.tau, &ac)
            }
            Algorithm::AdvancedApproach => {
                aa::run_point(self.data, self.tree, p, focal_id, config.tau, &ac)
            }
            Algorithm::AdvancedApproach2D => {
                aa2d::run_point(self.data, self.tree, p, focal_id, config.tau, &ac)
            }
            Algorithm::Auto => unreachable!("Auto resolved above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrq_data::{synthetic, Distribution};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn auto_selects_specialised_2d() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = synthetic::generate(Distribution::Independent, 100, 2, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let engine = MaxRankQuery::new(&data, &tree);
        let auto = engine.evaluate(5, &MaxRankConfig::new());
        let explicit = engine.evaluate(
            5,
            &MaxRankConfig::new().with_algorithm(Algorithm::AdvancedApproach2D),
        );
        assert_eq!(auto.k_star, explicit.k_star);
        let fca = engine.evaluate(5, &MaxRankConfig::new().with_algorithm(Algorithm::Fca));
        assert_eq!(auto.k_star, fca.k_star);
    }

    #[test]
    fn all_algorithms_agree_in_3d() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = synthetic::generate(Distribution::Independent, 150, 3, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let engine = MaxRankQuery::new(&data, &tree);
        let aa = engine.evaluate(9, &MaxRankConfig::new());
        let ba = engine.evaluate(
            9,
            &MaxRankConfig::new().with_algorithm(Algorithm::BasicApproach),
        );
        assert_eq!(aa.k_star, ba.k_star);
    }

    #[test]
    fn what_if_point_evaluation() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = synthetic::generate(Distribution::Independent, 200, 3, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let engine = MaxRankQuery::new(&data, &tree);
        // A hypothetical product not yet in the catalogue.
        let res = engine.evaluate_point(&[0.7, 0.2, 0.6], &MaxRankConfig::with_tau(1));
        assert!(res.k_star >= 1);
        for region in &res.regions {
            let q = region.representative_query();
            assert_eq!(data.order_of(&[0.7, 0.2, 0.6], &q), region.order);
        }
    }

    #[test]
    fn config_builders() {
        let c = MaxRankConfig::with_tau(3).with_algorithm(Algorithm::BasicApproach);
        assert_eq!(c.tau, 3);
        assert_eq!(c.algorithm, Algorithm::BasicApproach);
        assert!(c.pair_pruning);
    }
}
