//! Batch MaxRank evaluation and the "most promotable options" analysis.
//!
//! The paper's introduction motivates running MaxRank for *many* focal
//! records (one per candidate configuration in a what-if study, or one per
//! catalogue item when profiling a whole portfolio).  Individual MaxRank
//! evaluations are read-only and independent, so they parallelise trivially;
//! this module fans the work out over scoped threads (`std::thread::scope`)
//! and offers a
//! convenience ranking of the evaluated records by their best attainable
//! rank.

use crate::query::{MaxRankConfig, MaxRankQuery};
use crate::result::MaxRankResult;
use mrq_data::{Dataset, RecordId};
use mrq_index::RStarTree;

/// Runs `worker(shard)` on `threads` scoped threads and returns the per-shard
/// outputs in shard order.  `threads = 1` runs inline with no thread spawned.
///
/// This is the workspace's shared "scoped-thread splitter": `evaluate_batch`
/// fans focal records out with it, and the within-leaf cell enumeration
/// shards its candidate-leaf frontier across it (workers typically pull work
/// items from a shared atomic cursor rather than a static partition, so
/// uneven leaves balance out).
pub fn scatter<R, F>(threads: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(threads >= 1, "at least one shard is required");
    if threads == 1 {
        return vec![worker(0)];
    }
    std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (0..threads)
            .map(|shard| scope.spawn(move || worker(shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    })
}

/// Evaluates MaxRank for every given focal record, in parallel over at most
/// `threads` worker threads (`threads = 1` falls back to a sequential loop).
///
/// Results are returned in the same order as `focal_ids`.
pub fn evaluate_batch(
    data: &Dataset,
    tree: &RStarTree,
    focal_ids: &[RecordId],
    config: &MaxRankConfig,
    threads: usize,
) -> Vec<MaxRankResult> {
    assert!(threads >= 1, "at least one worker thread is required");
    if focal_ids.is_empty() {
        return Vec::new();
    }
    if threads == 1 || focal_ids.len() == 1 {
        let engine = MaxRankQuery::new(data, tree);
        return focal_ids
            .iter()
            .map(|&id| engine.evaluate(id, config))
            .collect();
    }

    // The tree is `Sync` (atomic I/O counter) and could be shared directly,
    // but the page-access counter is per-tree: concurrent queries on one tree
    // interleave their reads and garble the per-query `io_reads` statistic.
    // Each worker therefore clones the (in-memory) index once; the clone cost
    // is negligible next to the MaxRank evaluations themselves.  Each clone's
    // read delta is folded back into the shared tree's counter afterwards, so
    // tree-level aggregate accounting (e.g. the serving layer's stats) stays
    // truthful despite the cloning.
    let workers = threads.min(focal_ids.len());
    let chunk = focal_ids.len().div_ceil(workers);
    let chunks: Vec<&[RecordId]> = focal_ids.chunks(chunk).collect();
    let shard_results = scatter(chunks.len(), |shard| {
        let tree_clone = tree.clone();
        let io_base = tree_clone.io().reads();
        let engine = MaxRankQuery::new(data, &tree_clone);
        let results: Vec<MaxRankResult> = chunks[shard]
            .iter()
            .map(|&id| engine.evaluate(id, config))
            .collect();
        (results, tree_clone.io().reads().saturating_sub(io_base))
    });
    let mut results = Vec::with_capacity(focal_ids.len());
    for (shard, io_delta) in shard_results {
        tree.io().add(io_delta);
        results.extend(shard);
    }
    results
}

/// Ranks the given records by their best attainable rank (ascending `k*`),
/// returning `(record, k*, |T|)` triples for the `m` most promotable ones.
/// Ties are broken by the number of regions (more regions = more distinct
/// customer profiles reachable) and then by id for determinism.
pub fn most_promotable(
    data: &Dataset,
    tree: &RStarTree,
    focal_ids: &[RecordId],
    m: usize,
    config: &MaxRankConfig,
    threads: usize,
) -> Vec<(RecordId, usize, usize)> {
    let results = evaluate_batch(data, tree, focal_ids, config, threads);
    let mut scored: Vec<(RecordId, usize, usize)> = focal_ids
        .iter()
        .zip(&results)
        .map(|(&id, res)| (id, res.k_star, res.region_count()))
        .collect();
    scored.sort_by(|a, b| a.1.cmp(&b.1).then(b.2.cmp(&a.2)).then(a.0.cmp(&b.0)));
    scored.truncate(m);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Algorithm;
    use mrq_data::{synthetic, Distribution};
    use rand::{rngs::StdRng, SeedableRng};

    fn workload() -> (Dataset, RStarTree) {
        let mut rng = StdRng::seed_from_u64(8);
        let data = synthetic::generate(Distribution::Independent, 400, 3, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        (data, tree)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (data, tree) = workload();
        let ids: Vec<u32> = vec![1, 50, 100, 150, 200, 250, 300, 350];
        let config = MaxRankConfig::new();
        let seq = evaluate_batch(&data, &tree, &ids, &config, 1);
        let par = evaluate_batch(&data, &tree, &ids, &config, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.k_star, b.k_star);
            assert_eq!(a.region_count(), b.region_count());
        }
    }

    #[test]
    fn empty_batch() {
        let (data, tree) = workload();
        assert!(evaluate_batch(&data, &tree, &[], &MaxRankConfig::new(), 4).is_empty());
    }

    #[test]
    fn most_promotable_prefers_small_kstar() {
        let (data, tree) = workload();
        let ids: Vec<u32> = (0..40).collect();
        let config = MaxRankConfig::new().with_algorithm(Algorithm::AdvancedApproach);
        let top = most_promotable(&data, &tree, &ids, 5, &config, 4);
        assert_eq!(top.len(), 5);
        // Ascending k*.
        for w in top.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // The best one's k* really is the minimum over the batch.
        let all = evaluate_batch(&data, &tree, &ids, &config, 4);
        let min_k = all.iter().map(|r| r.k_star).min().unwrap();
        assert_eq!(top[0].1, min_k);
    }

    #[test]
    fn batch_with_more_threads_than_items() {
        let (data, tree) = workload();
        let ids = vec![7u32, 9];
        let res = evaluate_batch(&data, &tree, &ids, &MaxRankConfig::new(), 16);
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn scatter_collects_in_shard_order() {
        let outputs = scatter(4, |shard| shard * 10);
        assert_eq!(outputs, vec![0, 10, 20, 30]);
        // The single-shard path runs inline.
        assert_eq!(scatter(1, |shard| shard), vec![0]);
    }

    #[test]
    fn parallel_batch_merges_io_deltas_into_shared_tree() {
        // Workers evaluate on clones; the shared tree's counter must still
        // advance by the per-query deltas, matching a sequential run on a
        // fresh tree.
        let (data, tree) = workload();
        let ids: Vec<u32> = vec![1, 50, 100, 150];
        let config = MaxRankConfig::new();
        let sequential_total: u64 = {
            let (_, fresh_tree) = workload();
            let before = fresh_tree.io().reads();
            let _ = evaluate_batch(&data, &fresh_tree, &ids, &config, 1);
            fresh_tree.io().reads() - before
        };
        let before = tree.io().reads();
        let _ = evaluate_batch(&data, &tree, &ids, &config, 4);
        let parallel_total = tree.io().reads() - before;
        assert_eq!(parallel_total, sequential_total);
    }
}
