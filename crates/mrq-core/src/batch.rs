//! Batch MaxRank evaluation and the "most promotable options" analysis.
//!
//! The paper's introduction motivates running MaxRank for *many* focal
//! records (one per candidate configuration in a what-if study, or one per
//! catalogue item when profiling a whole portfolio).  Individual MaxRank
//! evaluations are read-only and independent, so they parallelise trivially;
//! this module fans the work out over scoped threads (`std::thread::scope`)
//! and offers a
//! convenience ranking of the evaluated records by their best attainable
//! rank.

use crate::query::{MaxRankConfig, MaxRankQuery};
use crate::result::MaxRankResult;
use mrq_data::{Dataset, RecordId};
use mrq_index::RStarTree;

/// Evaluates MaxRank for every given focal record, in parallel over at most
/// `threads` worker threads (`threads = 1` falls back to a sequential loop).
///
/// Results are returned in the same order as `focal_ids`.
pub fn evaluate_batch(
    data: &Dataset,
    tree: &RStarTree,
    focal_ids: &[RecordId],
    config: &MaxRankConfig,
    threads: usize,
) -> Vec<MaxRankResult> {
    assert!(threads >= 1, "at least one worker thread is required");
    if focal_ids.is_empty() {
        return Vec::new();
    }
    if threads == 1 || focal_ids.len() == 1 {
        let engine = MaxRankQuery::new(data, tree);
        return focal_ids
            .iter()
            .map(|&id| engine.evaluate(id, config))
            .collect();
    }

    // The tree is `Sync` (atomic I/O counter) and could be shared directly,
    // but the page-access counter is per-tree: concurrent queries on one tree
    // interleave their reads and garble the per-query `io_reads` statistic.
    // Each worker therefore clones the (in-memory) index once; the clone cost
    // is negligible next to the MaxRank evaluations themselves.
    let workers = threads.min(focal_ids.len());
    let chunk = focal_ids.len().div_ceil(workers);
    let mut results: Vec<Option<MaxRankResult>> = vec![None; focal_ids.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for ids in focal_ids.chunks(chunk) {
            let tree_clone = tree.clone();
            handles.push(scope.spawn(move || {
                let engine = MaxRankQuery::new(data, &tree_clone);
                ids.iter()
                    .map(|&id| engine.evaluate(id, config))
                    .collect::<Vec<_>>()
            }));
        }
        let mut offset = 0usize;
        for handle in handles {
            let worker_results = handle.join().expect("batch worker panicked");
            for (i, res) in worker_results.into_iter().enumerate() {
                results[offset + i] = Some(res);
            }
            offset += chunk.min(focal_ids.len() - offset);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every focal record evaluated"))
        .collect()
}

/// Ranks the given records by their best attainable rank (ascending `k*`),
/// returning `(record, k*, |T|)` triples for the `m` most promotable ones.
/// Ties are broken by the number of regions (more regions = more distinct
/// customer profiles reachable) and then by id for determinism.
pub fn most_promotable(
    data: &Dataset,
    tree: &RStarTree,
    focal_ids: &[RecordId],
    m: usize,
    config: &MaxRankConfig,
    threads: usize,
) -> Vec<(RecordId, usize, usize)> {
    let results = evaluate_batch(data, tree, focal_ids, config, threads);
    let mut scored: Vec<(RecordId, usize, usize)> = focal_ids
        .iter()
        .zip(&results)
        .map(|(&id, res)| (id, res.k_star, res.region_count()))
        .collect();
    scored.sort_by(|a, b| a.1.cmp(&b.1).then(b.2.cmp(&a.2)).then(a.0.cmp(&b.0)));
    scored.truncate(m);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Algorithm;
    use mrq_data::{synthetic, Distribution};
    use rand::{rngs::StdRng, SeedableRng};

    fn workload() -> (Dataset, RStarTree) {
        let mut rng = StdRng::seed_from_u64(8);
        let data = synthetic::generate(Distribution::Independent, 400, 3, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        (data, tree)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (data, tree) = workload();
        let ids: Vec<u32> = vec![1, 50, 100, 150, 200, 250, 300, 350];
        let config = MaxRankConfig::new();
        let seq = evaluate_batch(&data, &tree, &ids, &config, 1);
        let par = evaluate_batch(&data, &tree, &ids, &config, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.k_star, b.k_star);
            assert_eq!(a.region_count(), b.region_count());
        }
    }

    #[test]
    fn empty_batch() {
        let (data, tree) = workload();
        assert!(evaluate_batch(&data, &tree, &[], &MaxRankConfig::new(), 4).is_empty());
    }

    #[test]
    fn most_promotable_prefers_small_kstar() {
        let (data, tree) = workload();
        let ids: Vec<u32> = (0..40).collect();
        let config = MaxRankConfig::new().with_algorithm(Algorithm::AdvancedApproach);
        let top = most_promotable(&data, &tree, &ids, 5, &config, 4);
        assert_eq!(top.len(), 5);
        // Ascending k*.
        for w in top.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // The best one's k* really is the minimum over the batch.
        let all = evaluate_batch(&data, &tree, &ids, &config, 4);
        let min_k = all.iter().map(|r| r.k_star).min().unwrap();
        assert_eq!(top[0].1, min_k);
    }

    #[test]
    fn batch_with_more_threads_than_items() {
        let (data, tree) = workload();
        let ids = vec![7u32, 9];
        let res = evaluate_batch(&data, &tree, &ids, &MaxRankConfig::new(), 16);
        assert_eq!(res.len(), 2);
    }
}
