//! Helpers shared by the BA / AA implementations: record → half-space
//! mapping, result assembly, and the trivial no-incomparable-records case.

use crate::result::{MaxRankResult, QueryStats, ResultRegion};
use crate::withinleaf::ArrangementCell;
use mrq_data::RecordId;
use mrq_geometry::{
    halfspace_for_record, reduced_simplex_constraint, BoundingBox, CellSpec, HalfSpace, Region,
};
use mrq_quadtree::HalfSpaceId;

/// Outcome of mapping a record against the focal record into the reduced
/// query space.
#[derive(Debug, Clone)]
pub(crate) enum MappedHalfSpace {
    /// A proper half-space: the record outranks the focal record exactly when
    /// the query vector lies inside it.
    Usable(HalfSpace),
    /// Degenerate: the record outranks the focal record for *every*
    /// permissible query vector (numerically indistinguishable from a
    /// dominator).
    AlwaysAbove,
    /// Degenerate: the record never outranks the focal record.
    NeverAbove,
}

/// Maps a record to its reduced-query-space half-space, classifying the
/// degenerate cases explicitly.
pub(crate) fn map_record(r: &[f64], p: &[f64]) -> MappedHalfSpace {
    let h = halfspace_for_record(r, p);
    if h.is_degenerate() {
        if h.degenerate_is_full() {
            MappedHalfSpace::AlwaysAbove
        } else {
            MappedHalfSpace::NeverAbove
        }
    } else {
        MappedHalfSpace::Usable(h)
    }
}

/// Keeps the correspondence between quad-tree half-space ids and the records
/// that induced them.
#[derive(Debug, Default, Clone)]
pub(crate) struct HalfSpaceRegistry {
    records: Vec<RecordId>,
}

impl HalfSpaceRegistry {
    pub(crate) fn push(&mut self, id: HalfSpaceId, record: RecordId) {
        debug_assert_eq!(
            id as usize,
            self.records.len(),
            "ids must be assigned in order"
        );
        self.records.push(record);
    }

    pub(crate) fn record(&self, id: HalfSpaceId) -> RecordId {
        self.records[id as usize]
    }

    pub(crate) fn len(&self) -> usize {
        self.records.len()
    }
}

/// The whole permissible region of the reduced query space (used when the
/// focal record has no incomparable records at all: its order is the same for
/// every permissible query vector).
pub(crate) fn whole_simplex_region(dr: usize) -> Region {
    CellSpec::new(
        vec![reduced_simplex_constraint(dr + 1)],
        vec![],
        BoundingBox::unit(dr),
    )
    .solve()
    .expect("the permissible simplex is always full-dimensional")
}

/// Assembles a [`MaxRankResult`] from the cells of the (complete or mixed)
/// arrangement.  `base` is the number of records that outrank the focal
/// record everywhere (dominators plus degenerate always-above records).
pub(crate) fn build_result(
    dims: usize,
    base: usize,
    tau: usize,
    cells: Vec<ArrangementCell>,
    registry: &HalfSpaceRegistry,
    stats: QueryStats,
) -> MaxRankResult {
    let min_order = cells.iter().map(|c| c.order).min().unwrap_or(0);
    let k_star = base + min_order + 1;
    let mut regions: Vec<ResultRegion> = cells
        .into_iter()
        .filter(|c| c.order <= min_order + tau)
        .map(|c| {
            let outranking: Vec<RecordId> =
                c.containing_ids().map(|id| registry.record(id)).collect();
            ResultRegion {
                order: base + c.order + 1,
                region: c.region,
                outranking,
            }
        })
        .collect();
    // Deterministic output: sort regions by order, then by witness.
    regions.sort_by(|a, b| {
        a.order.cmp(&b.order).then_with(|| {
            a.region
                .witness
                .partial_cmp(&b.region.witness)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    });
    MaxRankResult {
        dims,
        k_star,
        tau,
        regions,
        stats,
    }
}

/// Builds the trivial result for a focal record with no incomparable records:
/// a single region covering the entire permissible simplex.
pub(crate) fn trivial_result(
    dims: usize,
    base: usize,
    tau: usize,
    stats: QueryStats,
) -> MaxRankResult {
    let region = whole_simplex_region(dims - 1);
    MaxRankResult {
        dims,
        k_star: base + 1,
        tau,
        regions: vec![ResultRegion {
            region,
            order: base + 1,
            outranking: Vec::new(),
        }],
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_record_cases() {
        let p = [0.5, 0.5, 0.5];
        assert!(matches!(
            map_record(&[0.9, 0.2, 0.5], &p),
            MappedHalfSpace::Usable(_)
        ));
        // A record offset from p by the same amount in every coordinate is
        // degenerate: (0.6,0.6,0.6) always outranks (0.5,0.5,0.5).
        assert!(matches!(
            map_record(&[0.6, 0.6, 0.6], &p),
            MappedHalfSpace::AlwaysAbove
        ));
        assert!(matches!(
            map_record(&[0.4, 0.4, 0.4], &p),
            MappedHalfSpace::NeverAbove
        ));
    }

    #[test]
    fn trivial_result_shape() {
        let res = trivial_result(3, 7, 0, QueryStats::default());
        assert_eq!(res.k_star, 8);
        assert_eq!(res.regions.len(), 1);
        assert_eq!(res.regions[0].order, 8);
        // The region covers the middle of the simplex.
        assert!(res.regions[0].region.contains(&[0.3, 0.3]));
    }

    #[test]
    fn registry_roundtrip() {
        let mut reg = HalfSpaceRegistry::default();
        reg.push(0, 42);
        reg.push(1, 7);
        assert_eq!(reg.record(0), 42);
        assert_eq!(reg.record(1), 7);
        assert_eq!(reg.len(), 2);
    }
}
