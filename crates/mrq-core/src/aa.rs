//! AA — the advanced approach (paper, Section 6).
//!
//! BA's weakness is that it must access *every* incomparable record.  AA
//! avoids this by exploiting dominance among the incomparable records: if `r`
//! dominates `r'`, the half-space of `r'` is contained in the half-space of
//! `r`, so `r'` cannot affect the smallest-order cells unless `r` is already
//! part of them.  AA therefore maintains a **mixed arrangement** of
//!
//! * *singular* half-spaces (records whose dominees have been surfaced), and
//! * *augmented* half-spaces (records that may still implicitly subsume
//!   unseen dominees),
//!
//! and expands augmented half-spaces only when they contain a candidate
//! smallest-order cell.  Which records are subsumed under which is decided
//! *implicitly and dynamically* (Section 6.2) by maintaining the skyline of
//! the not-yet-expanded incomparable records with the incremental BBS of
//! [`mrq_index::bbs`].
//!
//! The iteration below follows Algorithm 1 of the paper, restated as an
//! expansion fix-point so that cells never need to be tracked across
//! iterations:
//!
//! 1. enumerate the cells of the mixed arrangement up to the current bound;
//! 2. cells whose containing half-spaces are all singular are *accurate* —
//!    they lower-bound `o*`;
//! 3. augmented half-spaces containing any still-relevant cell are expanded
//!    (marked singular; their newly surfaced skyline dominees are inserted);
//! 4. stop when nothing is left to expand and the enumeration covered every
//!    order up to `o* + τ`.

use crate::ba::AlgoConfig;
use crate::common::{build_result, map_record, trivial_result, HalfSpaceRegistry, MappedHalfSpace};
use crate::result::{MaxRankResult, QueryStats};
use crate::withinleaf::{ArrangementCell, CellEnumerator};
use mrq_data::{Dataset, RecordId};
use mrq_index::{IncrementalSkyline, RStarTree};
use mrq_quadtree::{HalfSpaceId, HalfSpaceQuadTree, QuadTreeConfig};
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::time::Instant;

/// Runs AA for a focal record identified by id.
pub fn run(
    data: &Dataset,
    tree: &RStarTree,
    focal_id: RecordId,
    tau: usize,
    config: &AlgoConfig,
) -> MaxRankResult {
    let p = data.record(focal_id).to_vec();
    run_point(data, tree, &p, Some(focal_id), tau, config)
}

/// Runs AA for an arbitrary focal point.
pub fn run_point(
    data: &Dataset,
    tree: &RStarTree,
    p: &[f64],
    focal_id: Option<RecordId>,
    tau: usize,
    config: &AlgoConfig,
) -> MaxRankResult {
    let d = data.dims();
    assert_eq!(p.len(), d);
    assert!(d >= 2);
    let start = Instant::now();
    // Delta-based accounting: no reset, so concurrent queries sharing this
    // tree cannot zero each other's counter mid-flight (they may still
    // inflate each other's delta; see IoStats).
    let io_base = tree.io().reads();
    let mut stats = QueryStats::default();

    let dominators = tree.count_dominators(p, focal_id) as usize;
    stats.dominators = dominators;

    let qt_config = config
        .quadtree
        .unwrap_or_else(|| QuadTreeConfig::for_reduced_dims(d - 1));
    let mut state = AaState {
        data,
        p,
        skyline: IncrementalSkyline::new(tree, p, focal_id),
        qt: HalfSpaceQuadTree::with_config(d - 1, qt_config),
        registry: HalfSpaceRegistry::default(),
        singular: HashSet::new(),
        always_above: 0,
    };

    // Seed the mixed arrangement with the skyline of the incomparable records
    // (all half-spaces start out augmented).
    let initial: Vec<RecordId> = state.skyline.skyline().iter().map(|(id, _)| *id).collect();
    state.insert_records(initial);

    let base = dominators + state.always_above;
    if state.qt.halfspace_count() == 0 {
        stats.io_reads = tree.io().reads().saturating_sub(io_base);
        stats.cpu_time = start.elapsed();
        stats.iterations = 1;
        return trivial_result(d, base, tau, stats);
    }

    let mut o_star: Option<usize> = None;
    let mut enumerator = CellEnumerator::new();
    let final_cells: Vec<ArrangementCell>;
    loop {
        stats.iterations += 1;
        let hard_limit = o_star.map(|o| o + tau);
        let (cells, effective_limit) = enumerator.enumerate(
            &state.qt,
            hard_limit,
            tau,
            &config.cell_enum_options(),
            &mut stats,
        );
        if cells.is_empty() {
            // Defensive: with at least one half-space the arrangement always
            // has a full-dimensional cell; numerical degeneracy could in
            // principle filter everything, in which case we fall back to the
            // trivial description.
            final_cells = cells;
            break;
        }
        let min_order = cells.iter().map(|c| c.order).min().expect("non-empty");
        // Accurate cells (all containing half-spaces singular) tighten o*.
        for c in &cells {
            if c.containing_ids().all(|id| state.singular.contains(&id)) {
                o_star = Some(o_star.map_or(c.order, |o| o.min(c.order)));
            }
        }
        let threshold = o_star
            .unwrap_or(usize::MAX)
            .min(min_order)
            .saturating_add(tau);
        let mut expand: BTreeSet<HalfSpaceId> = BTreeSet::new();
        for c in cells.iter().filter(|c| c.order <= threshold) {
            for id in c.containing_ids() {
                if !state.singular.contains(&id) {
                    expand.insert(id);
                }
            }
        }
        if expand.is_empty() {
            match o_star {
                Some(o) if effective_limit >= o + tau => {
                    final_cells = cells;
                    break;
                }
                Some(_) => continue, // re-enumerate with the full bound next round
                None => {
                    final_cells = cells;
                    break;
                }
            }
        }
        for hid in expand {
            state.expand_halfspace(hid);
        }
    }

    let base = dominators + state.always_above;
    stats.io_reads = tree.io().reads().saturating_sub(io_base);
    stats.halfspaces_inserted = state.registry.len();
    if final_cells.is_empty() {
        stats.cpu_time = start.elapsed();
        return trivial_result(d, base, tau, stats);
    }
    let accurate: Vec<ArrangementCell> = final_cells
        .into_iter()
        .filter(|c| c.containing_ids().all(|id| state.singular.contains(&id)))
        .collect();
    let mut result = build_result(d, base, tau, accurate, &state.registry, stats);
    result.stats.cpu_time = start.elapsed();
    result
}

/// Mutable state of one AA evaluation.
struct AaState<'a> {
    data: &'a Dataset,
    p: &'a [f64],
    skyline: IncrementalSkyline<'a>,
    qt: HalfSpaceQuadTree,
    registry: HalfSpaceRegistry,
    /// Half-spaces whose record has been expanded (no longer subsuming).
    singular: HashSet<HalfSpaceId>,
    /// Incomparable records that (numerically) outrank the focal record for
    /// every permissible query vector.
    always_above: usize,
}

impl<'a> AaState<'a> {
    /// Inserts the half-spaces of newly surfaced skyline records, transitively
    /// expanding any record whose half-space degenerates to "always above".
    fn insert_records(&mut self, records: Vec<RecordId>) {
        let mut queue: VecDeque<RecordId> = records.into();
        while let Some(rid) = queue.pop_front() {
            match map_record(self.data.record(rid), self.p) {
                MappedHalfSpace::Usable(h) => {
                    let hid = self.qt.insert(h);
                    self.registry.push(hid, rid);
                }
                MappedHalfSpace::AlwaysAbove => {
                    // Counts like a dominator; its dominees must still surface.
                    self.always_above += 1;
                    let newly = self.skyline.expand(rid);
                    queue.extend(newly.into_iter().map(|(id, _)| id));
                }
                MappedHalfSpace::NeverAbove => {
                    // Never outranks the focal record; its dominees are
                    // contained in an empty half-space and are irrelevant too.
                }
            }
        }
    }

    /// Expands an augmented half-space: marks it singular, removes its record
    /// from the skyline and inserts the half-spaces of the records it was
    /// implicitly subsuming.
    fn expand_halfspace(&mut self, hid: HalfSpaceId) {
        self.singular.insert(hid);
        let rid = self.registry.record(hid);
        let newly = self.skyline.expand(rid);
        self.insert_records(newly.into_iter().map(|(id, _)| id).collect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ba;
    use mrq_data::{synthetic, Distribution};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_dataset(n: usize, d: usize, dist: Distribution, seed: u64) -> (Dataset, RStarTree) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = synthetic::generate(dist, n, d, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        (data, tree)
    }

    #[test]
    fn aa_matches_ba_small_3d() {
        let (data, tree) = random_dataset(120, 3, Distribution::Independent, 100);
        for focal in [0u32, 13, 59, 99] {
            let aa = run(&data, &tree, focal, 0, &AlgoConfig::default());
            let ba = ba::run(&data, &tree, focal, 0, &AlgoConfig::default());
            assert_eq!(aa.k_star, ba.k_star, "focal {focal}");
            for region in &aa.regions {
                let q = region.representative_query();
                assert_eq!(data.order_of(data.record(focal), &q), aa.k_star);
            }
        }
    }

    #[test]
    fn aa_matches_ba_anticorrelated_4d() {
        let (data, tree) = random_dataset(90, 4, Distribution::AntiCorrelated, 200);
        for focal in [5u32, 44] {
            let aa = run(&data, &tree, focal, 0, &AlgoConfig::default());
            let ba = ba::run(&data, &tree, focal, 0, &AlgoConfig::default());
            assert_eq!(aa.k_star, ba.k_star, "focal {focal}");
        }
    }

    #[test]
    fn aa_imaxrank_matches_ba() {
        let (data, tree) = random_dataset(80, 3, Distribution::Correlated, 300);
        for tau in [1usize, 3] {
            let aa = run(&data, &tree, 7, tau, &AlgoConfig::default());
            let ba = ba::run(&data, &tree, 7, tau, &AlgoConfig::default());
            assert_eq!(aa.k_star, ba.k_star, "tau {tau}");
            // Region witnesses must achieve the region order, and orders stay
            // within [k*, k*+tau].
            for region in &aa.regions {
                assert!(region.order >= aa.k_star && region.order <= aa.k_star + tau);
                let q = region.representative_query();
                assert_eq!(data.order_of(data.record(7), &q), region.order);
            }
        }
    }

    #[test]
    fn aa_accesses_fewer_records_than_ba() {
        let (data, tree) = random_dataset(1200, 3, Distribution::Independent, 400);
        let focal = 11u32;
        let aa = run(&data, &tree, focal, 0, &AlgoConfig::default());
        let ba = ba::run(&data, &tree, focal, 0, &AlgoConfig::default());
        assert_eq!(aa.k_star, ba.k_star);
        assert!(
            aa.stats.halfspaces_inserted < ba.stats.halfspaces_inserted / 2,
            "AA inserted {} half-spaces, BA {}",
            aa.stats.halfspaces_inserted,
            ba.stats.halfspaces_inserted
        );
        assert!(
            aa.stats.io_reads < ba.stats.io_reads,
            "AA I/O {} must be below BA I/O {}",
            aa.stats.io_reads,
            ba.stats.io_reads
        );
    }

    #[test]
    fn aa_witnesses_are_optimal_larger_instance() {
        let (data, tree) = random_dataset(2000, 3, Distribution::Independent, 500);
        let focal = 123u32;
        let aa = run(&data, &tree, focal, 0, &AlgoConfig::default());
        let p = data.record(focal);
        // Sampling cannot beat k*.
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5000 {
            let mut q: Vec<f64> = (0..3).map(|_| rng.gen::<f64>() + 1e-6).collect();
            let s: f64 = q.iter().sum();
            q.iter_mut().for_each(|x| *x /= s);
            assert!(data.order_of(p, &q) >= aa.k_star);
        }
        // And the witnesses achieve it.
        for region in &aa.regions {
            let q = region.representative_query();
            assert_eq!(data.order_of(p, &q), aa.k_star);
        }
    }

    #[test]
    fn aa_handles_top_and_bottom_focal_points() {
        let (data, tree) = random_dataset(500, 3, Distribution::Independent, 600);
        let best = run_point(
            &data,
            &tree,
            &[0.999, 0.999, 0.999],
            None,
            0,
            &AlgoConfig::default(),
        );
        assert_eq!(best.k_star, 1);
        let worst = run_point(
            &data,
            &tree,
            &[0.001, 0.001, 0.001],
            None,
            0,
            &AlgoConfig::default(),
        );
        assert!(worst.k_star > 400, "k* = {}", worst.k_star);
    }
}
