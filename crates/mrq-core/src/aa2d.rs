//! AA specialised for two-dimensional data (paper, Section 6.3), implemented
//! as an **incremental event sweep**.
//!
//! With `d = 2` the reduced query space is the one-dimensional interval
//! `(0, 1)` of `q_1` values; half-spaces become half-lines and the mixed
//! arrangement is an ordered list of breakpoint *events*.  Crossing an event
//! from left to right is an adjacent swap in the score order of the focal
//! record and the inducing record, so the focal record's order changes by
//! exactly ±1 per event — the sweep maintains it in O(1) per event instead of
//! re-deriving each interval's full containing set (the previous
//! implementation was quadratic in the number of half-lines and took ~78 s
//! per query on anti-correlated data at n = 20 000).
//!
//! Per iteration the sweep
//!
//! 1. merges newly inserted events into the sorted event list (the list is
//!    sorted once; later batches are merged, never re-sorted from scratch);
//! 2. walks the events once, maintaining two counters — the interval's order
//!    and how many *augmented* (not yet expanded) half-lines contain it — so
//!    accurate intervals (`augmented == 0`) are recognised without any set
//!    materialisation;
//! 3. decides which augmented half-lines to expand with prefix/suffix minima
//!    of the interval orders: a half-line is expanded only if the minimum
//!    order anywhere on its winning range is within the current threshold.
//!    Events whose swap cannot change the rank at the focal below the
//!    threshold are pruned (counted in `QueryStats::events_pruned`) — the
//!    1-d analogue of the dominance/skyband pruning that keeps AA from
//!    surfacing irrelevant records.
//!
//! The skyline-driven implicit subsumption is identical to the general AA:
//! expanding a half-line surfaces exactly the records it was implicitly
//! subsuming, via [`mrq_index::IncrementalSkyline`].

use crate::ba::AlgoConfig;
use crate::common::trivial_result;
use crate::result::{MaxRankResult, QueryStats, ResultRegion};
use mrq_data::{Dataset, RecordId};
use mrq_geometry::{halfline_for_record, interval_region, HalfLine2d, EPS};
use mrq_index::{IncrementalSkyline, RStarTree};
use std::collections::VecDeque;
use std::time::Instant;

/// A half-line of the 1-d reduced query space: the set of `q_1` values where
/// one incomparable record outranks the focal record.
#[derive(Debug, Clone)]
struct HalfLine {
    /// Breakpoint.
    t: f64,
    /// `true` if the record wins for `q_1 > t`, `false` for `q_1 < t`.
    wins_right: bool,
    /// The inducing record.
    record: RecordId,
    /// Whether the half-line has been expanded (is singular).
    singular: bool,
}

impl HalfLine {
    fn contains(&self, q1: f64) -> bool {
        if self.wins_right {
            q1 > self.t
        } else {
            q1 < self.t
        }
    }
}

/// One maximal interval of the 1-d mixed arrangement.
#[derive(Debug, Clone, Copy)]
struct Interval {
    lo: f64,
    hi: f64,
    /// Number of half-lines containing the interval.
    order: usize,
    /// Number of *augmented* half-lines containing the interval; the interval
    /// is accurate iff this is zero.
    augmented: usize,
}

/// The incremental event sweep: half-lines plus their sorted event order.
#[derive(Debug, Default)]
struct Sweep {
    lines: Vec<HalfLine>,
    /// Line indices sorted by breakpoint (ties broken by index, which keeps
    /// merges stable and the walk deterministic).
    sorted: Vec<u32>,
    /// Newly inserted line indices, merged into `sorted` lazily.
    pending: Vec<u32>,
}

impl Sweep {
    fn push(&mut self, line: HalfLine) {
        self.pending.push(self.lines.len() as u32);
        self.lines.push(line);
    }

    fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Merges pending events into the sorted order: O(k log k + m) for `k`
    /// new events over `m` existing ones, instead of re-sorting everything.
    fn merge_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let lines = &self.lines;
        let key = |&i: &u32| (lines[i as usize].t, i);
        self.pending
            .sort_by(|a, b| key(a).partial_cmp(&key(b)).expect("finite breakpoints"));
        let mut merged = Vec::with_capacity(self.sorted.len() + self.pending.len());
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.sorted.len() && b < self.pending.len() {
            if key(&self.sorted[a]) <= key(&self.pending[b]) {
                merged.push(self.sorted[a]);
                a += 1;
            } else {
                merged.push(self.pending[b]);
                b += 1;
            }
        }
        merged.extend_from_slice(&self.sorted[a..]);
        merged.extend_from_slice(&self.pending[b..]);
        self.sorted = merged;
        self.pending.clear();
    }

    /// Walks the sorted events once and returns the maximal intervals plus,
    /// for every event, the index of the first interval to its right
    /// (`intervals.len()` if none).  O(m).
    fn intervals(&self) -> (Vec<Interval>, Vec<u32>) {
        debug_assert!(self.pending.is_empty(), "merge_pending before sweeping");
        let m = self.sorted.len();
        let mut intervals: Vec<Interval> = Vec::with_capacity(m + 1);
        let mut first_right = vec![0u32; m];
        // Just right of q1 = 0 every left-winning half-line contains the
        // sweep point; right-winning ones do not (their t > EPS > 0).
        let mut order = 0usize;
        let mut augmented = 0usize;
        for line in &self.lines {
            if !line.wins_right {
                order += 1;
                if !line.singular {
                    augmented += 1;
                }
            }
        }
        let mut lo = 0.0f64;
        for (e, &idx) in self.sorted.iter().enumerate() {
            let line = &self.lines[idx as usize];
            let hi = line.t;
            if hi - lo >= 10.0 * EPS {
                intervals.push(Interval {
                    lo,
                    hi,
                    order,
                    augmented,
                });
            }
            // Crossing the event: an adjacent swap of the focal record and
            // the inducing record in the score order — ±1 on the counters.
            if line.wins_right {
                order += 1;
                if !line.singular {
                    augmented += 1;
                }
            } else {
                order -= 1;
                if !line.singular {
                    augmented -= 1;
                }
            }
            first_right[e] = intervals.len() as u32;
            lo = hi;
        }
        if 1.0 - lo >= 10.0 * EPS {
            intervals.push(Interval {
                lo,
                hi: 1.0,
                order,
                augmented,
            });
        }
        (intervals, first_right)
    }
}

/// Runs the 2-d AA for a focal record identified by id.
pub fn run(
    data: &Dataset,
    tree: &RStarTree,
    focal_id: RecordId,
    tau: usize,
    config: &AlgoConfig,
) -> MaxRankResult {
    let p = data.record(focal_id).to_vec();
    run_point(data, tree, &p, Some(focal_id), tau, config)
}

/// Runs the 2-d AA for an arbitrary focal point.
pub fn run_point(
    data: &Dataset,
    tree: &RStarTree,
    p: &[f64],
    focal_id: Option<RecordId>,
    tau: usize,
    _config: &AlgoConfig,
) -> MaxRankResult {
    assert_eq!(
        data.dims(),
        2,
        "the specialised AA handles two-dimensional data"
    );
    assert_eq!(p.len(), 2);
    let start = Instant::now();
    // Delta-based accounting: no reset, so concurrent queries sharing this
    // tree cannot zero each other's counter mid-flight (they may still
    // inflate each other's delta; see IoStats).
    let io_base = tree.io().reads();
    let mut stats = QueryStats::default();

    let dominators = tree.count_dominators(p, focal_id) as usize;
    stats.dominators = dominators;

    let mut skyline = IncrementalSkyline::new(tree, p, focal_id);
    let mut sweep = Sweep::default();
    let mut always_above = 0usize;

    // Seed with the initial skyline (all augmented).
    let initial: Vec<RecordId> = skyline.skyline().iter().map(|(id, _)| *id).collect();
    insert_records(
        data,
        p,
        &mut skyline,
        &mut sweep,
        &mut always_above,
        initial,
    );

    if sweep.is_empty() {
        stats.io_reads = tree.io().reads().saturating_sub(io_base);
        stats.cpu_time = start.elapsed();
        stats.iterations = 1;
        return trivial_result(2, dominators + always_above, tau, stats);
    }

    let mut o_star: Option<usize> = None;
    let final_intervals: Vec<Interval>;
    loop {
        stats.iterations += 1;
        sweep.merge_pending();
        let (intervals, first_right) = sweep.intervals();
        stats.cells_tested += intervals.len();
        if intervals.is_empty() {
            final_intervals = intervals;
            break;
        }
        let min_order = intervals
            .iter()
            .map(|iv| iv.order)
            .min()
            .expect("non-empty");
        // Accurate intervals (no augmented half-line contains them) tighten
        // the upper bound o* on the best attainable order.
        for iv in &intervals {
            if iv.augmented == 0 {
                o_star = Some(o_star.map_or(iv.order, |o| o.min(iv.order)));
            }
        }
        let threshold = o_star
            .unwrap_or(usize::MAX)
            .min(min_order)
            .saturating_add(tau);
        // Prefix/suffix minima of the interval orders let every augmented
        // half-line decide in O(1) whether any interval on its winning range
        // is still relevant.
        let mut prefix_min = Vec::with_capacity(intervals.len());
        let mut running = usize::MAX;
        for iv in &intervals {
            running = running.min(iv.order);
            prefix_min.push(running);
        }
        let mut suffix_min = vec![usize::MAX; intervals.len()];
        running = usize::MAX;
        for (i, iv) in intervals.iter().enumerate().rev() {
            running = running.min(iv.order);
            suffix_min[i] = running;
        }
        let mut expand: Vec<u32> = Vec::new();
        for (e, &idx) in sweep.sorted.iter().enumerate() {
            let line = &sweep.lines[idx as usize];
            if line.singular {
                continue;
            }
            let fr = first_right[e] as usize;
            let range_min = if line.wins_right {
                suffix_min.get(fr).copied().unwrap_or(usize::MAX)
            } else if fr > 0 {
                prefix_min[fr - 1]
            } else {
                usize::MAX
            };
            if range_min <= threshold {
                expand.push(idx);
            } else {
                // The swap at this event cannot bring any candidate interval
                // below the threshold: skyband-style pruning, the record's
                // dominees never need to surface on its account.
                stats.events_pruned += 1;
            }
        }
        if expand.is_empty() {
            // Unlike the quad-tree based AA, the sorted event list is always
            // swept exhaustively, so reaching this point means every relevant
            // interval is accurate.
            final_intervals = intervals;
            break;
        }
        for idx in expand {
            let line = &mut sweep.lines[idx as usize];
            line.singular = true;
            let rid = line.record;
            let newly: Vec<RecordId> = skyline.expand(rid).into_iter().map(|(id, _)| id).collect();
            insert_records(data, p, &mut skyline, &mut sweep, &mut always_above, newly);
        }
    }

    let base = dominators + always_above;
    stats.io_reads = tree.io().reads().saturating_sub(io_base);
    stats.halfspaces_inserted = sweep.lines.len();
    if final_intervals.is_empty() {
        stats.cpu_time = start.elapsed();
        return trivial_result(2, base, tau, stats);
    }
    let min_order = final_intervals
        .iter()
        .map(|iv| iv.order)
        .min()
        .expect("non-empty");
    let regions: Vec<ResultRegion> = final_intervals
        .into_iter()
        .filter(|iv| iv.order <= min_order + tau && iv.augmented == 0)
        .map(|iv| {
            let mid = 0.5 * (iv.lo + iv.hi);
            ResultRegion {
                region: interval_region(iv.lo, iv.hi),
                order: base + iv.order + 1,
                outranking: sweep
                    .lines
                    .iter()
                    .filter(|l| l.contains(mid))
                    .map(|l| l.record)
                    .collect(),
            }
        })
        .collect();
    stats.cpu_time = start.elapsed();
    MaxRankResult {
        dims: 2,
        k_star: base + min_order + 1,
        tau,
        regions,
        stats,
    }
}

/// Maps newly surfaced skyline records into half-line events (expanding
/// degenerate always-above records transitively, mirroring the general AA).
fn insert_records(
    data: &Dataset,
    p: &[f64],
    skyline: &mut IncrementalSkyline<'_>,
    sweep: &mut Sweep,
    always_above: &mut usize,
    records: Vec<RecordId>,
) {
    let mut queue: VecDeque<RecordId> = records.into();
    while let Some(rid) = queue.pop_front() {
        match halfline_for_record(data.record(rid), p) {
            HalfLine2d::WinsRight(t) => sweep.push(HalfLine {
                t,
                wins_right: true,
                record: rid,
                singular: false,
            }),
            HalfLine2d::WinsLeft(t) => sweep.push(HalfLine {
                t,
                wins_right: false,
                record: rid,
                singular: false,
            }),
            HalfLine2d::AlwaysAbove => {
                // Counts like a dominator; its dominees must still surface.
                *always_above += 1;
                let newly = skyline.expand(rid);
                queue.extend(newly.into_iter().map(|(id, _)| id));
            }
            HalfLine2d::NeverAbove => {
                // Never outranks the focal record; its dominees are contained
                // in an empty half-line and are irrelevant too.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fca;
    use mrq_data::{synthetic, Distribution};
    use rand::{rngs::StdRng, SeedableRng};

    fn figure1() -> (Dataset, RStarTree) {
        let data = Dataset::from_rows(
            2,
            &[
                vec![0.8, 0.9],
                vec![0.2, 0.7],
                vec![0.9, 0.4],
                vec![0.7, 0.2],
                vec![0.4, 0.3],
                vec![0.5, 0.5],
            ],
        );
        let tree = RStarTree::bulk_load(&data);
        (data, tree)
    }

    #[test]
    fn paper_example_matches_fca() {
        // Section 6.3 walks through exactly this data: AA(d=2) terminates in
        // two iterations with the same answer FCA gives (k* = 3, two
        // intervals) while never accessing r4 unless needed.
        let (data, tree) = figure1();
        let aa = run(&data, &tree, 5, 0, &AlgoConfig::default());
        let fca = fca::run(&data, &tree, 5, 0);
        assert_eq!(aa.k_star, 3);
        assert_eq!(aa.k_star, fca.k_star);
        assert_eq!(aa.region_count(), fca.region_count());
        let mut intervals: Vec<(f64, f64)> = aa
            .regions
            .iter()
            .map(|r| (r.region.bounds.lo[0], r.region.bounds.hi[0]))
            .collect();
        intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert!((intervals[0].1 - 0.2).abs() < 1e-9);
        assert!((intervals[1].0 - 0.4).abs() < 1e-9 && (intervals[1].1 - 0.6).abs() < 1e-9);
    }

    #[test]
    fn merge_pending_keeps_events_sorted() {
        let mut sweep = Sweep::default();
        for (i, t) in [0.7, 0.2, 0.9, 0.4].iter().enumerate() {
            sweep.push(HalfLine {
                t: *t,
                wins_right: i % 2 == 0,
                record: i as u32,
                singular: false,
            });
        }
        sweep.merge_pending();
        // A second batch merges into the existing order without a full sort.
        for (i, t) in [0.5, 0.1].iter().enumerate() {
            sweep.push(HalfLine {
                t: *t,
                wins_right: true,
                record: 10 + i as u32,
                singular: false,
            });
        }
        sweep.merge_pending();
        let ts: Vec<f64> = sweep
            .sorted
            .iter()
            .map(|&i| sweep.lines[i as usize].t)
            .collect();
        assert_eq!(ts, vec![0.1, 0.2, 0.4, 0.5, 0.7, 0.9]);
        assert_eq!(sweep.sorted.len(), sweep.lines.len());
    }

    #[test]
    fn sweep_counters_match_direct_containment() {
        // The O(1)-per-event counters must agree with brute-force containment
        // tests at every interval midpoint.
        let mut sweep = Sweep::default();
        let spec = [
            (0.3, true, false),
            (0.6, false, false),
            (0.2, false, true),
            (0.8, true, true),
            (0.5, true, false),
        ];
        for (i, (t, wins_right, singular)) in spec.iter().enumerate() {
            sweep.push(HalfLine {
                t: *t,
                wins_right: *wins_right,
                record: i as u32,
                singular: *singular,
            });
        }
        sweep.merge_pending();
        let (intervals, first_right) = sweep.intervals();
        assert_eq!(intervals.len(), sweep.lines.len() + 1);
        for iv in &intervals {
            let mid = 0.5 * (iv.lo + iv.hi);
            let order = sweep.lines.iter().filter(|l| l.contains(mid)).count();
            let aug = sweep
                .lines
                .iter()
                .filter(|l| !l.singular && l.contains(mid))
                .count();
            assert_eq!(iv.order, order, "interval {iv:?}");
            assert_eq!(iv.augmented, aug, "interval {iv:?}");
        }
        // Every event's first-right interval starts at its breakpoint.
        for (e, &idx) in sweep.sorted.iter().enumerate() {
            let t = sweep.lines[idx as usize].t;
            let fr = first_right[e] as usize;
            assert!((intervals[fr].lo - t).abs() < 1e-12);
        }
    }

    #[test]
    fn pruning_leaves_answers_intact_and_fires() {
        // On anti-correlated data most events cannot affect the best rank;
        // the prefix/suffix-minima pruning must skip them while the answer
        // stays identical to FCA (checked in tests/differential.rs at scale).
        let mut rng = StdRng::seed_from_u64(42);
        let data = synthetic::generate(Distribution::AntiCorrelated, 1500, 2, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let aa = run(&data, &tree, 7, 0, &AlgoConfig::default());
        let fca = fca::run(&data, &tree, 7, 0);
        assert_eq!(aa.k_star, fca.k_star);
        assert!(
            aa.stats.events_pruned > 0,
            "expected the sweep to prune expansion events"
        );
    }

    #[test]
    fn accesses_fewer_records_than_fca() {
        // Figure 11's point: AA(d=2) processes far fewer records than FCA.
        // AA's advantage is largest for focal records that can rank well (few
        // dominance layers need expanding), so pick a record close to the
        // skyline rather than an arbitrary one.
        let mut rng = StdRng::seed_from_u64(10);
        let data = synthetic::generate(Distribution::Independent, 5000, 2, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let focal = data
            .iter()
            .max_by(|(_, a), (_, b)| {
                let sa = a[0].min(a[1]);
                let sb = b[0].min(b[1]);
                sa.partial_cmp(&sb).unwrap()
            })
            .map(|(id, _)| id)
            .unwrap();
        let aa = run(&data, &tree, focal, 0, &AlgoConfig::default());
        let fca = fca::run(&data, &tree, focal, 0);
        assert_eq!(aa.k_star, fca.k_star);
        assert!(
            aa.stats.halfspaces_inserted < fca.stats.halfspaces_inserted / 5,
            "AA lines {} vs FCA intersections {}",
            aa.stats.halfspaces_inserted,
            fca.stats.halfspaces_inserted
        );
        assert!(aa.stats.io_reads <= fca.stats.io_reads);
    }

    #[test]
    fn trivial_cases() {
        let (data, tree) = figure1();
        let top = run_point(&data, &tree, &[0.99, 0.99], None, 0, &AlgoConfig::default());
        assert_eq!(top.k_star, 1);
        let bottom = run_point(&data, &tree, &[0.01, 0.01], None, 0, &AlgoConfig::default());
        assert_eq!(bottom.k_star, 7);
    }
}
