//! AA specialised for two-dimensional data (paper, Section 6.3).
//!
//! With `d = 2` the reduced query space is the one-dimensional interval
//! `(0, 1)` of `q_1` values; half-spaces become half-lines and the mixed
//! arrangement is kept in a sorted list of `⟨value, direction⟩` pairs rather
//! than a quad-tree.  The skyline-driven implicit subsumption is identical to
//! the general AA.

use crate::ba::AlgoConfig;
use crate::common::{map_record, trivial_result, MappedHalfSpace};
use crate::fca::interval_region;
use crate::result::{MaxRankResult, QueryStats, ResultRegion};
use mrq_data::{Dataset, RecordId};
use mrq_geometry::EPS;
use mrq_index::{IncrementalSkyline, RStarTree};
use std::collections::{BTreeSet, VecDeque};
use std::time::Instant;

/// A half-line of the 1-d reduced query space: the set of `q_1` values where
/// one incomparable record outranks the focal record.
#[derive(Debug, Clone)]
struct HalfLine {
    /// Breakpoint.
    t: f64,
    /// `true` if the record wins for `q_1 > t`, `false` for `q_1 < t`.
    wins_right: bool,
    /// The inducing record.
    record: RecordId,
    /// Whether the half-line has been expanded (is singular).
    singular: bool,
}

impl HalfLine {
    fn contains(&self, q1: f64) -> bool {
        if self.wins_right {
            q1 > self.t
        } else {
            q1 < self.t
        }
    }
}

/// Runs the 2-d AA for a focal record identified by id.
pub fn run(
    data: &Dataset,
    tree: &RStarTree,
    focal_id: RecordId,
    tau: usize,
    config: &AlgoConfig,
) -> MaxRankResult {
    let p = data.record(focal_id).to_vec();
    run_point(data, tree, &p, Some(focal_id), tau, config)
}

/// Runs the 2-d AA for an arbitrary focal point.
pub fn run_point(
    data: &Dataset,
    tree: &RStarTree,
    p: &[f64],
    focal_id: Option<RecordId>,
    tau: usize,
    _config: &AlgoConfig,
) -> MaxRankResult {
    assert_eq!(
        data.dims(),
        2,
        "the specialised AA handles two-dimensional data"
    );
    assert_eq!(p.len(), 2);
    let start = Instant::now();
    // Delta-based accounting: no reset, so concurrent queries sharing this
    // tree cannot zero each other's counter mid-flight (they may still
    // inflate each other's delta; see IoStats).
    let io_base = tree.io().reads();
    let mut stats = QueryStats::default();

    let dominators = tree.count_dominators(p, focal_id) as usize;
    stats.dominators = dominators;

    let mut skyline = IncrementalSkyline::new(tree, p, focal_id);
    let mut lines: Vec<HalfLine> = Vec::new();
    let mut always_above = 0usize;

    // Seed with the initial skyline (all augmented).
    let initial: Vec<RecordId> = skyline.skyline().iter().map(|(id, _)| *id).collect();
    insert_records(
        data,
        p,
        &mut skyline,
        &mut lines,
        &mut always_above,
        initial,
    );

    let base = dominators + always_above;
    if lines.is_empty() {
        stats.io_reads = tree.io().reads().saturating_sub(io_base);
        stats.cpu_time = start.elapsed();
        stats.iterations = 1;
        return trivial_result(2, base, tau, stats);
    }

    let mut o_star: Option<usize> = None;
    let final_intervals: Vec<(f64, f64, usize, Vec<usize>)>;
    loop {
        stats.iterations += 1;
        let intervals = intervals_with_orders(&lines);
        stats.cells_tested += intervals.len();
        if intervals.is_empty() {
            final_intervals = intervals;
            break;
        }
        let min_order = intervals
            .iter()
            .map(|(_, _, o, _)| *o)
            .min()
            .expect("non-empty");
        for (_, _, order, containing) in &intervals {
            if containing.iter().all(|&i| lines[i].singular) {
                o_star = Some(o_star.map_or(*order, |o| o.min(*order)));
            }
        }
        let threshold = o_star
            .unwrap_or(usize::MAX)
            .min(min_order)
            .saturating_add(tau);
        let mut expand: BTreeSet<usize> = BTreeSet::new();
        for (_, _, order, containing) in intervals.iter().filter(|(_, _, o, _)| *o <= threshold) {
            let _ = order;
            for &i in containing {
                if !lines[i].singular {
                    expand.insert(i);
                }
            }
        }
        if expand.is_empty() {
            // Unlike the quad-tree based AA, the sorted list is always
            // enumerated exhaustively, so reaching this point means every
            // relevant interval is accurate.
            final_intervals = intervals;
            break;
        }
        for idx in expand {
            lines[idx].singular = true;
            let rid = lines[idx].record;
            let newly: Vec<RecordId> = skyline.expand(rid).into_iter().map(|(id, _)| id).collect();
            insert_records(data, p, &mut skyline, &mut lines, &mut always_above, newly);
        }
    }

    let base = dominators + always_above;
    stats.io_reads = tree.io().reads().saturating_sub(io_base);
    stats.halfspaces_inserted = lines.len();
    if final_intervals.is_empty() {
        stats.cpu_time = start.elapsed();
        return trivial_result(2, base, tau, stats);
    }
    let min_order = final_intervals
        .iter()
        .map(|(_, _, o, _)| *o)
        .min()
        .expect("non-empty");
    let regions: Vec<ResultRegion> = final_intervals
        .into_iter()
        .filter(|(_, _, order, containing)| {
            *order <= min_order + tau && containing.iter().all(|&i| lines[i].singular)
        })
        .map(|(lo, hi, order, containing)| ResultRegion {
            region: interval_region(lo, hi),
            order: base + order + 1,
            outranking: containing.iter().map(|&i| lines[i].record).collect(),
        })
        .collect();
    stats.cpu_time = start.elapsed();
    MaxRankResult {
        dims: 2,
        k_star: base + min_order + 1,
        tau,
        regions,
        stats,
    }
}

/// Maps newly surfaced skyline records into half-lines (expanding degenerate
/// always-above records transitively, mirroring the general AA).
fn insert_records(
    data: &Dataset,
    p: &[f64],
    skyline: &mut IncrementalSkyline<'_>,
    lines: &mut Vec<HalfLine>,
    always_above: &mut usize,
    records: Vec<RecordId>,
) {
    let mut queue: VecDeque<RecordId> = records.into();
    while let Some(rid) = queue.pop_front() {
        match map_record(data.record(rid), p) {
            MappedHalfSpace::Usable(h) => {
                // c · q1 > b  with c = h.coeffs[0], b = h.rhs.
                let c = h.coeffs[0];
                let b = h.rhs;
                let t = b / c;
                if c > 0.0 {
                    if t <= EPS {
                        *always_above += 1;
                        let newly = skyline.expand(rid);
                        queue.extend(newly.into_iter().map(|(id, _)| id));
                    } else if t >= 1.0 - EPS {
                        // Never wins inside (0, 1): irrelevant, as are its dominees.
                    } else {
                        lines.push(HalfLine {
                            t,
                            wins_right: true,
                            record: rid,
                            singular: false,
                        });
                    }
                } else if t >= 1.0 - EPS {
                    *always_above += 1;
                    let newly = skyline.expand(rid);
                    queue.extend(newly.into_iter().map(|(id, _)| id));
                } else if t <= EPS {
                    // Never wins.
                } else {
                    lines.push(HalfLine {
                        t,
                        wins_right: false,
                        record: rid,
                        singular: false,
                    });
                }
            }
            MappedHalfSpace::AlwaysAbove => {
                *always_above += 1;
                let newly = skyline.expand(rid);
                queue.extend(newly.into_iter().map(|(id, _)| id));
            }
            MappedHalfSpace::NeverAbove => {}
        }
    }
}

/// Computes the cells (maximal intervals) of the 1-d mixed arrangement and,
/// for each, its order and the indices of the half-lines containing it.
fn intervals_with_orders(lines: &[HalfLine]) -> Vec<(f64, f64, usize, Vec<usize>)> {
    let mut boundaries: Vec<f64> = Vec::with_capacity(lines.len() + 2);
    boundaries.push(0.0);
    boundaries.extend(lines.iter().map(|l| l.t));
    boundaries.push(1.0);
    boundaries.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = Vec::with_capacity(boundaries.len());
    for w in boundaries.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if hi - lo < 10.0 * EPS {
            continue;
        }
        let mid = 0.5 * (lo + hi);
        let containing: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.contains(mid))
            .map(|(i, _)| i)
            .collect();
        out.push((lo, hi, containing.len(), containing));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fca;
    use mrq_data::{synthetic, Distribution};
    use rand::{rngs::StdRng, SeedableRng};

    fn figure1() -> (Dataset, RStarTree) {
        let data = Dataset::from_rows(
            2,
            &[
                vec![0.8, 0.9],
                vec![0.2, 0.7],
                vec![0.9, 0.4],
                vec![0.7, 0.2],
                vec![0.4, 0.3],
                vec![0.5, 0.5],
            ],
        );
        let tree = RStarTree::bulk_load(&data);
        (data, tree)
    }

    #[test]
    fn paper_example_matches_fca() {
        // Section 6.3 walks through exactly this data: AA(d=2) terminates in
        // two iterations with the same answer FCA gives (k* = 3, two
        // intervals) while never accessing r4 unless needed.
        let (data, tree) = figure1();
        let aa = run(&data, &tree, 5, 0, &AlgoConfig::default());
        let fca = fca::run(&data, &tree, 5, 0);
        assert_eq!(aa.k_star, 3);
        assert_eq!(aa.k_star, fca.k_star);
        assert_eq!(aa.region_count(), fca.region_count());
        let mut intervals: Vec<(f64, f64)> = aa
            .regions
            .iter()
            .map(|r| (r.region.bounds.lo[0], r.region.bounds.hi[0]))
            .collect();
        intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert!((intervals[0].1 - 0.2).abs() < 1e-9);
        assert!((intervals[1].0 - 0.4).abs() < 1e-9 && (intervals[1].1 - 0.6).abs() < 1e-9);
    }

    #[test]
    fn matches_fca_on_random_data() {
        for (seed, dist) in [
            (1u64, Distribution::Independent),
            (2, Distribution::Correlated),
            (3, Distribution::AntiCorrelated),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let data = synthetic::generate(dist, 400, 2, &mut rng);
            let tree = RStarTree::bulk_load(&data);
            for focal in [0u32, 111, 333] {
                let aa = run(&data, &tree, focal, 0, &AlgoConfig::default());
                let fca = fca::run(&data, &tree, focal, 0);
                assert_eq!(aa.k_star, fca.k_star, "seed {seed} focal {focal}");
                assert_eq!(
                    aa.region_count(),
                    fca.region_count(),
                    "seed {seed} focal {focal}"
                );
            }
        }
    }

    #[test]
    fn imaxrank_matches_fca() {
        let mut rng = StdRng::seed_from_u64(9);
        let data = synthetic::generate(Distribution::Independent, 250, 2, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        for tau in [1usize, 4] {
            let aa = run(&data, &tree, 17, tau, &AlgoConfig::default());
            let fca = fca::run(&data, &tree, 17, tau);
            assert_eq!(aa.k_star, fca.k_star);
            assert_eq!(aa.region_count(), fca.region_count(), "tau {tau}");
            let total_aa: f64 = aa
                .regions
                .iter()
                .map(|r| r.region.bounds.hi[0] - r.region.bounds.lo[0])
                .sum();
            let total_fca: f64 = fca
                .regions
                .iter()
                .map(|r| r.region.bounds.hi[0] - r.region.bounds.lo[0])
                .sum();
            assert!((total_aa - total_fca).abs() < 1e-6);
        }
    }

    #[test]
    fn accesses_fewer_records_than_fca() {
        // Figure 11's point: AA(d=2) processes far fewer records than FCA.
        // AA's advantage is largest for focal records that can rank well (few
        // dominance layers need expanding), so pick a record close to the
        // skyline rather than an arbitrary one.
        let mut rng = StdRng::seed_from_u64(10);
        let data = synthetic::generate(Distribution::Independent, 5000, 2, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let focal = data
            .iter()
            .max_by(|(_, a), (_, b)| {
                let sa = a[0].min(a[1]);
                let sb = b[0].min(b[1]);
                sa.partial_cmp(&sb).unwrap()
            })
            .map(|(id, _)| id)
            .unwrap();
        let aa = run(&data, &tree, focal, 0, &AlgoConfig::default());
        let fca = fca::run(&data, &tree, focal, 0);
        assert_eq!(aa.k_star, fca.k_star);
        assert!(
            aa.stats.halfspaces_inserted < fca.stats.halfspaces_inserted / 5,
            "AA lines {} vs FCA intersections {}",
            aa.stats.halfspaces_inserted,
            fca.stats.halfspaces_inserted
        );
        assert!(aa.stats.io_reads <= fca.stats.io_reads);
    }

    #[test]
    fn trivial_cases() {
        let (data, tree) = figure1();
        let top = run_point(&data, &tree, &[0.99, 0.99], None, 0, &AlgoConfig::default());
        assert_eq!(top.k_star, 1);
        let bottom = run_point(&data, &tree, &[0.01, 0.01], None, 0, &AlgoConfig::default());
        assert_eq!(bottom.k_star, 7);
    }
}
