//! MaxRank query processing — the primary contribution of the paper.
//!
//! Given a dataset `D`, a focal record `p` and (optionally) a slack `τ`, the
//! **MaxRank** query reports the best attainable rank `k*` of `p` under any
//! permissible linear preference vector, together with *all* regions of the
//! (reduced) query space where that rank — or, for **iMaxRank**, any rank up
//! to `k* + τ` — is attained.
//!
//! Three algorithms are provided, mirroring the paper:
//!
//! * [`fca`] — the first-cut algorithm for `d = 2` (Section 4), which sorts
//!   the score-line intersections;
//! * [`ba`] — the basic approach for `d ≥ 2` (Section 5): map every
//!   incomparable record to a half-space of the reduced query space, index
//!   the half-spaces in an augmented quad-tree, prune leaves by their
//!   full-containment cardinality and enumerate cells within the surviving
//!   leaves by Hamming weight;
//! * [`aa`] — the advanced approach (Section 6): maintain a *mixed
//!   arrangement* of singular and augmented half-spaces driven by the
//!   incrementally maintained skyline of the incomparable records, expanding
//!   augmented half-spaces only when they could affect the result.  The
//!   specialised 2-d variant of Section 6.3 ([`aa2d`]) keeps the arrangement
//!   in a sorted list of half-lines instead of a quad-tree.
//!
//! [`oracle`] holds reference implementations (query-vector sampling and
//! exhaustive cell enumeration) used by the tests, and [`query`] a convenient
//! façade that picks the right algorithm.

#![warn(missing_docs)]

pub mod aa;
pub mod aa2d;
pub mod ba;
pub mod batch;
pub(crate) mod common;
pub mod fca;
pub mod maintain;
pub mod oracle;
pub mod query;
pub mod result;
pub mod reverse_topk;
pub mod withinleaf;

pub use batch::{evaluate_batch, most_promotable};
pub use maintain::{classify_delta, shift_result, triage_delete, triage_insert};
pub use maintain::{DeltaClass, DeltaTriage};
pub use query::{Algorithm, MaxRankConfig, MaxRankQuery};
pub use result::{MaxRankResult, QueryStats, ResultRegion};
pub use reverse_topk::{reverse_top_k, reverse_top_k_point, ReverseTopK};
