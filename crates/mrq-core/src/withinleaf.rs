//! Within-leaf processing (paper, Section 5.2) and whole-arrangement cell
//! enumeration.
//!
//! A quad-tree leaf `l` is covered by the half-spaces of its full-containment
//! set `F_l` and crossed by those of its partial-overlap set `P_l`.  Every
//! cell of the arrangement restricted to `l` corresponds to a bit-string over
//! `P_l` (bit `i` = the cell lies inside the `i`-th half-space); the number of
//! set bits is the cell's *p-order*, and the cell's order is `|F_l|` plus the
//! p-order.  Cells are materialised in increasing Hamming weight; each
//! candidate bit-string is checked for non-emptiness with the feasibility LP
//! (the paper uses Qhull half-space intersection for the same purpose).
//!
//! Two optimisations from the paper are implemented:
//!
//! * bit-strings violating a *pairwise containment condition* (Figure 4) are
//!   dismissed without an LP call.  We derive the conditions with four tiny
//!   two-constraint LPs per pair, which also covers pairs whose supporting
//!   hyperplanes cross outside the leaf;
//! * enumeration stops at the first Hamming weight that yields a non-empty
//!   cell (plus `τ` further weights for iMaxRank), and never exceeds the
//!   caller-provided cap derived from the best order found so far.

use crate::batch::scatter;
use crate::result::QueryStats;
use mrq_geometry::{reduced_simplex_constraint, BoundingBox, CellSpec, HalfSpace, Region};
use mrq_quadtree::{HalfSpaceId, HalfSpaceQuadTree, LeafView};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A non-empty cell found inside one leaf.
#[derive(Debug, Clone)]
pub struct FoundCell {
    /// Hamming weight of the bit-string: how many of the leaf's
    /// partial-overlap half-spaces contain the cell.
    pub p_order: usize,
    /// Ids of the partial-overlap half-spaces containing the cell.
    pub inside: Vec<HalfSpaceId>,
    /// The materialised region.
    pub region: Region,
}

/// A cell of the (mixed) arrangement, as produced by [`enumerate_cells`].
#[derive(Debug, Clone)]
pub struct ArrangementCell {
    /// Cell order: `|F_l|` + p-order (the number of arrangement half-spaces
    /// containing the cell).
    pub order: usize,
    /// The leaf's full-containment set `F_l`.
    pub full: Vec<HalfSpaceId>,
    /// The partial-overlap half-spaces containing the cell.
    pub inside_partial: Vec<HalfSpaceId>,
    /// The materialised region.
    pub region: Region,
}

impl ArrangementCell {
    /// All half-spaces containing the cell (`H_c` in the paper).
    pub fn containing_ids(&self) -> impl Iterator<Item = HalfSpaceId> + '_ {
        self.full.iter().chain(&self.inside_partial).copied()
    }
}

/// Per-pair forbidden bit combinations.
#[derive(Debug, Clone, Copy, Default)]
struct PairConditions {
    forbid11: bool,
    forbid00: bool,
    /// Bit of the *first* half-space 1, bit of the second 0 is impossible.
    forbid10: bool,
    forbid01: bool,
}

/// Processes one leaf: enumerates bit-strings over `partial` in increasing
/// Hamming weight and returns the non-empty cells.
///
/// * `max_weight` — never consider bit-strings with more set bits than this
///   (derived from the best order found so far by the caller);
/// * `collect_extra` — after the first weight `w0` with a non-empty cell,
///   keep enumerating up to `w0 + collect_extra` (τ of iMaxRank; 0 for plain
///   MaxRank);
/// * `pair_pruning` — whether to use the pairwise containment conditions.
pub fn process_leaf(
    bounds: &BoundingBox,
    partial: &[(HalfSpaceId, HalfSpace)],
    simplex: &HalfSpace,
    max_weight: usize,
    collect_extra: usize,
    pair_pruning: bool,
    stats: &mut QueryStats,
) -> Vec<FoundCell> {
    let m = partial.len();
    let max_weight = max_weight.min(m);
    let mut found = Vec::new();
    let mut first_nonempty: Option<usize> = None;
    let mut pair_conditions: Option<Vec<Vec<PairConditions>>> = None;

    let mut weight = 0usize;
    while weight <= max_weight {
        if let Some(w0) = first_nonempty {
            if weight > w0 + collect_extra {
                break;
            }
        }
        // Lazily derive the pairwise conditions once weights ≥ 2 are reached,
        // where they start paying for themselves.
        if pair_pruning && weight >= 2 && pair_conditions.is_none() && m >= 2 {
            pair_conditions = Some(compute_pair_conditions(bounds, partial, simplex, stats));
        }
        let mut any_at_this_weight = false;
        for_each_combination(m, weight, |chosen| {
            if let Some(conds) = &pair_conditions {
                if violates_conditions(chosen, m, conds) {
                    stats.bitstrings_pruned += 1;
                    return;
                }
            }
            let mut inside = Vec::with_capacity(chosen.len() + 1);
            let mut outside = Vec::with_capacity(m - chosen.len());
            let mut inside_ids = Vec::with_capacity(chosen.len());
            let mut chosen_iter = chosen.iter().peekable();
            for (i, (id, h)) in partial.iter().enumerate() {
                if chosen_iter.peek() == Some(&&i) {
                    chosen_iter.next();
                    inside.push(h.clone());
                    inside_ids.push(*id);
                } else {
                    outside.push(h.clone());
                }
            }
            inside.push(simplex.clone());
            stats.cells_tested += 1;
            let spec = CellSpec::new(inside, outside, bounds.clone());
            if let Some(region) = spec.solve() {
                any_at_this_weight = true;
                found.push(FoundCell {
                    p_order: chosen.len(),
                    inside: inside_ids,
                    region,
                });
            }
        });
        if any_at_this_weight && first_nonempty.is_none() {
            first_nonempty = Some(weight);
        }
        weight += 1;
    }
    found
}

/// Enumerates the cells of the arrangement held by the quad-tree, visiting
/// leaves in increasing `|F_l|` order and pruning leaves (and Hamming
/// weights) that cannot produce a relevant cell.
///
/// * With `hard_limit = Some(l)` every cell with order ≤ `l` that is within
///   `tau` of its leaf's minimum is returned (cells further from the leaf
///   minimum can never lie within `tau` of the *global* minimum, so they are
///   irrelevant to MaxRank/iMaxRank).
/// * With `hard_limit = None` the bound adapts: the enumeration returns every
///   cell with order ≤ (minimum order found) + `tau`.
/// * `threads > 1` shards the leaf frontier over that many scoped threads;
///   the cells returned are identical for any thread count.
///
/// Returns the cells and the effective bound that was applied.
///
/// This is a convenience wrapper over [`CellEnumerator`] without caching; the
/// iterative AA keeps a [`CellEnumerator`] alive across iterations so that
/// leaves untouched by newly inserted half-spaces are not re-enumerated.
pub fn enumerate_cells(
    qt: &HalfSpaceQuadTree,
    hard_limit: Option<usize>,
    tau: usize,
    pair_pruning: bool,
    threads: usize,
    stats: &mut QueryStats,
) -> (Vec<ArrangementCell>, usize) {
    CellEnumerator::new().enumerate(qt, hard_limit, tau, pair_pruning, threads, stats)
}

#[derive(Debug, Clone)]
struct CachedLeaf {
    /// The Hamming-weight cap the cached enumeration was run with.
    max_weight: usize,
    cells: Vec<FoundCell>,
}

/// Arrangement-cell enumerator with a per-leaf memo.
///
/// The cache key is `(leaf node, |F_l|, |P_l|)`: half-spaces are only ever
/// *added* to the quad-tree, so identical set sizes imply identical sets, and
/// a cached enumeration that was run with a Hamming-weight cap at least as
/// large as the one currently required can be reused after filtering.
#[derive(Debug, Default)]
pub struct CellEnumerator {
    cache: std::collections::HashMap<(usize, usize, usize), CachedLeaf>,
}

impl CellEnumerator {
    /// Creates an enumerator with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// See [`enumerate_cells`].
    pub fn enumerate(
        &mut self,
        qt: &HalfSpaceQuadTree,
        hard_limit: Option<usize>,
        tau: usize,
        pair_pruning: bool,
        threads: usize,
        stats: &mut QueryStats,
    ) -> (Vec<ArrangementCell>, usize) {
        assert!(threads >= 1, "at least one enumeration thread is required");
        let simplex = reduced_simplex_constraint(qt.reduced_dims() + 1);
        let mut leaves = qt.leaves();
        leaves.sort_by_key(|l| l.full.len());
        let mut best = usize::MAX;
        let mut out: Vec<ArrangementCell> = Vec::new();
        // First pass: serve every leaf whose enumeration is already cached
        // with a sufficient Hamming-weight cap, in |F_l| order, so `best` is
        // as tight as the cache allows before any computation starts.
        let mut todo: Vec<&LeafView> = Vec::new();
        for leaf in &leaves {
            let f = leaf.full.len();
            let cap = match hard_limit {
                Some(l) => l,
                None => best.saturating_add(tau),
            };
            if f > cap {
                break; // leaves are sorted by |F_l|; none of the rest can qualify
            }
            let max_weight = (cap - f).min(leaf.partial.len());
            let key = (leaf.node, f, leaf.partial.len());
            match self.cache.get(&key) {
                Some(cached) if cached.max_weight >= max_weight => {
                    stats.leaves_processed += 1;
                    for c in &cached.cells {
                        if c.p_order > max_weight {
                            continue;
                        }
                        let order = f + c.p_order;
                        best = best.min(order);
                        out.push(ArrangementCell {
                            order,
                            full: leaf.full.clone(),
                            inside_partial: c.inside.clone(),
                            region: c.region.clone(),
                        });
                    }
                }
                _ => todo.push(leaf),
            }
        }
        // Second pass: enumerate the remaining leaves.  With `threads > 1`
        // the frontier is sharded over scoped threads pulling from a shared
        // cursor; `best` is a shared atomic that only ever shrinks, so a
        // worker reading a stale value merely enumerates with a looser cap
        // (extra cells are filtered by the final retain), never a tighter
        // one — the result is identical to the sequential pass.
        let shared_best = AtomicUsize::new(best);
        let cursor = AtomicUsize::new(0);
        let shard_outputs = scatter(threads.min(todo.len().max(1)), |_| {
            let mut shard_stats = QueryStats::default();
            let mut computed: Vec<(usize, usize, Vec<FoundCell>)> = Vec::new();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(leaf) = todo.get(i) else { break };
                let f = leaf.full.len();
                let cap = match hard_limit {
                    Some(l) => l,
                    None => shared_best.load(Ordering::Relaxed).saturating_add(tau),
                };
                if f > cap {
                    // `best` only shrinks, so this leaf can never qualify;
                    // later leaves have even larger |F_l| but other shards may
                    // already hold some, so keep draining the cursor.
                    continue;
                }
                let max_weight = (cap - f).min(leaf.partial.len());
                shard_stats.leaves_processed += 1;
                let partial: Vec<(HalfSpaceId, HalfSpace)> = leaf
                    .partial
                    .iter()
                    .map(|&id| (id, qt.halfspace(id).clone()))
                    .collect();
                let cells = process_leaf(
                    &leaf.bounds,
                    &partial,
                    &simplex,
                    max_weight,
                    tau,
                    pair_pruning,
                    &mut shard_stats,
                );
                if let Some(min) = cells.iter().map(|c| f + c.p_order).min() {
                    shared_best.fetch_min(min, Ordering::Relaxed);
                }
                computed.push((i, max_weight, cells));
            }
            (computed, shard_stats)
        });
        best = shared_best.load(Ordering::Relaxed);
        // Merge shard outputs in leaf order so cache contents and the output
        // cell order are independent of scheduling.
        let mut merged: Vec<(usize, usize, Vec<FoundCell>)> = shard_outputs
            .into_iter()
            .flat_map(|(computed, shard_stats)| {
                stats.leaves_processed += shard_stats.leaves_processed;
                stats.cells_tested += shard_stats.cells_tested;
                stats.bitstrings_pruned += shard_stats.bitstrings_pruned;
                computed
            })
            .collect();
        merged.sort_by_key(|(i, _, _)| *i);
        for (i, max_weight, cells) in merged {
            let leaf = todo[i];
            let f = leaf.full.len();
            self.cache.insert(
                (leaf.node, f, leaf.partial.len()),
                CachedLeaf {
                    max_weight,
                    cells: cells.clone(),
                },
            );
            for c in cells {
                let order = f + c.p_order;
                best = best.min(order);
                out.push(ArrangementCell {
                    order,
                    full: leaf.full.clone(),
                    inside_partial: c.inside,
                    region: c.region,
                });
            }
        }
        let effective = match hard_limit {
            Some(l) => l,
            None => best.saturating_add(tau),
        };
        out.retain(|c| c.order <= effective);
        (out, effective)
    }
}

/// Calls `f` with every sorted `k`-subset of `0..n`.
fn for_each_combination<F: FnMut(&[usize])>(n: usize, k: usize, mut f: F) {
    if k > n {
        return;
    }
    if k == 0 {
        f(&[]);
        return;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        f(&idx);
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Derives, for every pair of partial-overlap half-spaces, which bit
/// combinations are infeasible inside the leaf.
fn compute_pair_conditions(
    bounds: &BoundingBox,
    partial: &[(HalfSpaceId, HalfSpace)],
    simplex: &HalfSpace,
    stats: &mut QueryStats,
) -> Vec<Vec<PairConditions>> {
    let m = partial.len();
    let mut conds = vec![vec![PairConditions::default(); m]; m];
    let feasible = |inside: Vec<HalfSpace>, outside: Vec<HalfSpace>, stats: &mut QueryStats| {
        stats.cells_tested += 1;
        let mut inside = inside;
        inside.push(simplex.clone());
        CellSpec::new(inside, outside, bounds.clone())
            .solve()
            .is_some()
    };
    for i in 0..m {
        for j in i + 1..m {
            let hi = &partial[i].1;
            let hj = &partial[j].1;
            let c = PairConditions {
                forbid11: !feasible(vec![hi.clone(), hj.clone()], vec![], stats),
                forbid00: !feasible(vec![], vec![hi.clone(), hj.clone()], stats),
                forbid10: !feasible(vec![hi.clone()], vec![hj.clone()], stats),
                forbid01: !feasible(vec![hj.clone()], vec![hi.clone()], stats),
            };
            conds[i][j] = c;
        }
    }
    conds
}

/// Checks whether the chosen subset (sorted indices of 1-bits) violates any
/// pairwise condition.
fn violates_conditions(chosen: &[usize], m: usize, conds: &[Vec<PairConditions>]) -> bool {
    let mut bits = vec![false; m];
    for &i in chosen {
        bits[i] = true;
    }
    for i in 0..m {
        for j in i + 1..m {
            let c = &conds[i][j];
            match (bits[i], bits[j]) {
                (true, true) if c.forbid11 => return true,
                (false, false) if c.forbid00 => return true,
                (true, false) if c.forbid10 => return true,
                (false, true) if c.forbid01 => return true,
                _ => {}
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hs(coeffs: &[f64], rhs: f64) -> HalfSpace {
        HalfSpace::new(coeffs.to_vec(), rhs)
    }

    fn simplex2() -> HalfSpace {
        reduced_simplex_constraint(3)
    }

    #[test]
    fn combinations_enumerate_all_subsets() {
        let mut seen = Vec::new();
        for_each_combination(5, 2, |c| seen.push(c.to_vec()));
        assert_eq!(seen.len(), 10);
        assert!(seen.contains(&vec![0, 1]) && seen.contains(&vec![3, 4]));
        let mut zero = 0;
        for_each_combination(4, 0, |c| {
            assert!(c.is_empty());
            zero += 1;
        });
        assert_eq!(zero, 1);
        let mut none = 0;
        for_each_combination(2, 3, |_| none += 1);
        assert_eq!(none, 0);
        let mut all = 0;
        for_each_combination(3, 3, |c| {
            assert_eq!(c, &[0, 1, 2]);
            all += 1;
        });
        assert_eq!(all, 1);
    }

    #[test]
    fn figure3_within_leaf_example() {
        // Analogue of paper Figure 3(b), leaf l1: the half-spaces of the
        // partial-overlap set jointly cover the leaf (so the all-zero
        // bit-string is infeasible), the minimum p-order is 1, and it is
        // achieved only by the cell lying inside h2.
        let bounds = BoundingBox::new(vec![0.0, 0.0], vec![0.5, 0.5]);
        let h1 = hs(&[1.0, 1.0], 0.35); // x + y > 0.35
        let h2 = hs(&[-1.0, -1.0], -0.4); // x + y < 0.4
        let h6 = hs(&[1.0, 0.0], 0.05); // x > 0.05
        let h7 = hs(&[0.0, 1.0], 0.05); // y > 0.05
        let partial = vec![(0u32, h1), (1u32, h2.clone()), (2u32, h6), (3u32, h7)];
        let mut stats = QueryStats::default();
        let cells = process_leaf(
            &bounds,
            &partial,
            &simplex2(),
            usize::MAX,
            0,
            true,
            &mut stats,
        );
        assert!(!cells.is_empty());
        let min_order = cells.iter().map(|c| c.p_order).min().unwrap();
        assert_eq!(min_order, 1);
        for c in cells.iter().filter(|c| c.p_order == 1) {
            assert_eq!(
                c.inside,
                vec![1],
                "the p-order-1 cell must be inside h2 only"
            );
            assert!(h2.contains(&c.region.witness));
        }
    }

    #[test]
    fn empty_bitstring_cell_found_when_leaf_uncovered() {
        // A single half-space clipping a corner: the weight-0 cell exists.
        let bounds = BoundingBox::unit(2);
        let partial = vec![(0u32, hs(&[1.0, 1.0], 1.5))];
        let mut stats = QueryStats::default();
        let cells = process_leaf(
            &bounds,
            &partial,
            &simplex2(),
            usize::MAX,
            0,
            true,
            &mut stats,
        );
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].p_order, 0);
        assert!(cells[0].inside.is_empty());
    }

    #[test]
    fn collect_extra_returns_higher_weights() {
        // Two nested half-spaces: weight-0 cell exists; with collect_extra = 2
        // the weight-1 and weight-2 cells are returned too.
        let bounds = BoundingBox::unit(2);
        let partial = vec![(0u32, hs(&[1.0, 1.0], 0.6)), (1u32, hs(&[1.0, 1.0], 1.2))];
        let mut stats = QueryStats::default();
        let plain = process_leaf(
            &bounds,
            &partial,
            &simplex2(),
            usize::MAX,
            0,
            true,
            &mut stats,
        );
        assert!(plain.iter().all(|c| c.p_order == 0));
        let extended = process_leaf(
            &bounds,
            &partial,
            &simplex2(),
            usize::MAX,
            2,
            true,
            &mut stats,
        );
        let weights: Vec<usize> = extended.iter().map(|c| c.p_order).collect();
        assert!(weights.contains(&0) && weights.contains(&1));
        // Note: the weight-2 combination {inside h0, inside h1} is feasible
        // only where x+y > 1.2 intersects the simplex x+y < 1 — it is empty.
        assert!(!weights.contains(&2));
    }

    #[test]
    fn max_weight_caps_enumeration() {
        // The only non-empty cells require weight 1, but the cap of 0 forbids
        // finding them.
        let bounds = BoundingBox::unit(2);
        // Two complementary half-spaces covering the leaf: weight-0 cell empty.
        let partial = vec![(0u32, hs(&[1.0, 0.0], 0.4)), (1u32, hs(&[-1.0, 0.0], -0.6))];
        let mut stats = QueryStats::default();
        let capped = process_leaf(&bounds, &partial, &simplex2(), 0, 0, true, &mut stats);
        assert!(capped.is_empty());
        let uncapped = process_leaf(&bounds, &partial, &simplex2(), 2, 0, true, &mut stats);
        assert!(!uncapped.is_empty());
        assert!(uncapped.iter().all(|c| c.p_order == 1));
    }

    #[test]
    fn pair_pruning_matches_unpruned_results() {
        // The pruned and unpruned enumerations must find exactly the same
        // cells (same weights and same inside-sets).
        let bounds = BoundingBox::unit(2);
        let partial = vec![
            (0u32, hs(&[1.0, 0.2], 0.5)),
            (1u32, hs(&[-1.0, 0.3], -0.4)),
            (2u32, hs(&[0.3, 1.0], 0.7)),
            (3u32, hs(&[1.0, 1.0], 1.1)),
            (4u32, hs(&[-0.5, 1.0], 0.1)),
        ];
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        let with = process_leaf(&bounds, &partial, &simplex2(), usize::MAX, 3, true, &mut s1);
        let without = process_leaf(
            &bounds,
            &partial,
            &simplex2(),
            usize::MAX,
            3,
            false,
            &mut s2,
        );
        let key = |c: &FoundCell| (c.p_order, c.inside.clone());
        let mut a: Vec<_> = with.iter().map(key).collect();
        let mut b: Vec<_> = without.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // Pruning must have dismissed at least one bit-string in this richly
        // overlapping configuration.
        assert!(s1.bitstrings_pruned > 0);
    }

    #[test]
    fn enumerate_cells_against_direct_point_counts() {
        // Build a quad-tree over a handful of half-spaces and verify that the
        // minimum cell order reported by enumerate_cells matches a dense grid
        // scan of the permissible simplex.
        let mut qt = HalfSpaceQuadTree::new(2);
        let hss = [
            hs(&[1.0, 0.1], 0.45),
            hs(&[-0.2, 1.0], 0.35),
            hs(&[-1.0, -1.0], -0.9),
            hs(&[0.7, -1.0], -0.1),
            hs(&[1.0, 1.0], 0.75),
        ];
        for h in &hss {
            qt.insert(h.clone());
        }
        let mut stats = QueryStats::default();
        let (cells, _) = enumerate_cells(&qt, None, 0, true, 1, &mut stats);
        assert!(!cells.is_empty());
        let min_order = cells.iter().map(|c| c.order).min().unwrap();
        // Dense grid reference.
        let mut grid_min = usize::MAX;
        let steps = 200;
        for i in 1..steps {
            for j in 1..steps {
                let q = [i as f64 / steps as f64, j as f64 / steps as f64];
                if q[0] + q[1] >= 1.0 {
                    continue;
                }
                let count = hss.iter().filter(|h| h.contains(&q)).count();
                grid_min = grid_min.min(count);
            }
        }
        assert_eq!(min_order, grid_min);
        // Every reported min-order cell's witness must indeed see `min_order`
        // half-spaces.
        for c in cells.iter().filter(|c| c.order == min_order) {
            let w = &c.region.witness;
            let count = hss.iter().filter(|h| h.contains(w)).count();
            assert_eq!(count, min_order);
        }
        assert!(stats.leaves_processed > 0);
        assert!(stats.cells_tested > 0);
    }

    #[test]
    fn parallel_enumeration_matches_sequential() {
        // A richly overlapping arrangement split across several quad-tree
        // leaves: sharding the frontier must not change the cell set, for
        // both the fixed-cap and the adaptive-cap paths.
        let mut qt = HalfSpaceQuadTree::new(2);
        let mut v = 0.31f64;
        for _ in 0..24 {
            v = (v * 997.0).fract();
            let a = v * 2.0 - 1.0;
            v = (v * 997.0).fract();
            let b = v * 2.0 - 1.0;
            v = (v * 997.0).fract();
            qt.insert(hs(&[a, b], v * 0.8 - 0.2));
        }
        for hard_limit in [None, Some(3)] {
            let mut seq_stats = QueryStats::default();
            let (seq, seq_limit) = enumerate_cells(&qt, hard_limit, 1, true, 1, &mut seq_stats);
            let mut par_stats = QueryStats::default();
            let (par, par_limit) = enumerate_cells(&qt, hard_limit, 1, true, 4, &mut par_stats);
            assert_eq!(seq_limit, par_limit, "hard_limit {hard_limit:?}");
            let key = |c: &ArrangementCell| {
                let mut full = c.full.clone();
                full.sort_unstable();
                (c.order, full, c.inside_partial.clone())
            };
            let mut a: Vec<_> = seq.iter().map(key).collect();
            let mut b: Vec<_> = par.iter().map(key).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "hard_limit {hard_limit:?}");
            assert!(par_stats.leaves_processed >= seq_stats.leaves_processed);
        }
    }

    #[test]
    fn enumerate_cells_hard_limit_returns_all_below() {
        let mut qt = HalfSpaceQuadTree::new(2);
        // Three nested half-spaces produce cells of orders 0..=3 along the
        // diagonal (intersected with the simplex).
        qt.insert(hs(&[1.0, 1.0], 0.3));
        qt.insert(hs(&[1.0, 1.0], 0.5));
        qt.insert(hs(&[1.0, 1.0], 0.7));
        // With a hard limit of 2 and tau = 2, every cell within 2 of each
        // leaf's minimum and with order ≤ 2 must be reported.
        let mut stats = QueryStats::default();
        let (cells, limit) = enumerate_cells(&qt, Some(2), 2, true, 1, &mut stats);
        assert_eq!(limit, 2);
        let orders: std::collections::BTreeSet<usize> = cells.iter().map(|c| c.order).collect();
        assert!(orders.contains(&0) && orders.contains(&1) && orders.contains(&2));
        assert!(!orders.contains(&3));
        // With tau = 0 only the minimum-order cells survive.
        let mut stats = QueryStats::default();
        let (cells, _) = enumerate_cells(&qt, None, 0, true, 1, &mut stats);
        assert!(cells.iter().all(|c| c.order == 0));
    }
}
