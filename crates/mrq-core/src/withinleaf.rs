//! Within-leaf processing (paper, Section 5.2) and whole-arrangement cell
//! enumeration.
//!
//! A quad-tree leaf `l` is covered by the half-spaces of its full-containment
//! set `F_l` and crossed by those of its partial-overlap set `P_l`.  Every
//! cell of the arrangement restricted to `l` corresponds to a bit-string over
//! `P_l` (bit `i` = the cell lies inside the `i`-th half-space); the number of
//! set bits is the cell's *p-order*, and the cell's order is `|F_l|` plus the
//! p-order.  Cells are materialised in increasing Hamming weight; each
//! candidate bit-string is checked for non-emptiness with the feasibility LP
//! (the paper uses Qhull half-space intersection for the same purpose).
//!
//! # The fast path (see `docs/ARCHITECTURE.md`, "The within-leaf fast path")
//!
//! The cheapest LP is the one never run.  Around the bare enumeration sit
//! four coordinated optimisations, none of which changes the cell set:
//!
//! * **witness-first feasibility** — every LP solved inside the leaf (pair
//!   conditions, candidate cells, a deterministic centre probe) yields an
//!   interior point.  Each point whose distance to every constraint of the
//!   leaf exceeds the feasibility slack is cached under its full sign
//!   pattern; a candidate bit-string matching a cached pattern is proven
//!   non-empty by `O(m·d)` dot products instead of an LP
//!   ([`QueryStats::witness_hits`]);
//! * **implication-propagating combination search** — the pairwise Figure-4
//!   conditions are compiled into per-position forbidden-bit word masks and
//!   checked *inside* the combination recursion: the instant a prefix fixes a
//!   bit that violates a condition against any earlier bit, the entire
//!   subtree of completions is cut ([`QueryStats::subtrees_pruned`]), rather
//!   than generating complete bit-strings and filtering them;
//! * **word-packed bit-strings over an immutable constraint slab** — the
//!   leaf's half-spaces are normalised once into a flat row-major matrix;
//!   candidates are `u64` word bitsets and never materialise
//!   `Vec<HalfSpace>`s;
//! * **a reusable LP arena** — candidate LPs are assembled directly from the
//!   slab into [`mrq_geometry::LpScratch`] buffers, so steady-state candidate
//!   testing performs no allocation.
//!
//! Enumeration stops at the first Hamming weight that yields a non-empty
//! cell (plus `τ` further weights for iMaxRank), and never exceeds the
//! caller-provided cap derived from the best order found so far.

use crate::batch::scatter;
use crate::result::QueryStats;
use mrq_geometry::{
    maximize_with, reduced_simplex_constraint, BoundingBox, HalfSpace, LpScratch, LpStatus, Region,
    FEASIBILITY_SLACK,
};
use mrq_quadtree::{HalfSpaceId, HalfSpaceQuadTree, LeafView};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A non-empty cell found inside one leaf.
#[derive(Debug, Clone)]
pub struct FoundCell {
    /// Hamming weight of the bit-string: how many of the leaf's
    /// partial-overlap half-spaces contain the cell.
    pub p_order: usize,
    /// Ids of the partial-overlap half-spaces containing the cell.
    pub inside: Vec<HalfSpaceId>,
    /// The materialised region.
    pub region: Region,
}

/// A cell of the (mixed) arrangement, as produced by [`enumerate_cells`].
#[derive(Debug, Clone)]
pub struct ArrangementCell {
    /// Cell order: `|F_l|` + p-order (the number of arrangement half-spaces
    /// containing the cell).
    pub order: usize,
    /// The leaf's full-containment set `F_l`.
    pub full: Vec<HalfSpaceId>,
    /// The partial-overlap half-spaces containing the cell.
    pub inside_partial: Vec<HalfSpaceId>,
    /// The materialised region.
    pub region: Region,
}

impl ArrangementCell {
    /// All half-spaces containing the cell (`H_c` in the paper).
    pub fn containing_ids(&self) -> impl Iterator<Item = HalfSpaceId> + '_ {
        self.full.iter().chain(&self.inside_partial).copied()
    }
}

/// Knobs of the within-leaf / whole-arrangement enumeration.
#[derive(Debug, Clone, Copy)]
pub struct CellEnumOptions {
    /// Use the pairwise containment conditions of Section 5.2 (compiled into
    /// the implication table that prunes the combination recursion).
    pub pair_pruning: bool,
    /// Use the per-leaf witness cache to prove candidate bit-strings
    /// non-empty without an LP.  The cell set is identical either way; this
    /// knob exists for ablation and differential testing.
    pub witness_cache: bool,
    /// Threads the leaf frontier is sharded over (1 = sequential).  The cell
    /// set is identical for any value.
    pub threads: usize,
}

impl Default for CellEnumOptions {
    fn default() -> Self {
        Self {
            pair_pruning: true,
            witness_cache: true,
            threads: 1,
        }
    }
}

/// Per-pair forbidden bit combinations (Figure 4 of the paper).
#[derive(Debug, Clone, Copy, Default)]
struct PairConditions {
    forbid11: bool,
    forbid00: bool,
    /// Bit of the *first* half-space 1, bit of the second 0 is impossible.
    forbid10: bool,
    forbid01: bool,
}

/// Number of `u64` words a packed bit-string over `m` positions needs.
#[inline]
fn words_for(m: usize) -> usize {
    m.div_ceil(64).max(1)
}

/// Immutable per-leaf constraint slab: the leaf's partial-overlap half-spaces
/// normalised once into a flat row-major matrix (`stride = dr + 1` floats per
/// row: unit-norm coefficients followed by the rhs), plus the normalised
/// simplex constraint.  Witness sign checks and LP row assembly both stream
/// over these rows cache-linearly.
struct LeafSlab {
    dr: usize,
    m: usize,
    stride: usize,
    /// `m` rows, "inside" orientation (`a · x > b` with `|a| = 1`).
    rows: Vec<f64>,
    /// The normalised permissible-simplex constraint (one row).
    simplex: Vec<f64>,
}

impl LeafSlab {
    fn build(dr: usize, partial: &[(HalfSpaceId, HalfSpace)], simplex: &HalfSpace) -> LeafSlab {
        let stride = dr + 1;
        let mut rows = Vec::with_capacity(partial.len() * stride);
        for (_, h) in partial {
            let hn = h.normalized();
            debug_assert_eq!(hn.coeffs.len(), dr);
            rows.extend_from_slice(&hn.coeffs);
            rows.push(hn.rhs);
        }
        let sn = simplex.normalized();
        let mut srow = Vec::with_capacity(stride);
        srow.extend_from_slice(&sn.coeffs);
        srow.push(sn.rhs);
        LeafSlab {
            dr,
            m: partial.len(),
            stride,
            rows,
            simplex: srow,
        }
    }

    /// Normalised row `i` as `(coefficients, rhs)`.
    #[inline]
    fn row(&self, i: usize) -> (&[f64], f64) {
        let base = i * self.stride;
        (&self.rows[base..base + self.dr], self.rows[base + self.dr])
    }

    /// Oriented (inside-positive) slack of `x` against row `i`.
    #[inline]
    fn slack(&self, i: usize, x: &[f64]) -> f64 {
        let (coeffs, rhs) = self.row(i);
        coeffs.iter().zip(x).map(|(c, v)| c * v).sum::<f64>() - rhs
    }

    /// Oriented slack of `x` against the simplex constraint.
    #[inline]
    fn simplex_slack(&self, x: &[f64]) -> f64 {
        self.simplex[..self.dr]
            .iter()
            .zip(x)
            .map(|(c, v)| c * v)
            .sum::<f64>()
            - self.simplex[self.dr]
    }
}

/// Per-leaf cache of interior points keyed by their full sign pattern over
/// the slab rows.  Only points whose distance (in unit-normal terms) to
/// *every* constraint of the leaf — slab rows, simplex, box faces — exceeds
/// [`FEASIBILITY_SLACK`] are kept, so a pattern hit proves the candidate cell
/// full-dimensional exactly when the LP would.
///
/// Besides whole-pattern lookups, the pool answers **pairwise** feasibility
/// questions: `row_cover[r]` is a bitset over witnesses marking which lie
/// inside slab row `r`, so "is any cached point inside `i` and outside `j`"
/// is two word-`AND`s — this is what lets `compute_pair_conditions` skip
/// most of its 4·C(m, 2) LPs once a few witnesses exist.
struct WitnessPool {
    index: HashMap<Vec<u64>, usize>,
    /// `(interior point, minimum constraint distance)` per kept witness.
    entries: Vec<(Vec<f64>, f64)>,
    /// Per slab row, a bitset over witness indices (inside = bit set).
    row_cover: Vec<Vec<u64>>,
}

impl WitnessPool {
    fn new(m: usize) -> Self {
        Self {
            index: HashMap::new(),
            entries: Vec::new(),
            row_cover: vec![Vec::new(); m],
        }
    }

    /// Classifies `point` against the whole slab and keeps it when every
    /// constraint is cleared by more than the feasibility slack.
    fn try_add(&mut self, point: Vec<f64>, slab: &LeafSlab, bounds: &BoundingBox) {
        let mut min_slack = slab.simplex_slack(&point);
        for ((x, lo), hi) in point.iter().zip(&bounds.lo).zip(&bounds.hi) {
            min_slack = min_slack.min(x - lo).min(hi - x);
        }
        if min_slack <= FEASIBILITY_SLACK {
            return; // outside (or too close to) the leaf box / simplex
        }
        let mut pattern = vec![0u64; words_for(slab.m)];
        for i in 0..slab.m {
            let s = slab.slack(i, &point);
            if s > 0.0 {
                pattern[i / 64] |= 1u64 << (i % 64);
            }
            min_slack = min_slack.min(s.abs());
            if min_slack <= FEASIBILITY_SLACK {
                return; // ambiguous pattern: the point sits on a boundary
            }
        }
        self.insert(pattern, point, min_slack);
    }

    /// Inserts a witness whose pattern and slack are already certified (the
    /// LP of the candidate itself).  First witness per pattern wins, keeping
    /// the pool deterministic.
    fn insert(&mut self, pattern: Vec<u64>, point: Vec<f64>, slack: f64) {
        if self.index.contains_key(&pattern) {
            return;
        }
        let w = self.entries.len();
        let (word, bit) = (w / 64, 1u64 << (w % 64));
        for (r, cover) in self.row_cover.iter_mut().enumerate() {
            if cover.len() <= word {
                cover.resize(word + 1, 0);
            }
            if pattern[r / 64] >> (r % 64) & 1 == 1 {
                cover[word] |= bit;
            }
        }
        self.index.insert(pattern, w);
        self.entries.push((point, slack));
    }

    /// The cached interior point proving `pattern` non-empty, if any.
    fn lookup(&self, pattern: &[u64]) -> Option<(&[f64], f64)> {
        self.index
            .get(pattern)
            .map(|&i| (self.entries[i].0.as_slice(), self.entries[i].1))
    }

    /// Whether any cached witness realises the two-row sign combination
    /// (`inside_i` / `inside_j` orientations of rows `i` and `j`) — if so,
    /// that pair configuration is feasible without an LP.
    fn any_pair_witness(&self, i: usize, j: usize, inside_i: bool, inside_j: bool) -> bool {
        let n = self.entries.len();
        if n == 0 {
            return false;
        }
        let words = n.div_ceil(64);
        let (ci, cj) = (&self.row_cover[i], &self.row_cover[j]);
        for w in 0..words {
            let valid = if w == words - 1 && !n.is_multiple_of(64) {
                (1u64 << (n % 64)) - 1
            } else {
                !0u64
            };
            let a = if inside_i { ci[w] } else { !ci[w] };
            let b = if inside_j { cj[w] } else { !cj[w] };
            if a & b & valid != 0 {
                return true;
            }
        }
        false
    }
}

/// Reusable buffers for the per-candidate feasibility LPs.  Rows are
/// assembled straight from the [`LeafSlab`] in exactly the constraint order
/// [`mrq_geometry::CellSpec::solve`] uses (chosen rows, simplex, complements
/// of the unchosen rows, box faces, ε-cap), so accept/reject decisions and
/// witness points are identical to the specification path.
struct LpArena {
    scratch: LpScratch,
    a: Vec<f64>,
    b: Vec<f64>,
    /// Objective: maximise the common slack ε (the last LP variable).
    c: Vec<f64>,
}

impl LpArena {
    fn new(dr: usize) -> Self {
        let nvars = dr + 1;
        let mut c = vec![0.0; nvars];
        c[nvars - 1] = 1.0;
        Self {
            scratch: LpScratch::new(),
            a: Vec::new(),
            b: Vec::new(),
            c,
        }
    }

    fn clear(&mut self) {
        self.a.clear();
        self.b.clear();
    }

    /// Pushes the LP row of an "inside" constraint `a · x > b` (unit-norm):
    /// `−a · x + ε ≤ −b`.
    #[inline]
    fn push_inside(&mut self, coeffs: &[f64], rhs: f64) {
        self.a.extend(coeffs.iter().map(|c| -c));
        self.a.push(1.0);
        self.b.push(-rhs);
    }

    /// Pushes the LP row of an "outside" constraint (the complement of the
    /// unit-norm `a · x > b`): `a · x + ε ≤ b`.
    #[inline]
    fn push_outside(&mut self, coeffs: &[f64], rhs: f64) {
        self.a.extend_from_slice(coeffs);
        self.a.push(1.0);
        self.b.push(rhs);
    }

    /// Pushes the leaf-box face rows (`x_i > lo_i`, `x_i < hi_i` per
    /// dimension, already unit-norm) and the ε ≤ 0.5 cap.
    fn push_box_and_cap(&mut self, bounds: &BoundingBox) {
        let dr = bounds.dim();
        let nvars = dr + 1;
        for i in 0..dr {
            // lo face: e_i · x > lo_i  ⇒  −e_i · x + ε ≤ −lo_i.
            let base = self.a.len();
            self.a.resize(base + nvars, 0.0);
            self.a[base + i] = -1.0;
            self.a[base + nvars - 1] = 1.0;
            self.b.push(-bounds.lo[i]);
            // hi face: −e_i · x > −hi_i  ⇒  e_i · x + ε ≤ hi_i.
            let base = self.a.len();
            self.a.resize(base + nvars, 0.0);
            self.a[base + i] = 1.0;
            self.a[base + nvars - 1] = 1.0;
            self.b.push(bounds.hi[i]);
        }
        // Cap ε so the LP is bounded even for cells with huge extent.
        let base = self.a.len();
        self.a.resize(base + nvars, 0.0);
        self.a[base + nvars - 1] = 1.0;
        self.b.push(0.5);
    }

    /// Runs the assembled LP; `Some((witness, slack))` iff the cell is
    /// full-dimensional.
    fn solve(&mut self, dr: usize) -> Option<(Vec<f64>, f64)> {
        match maximize_with(&mut self.scratch, &self.c, &self.a, &self.b) {
            LpStatus::Optimal(objective) if objective > FEASIBILITY_SLACK => {
                Some((self.scratch.point()[..dr].to_vec(), objective))
            }
            _ => None,
        }
    }

    /// Feasibility of the candidate bit-string `ones` over the slab.
    fn solve_candidate(
        &mut self,
        slab: &LeafSlab,
        ones: &[u64],
        bounds: &BoundingBox,
    ) -> Option<(Vec<f64>, f64)> {
        self.clear();
        for i in 0..slab.m {
            if ones[i / 64] >> (i % 64) & 1 == 1 {
                let (coeffs, rhs) = slab.row(i);
                self.push_inside(coeffs, rhs);
            }
        }
        self.push_inside(&slab.simplex[..slab.dr], slab.simplex[slab.dr]);
        for i in 0..slab.m {
            if ones[i / 64] >> (i % 64) & 1 == 0 {
                let (coeffs, rhs) = slab.row(i);
                self.push_outside(coeffs, rhs);
            }
        }
        self.push_box_and_cap(bounds);
        self.solve(slab.dr)
    }

    /// Feasibility of a two-constraint configuration (`inside_i` / `inside_j`
    /// select the orientation of rows `i` and `j`), used to derive the
    /// pairwise conditions without cloning any `HalfSpace`.
    fn solve_pair(
        &mut self,
        slab: &LeafSlab,
        i: usize,
        j: usize,
        inside_i: bool,
        inside_j: bool,
        bounds: &BoundingBox,
    ) -> Option<(Vec<f64>, f64)> {
        self.clear();
        // Same row order CellSpec::solve would see: the inside rows first,
        // then the simplex, then the complements.
        for (idx, inside) in [(i, inside_i), (j, inside_j)] {
            if inside {
                let (coeffs, rhs) = slab.row(idx);
                self.push_inside(coeffs, rhs);
            }
        }
        self.push_inside(&slab.simplex[..slab.dr], slab.simplex[slab.dr]);
        for (idx, inside) in [(i, inside_i), (j, inside_j)] {
            if !inside {
                let (coeffs, rhs) = slab.row(idx);
                self.push_outside(coeffs, rhs);
            }
        }
        self.push_box_and_cap(bounds);
        self.solve(slab.dr)
    }
}

/// The pairwise conditions compiled into per-position forbidden-bit masks:
/// when the combination walker fixes position `p` to a value, one AND against
/// the already-fixed ones/zeros words decides whether any earlier pair
/// condition is violated — the 2-SAT-style implication table of the fast
/// path.
struct ImplicationTable {
    words: usize,
    /// Earlier positions `q` whose bit 1 forbids `p = 1` (`forbid11`).
    m11: Vec<u64>,
    /// Earlier positions `q` whose bit 0 forbids `p = 1` (`forbid01`).
    m01: Vec<u64>,
    /// Earlier positions `q` whose bit 1 forbids `p = 0` (`forbid10`).
    m10: Vec<u64>,
    /// Earlier positions `q` whose bit 0 forbids `p = 0` (`forbid00`).
    m00: Vec<u64>,
}

impl ImplicationTable {
    /// `conds` is the upper-triangular pair matrix, flattened as `i * m + j`
    /// for `i < j`.
    fn build(conds: &[PairConditions], m: usize) -> ImplicationTable {
        let words = words_for(m);
        let mut t = ImplicationTable {
            words,
            m11: vec![0; m * words],
            m01: vec![0; m * words],
            m10: vec![0; m * words],
            m00: vec![0; m * words],
        };
        for i in 0..m {
            for j in i + 1..m {
                let c = conds[i * m + j];
                let (word, bit) = (j * words + i / 64, 1u64 << (i % 64));
                if c.forbid11 {
                    t.m11[word] |= bit;
                }
                if c.forbid01 {
                    t.m01[word] |= bit;
                }
                if c.forbid10 {
                    t.m10[word] |= bit;
                }
                if c.forbid00 {
                    t.m00[word] |= bit;
                }
            }
        }
        t
    }

    /// Whether fixing position `p` to `value` violates a pair condition
    /// against any earlier fixed position.
    #[inline]
    fn violates(&self, p: usize, value: bool, ones: &[u64], zeros: &[u64]) -> bool {
        let w = self.words;
        let (vs_ones, vs_zeros) = if value {
            (&self.m11[p * w..(p + 1) * w], &self.m01[p * w..(p + 1) * w])
        } else {
            (&self.m10[p * w..(p + 1) * w], &self.m00[p * w..(p + 1) * w])
        };
        vs_ones.iter().zip(ones).any(|(m, o)| m & o != 0)
            || vs_zeros.iter().zip(zeros).any(|(m, z)| m & z != 0)
    }
}

/// `C(n, k)` saturating at `usize::MAX` (used only for the pruned-candidate
/// statistics).
fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i + 1) as u128;
        if acc > usize::MAX as u128 {
            return usize::MAX;
        }
    }
    acc as usize
}

/// Depth-first walk over all weight-`k` bit-strings of `m` positions as
/// word-packed bitsets, cutting whole subtrees at the first violated pair
/// condition.  Emits surviving bit-strings in the same lexicographic
/// chosen-index order as [`for_each_combination`], and attributes every
/// dismissed complete bit-string to exactly one pruned subtree, so the
/// pruned count equals what generate-then-filter would have rejected.
struct CombinationWalker<'a> {
    m: usize,
    table: Option<&'a ImplicationTable>,
    ones: Vec<u64>,
    zeros: Vec<u64>,
    /// Subtrees cut by a violated condition.
    subtrees_pruned: usize,
    /// Complete bit-strings those subtrees would have contained.
    bitstrings_pruned: usize,
}

impl<'a> CombinationWalker<'a> {
    fn new(m: usize, table: Option<&'a ImplicationTable>) -> Self {
        let words = words_for(m);
        Self {
            m,
            table,
            ones: vec![0; words],
            zeros: vec![0; words],
            subtrees_pruned: 0,
            bitstrings_pruned: 0,
        }
    }

    fn walk<F: FnMut(&[u64])>(&mut self, k: usize, f: &mut F) {
        if k > self.m {
            return;
        }
        self.rec(0, k, f);
    }

    fn prune(&mut self, positions_left: usize, ones_left: usize) {
        self.subtrees_pruned += 1;
        self.bitstrings_pruned = self
            .bitstrings_pruned
            .saturating_add(binomial(positions_left, ones_left));
    }

    fn rec<F: FnMut(&[u64])>(&mut self, pos: usize, ones_left: usize, f: &mut F) {
        if pos == self.m {
            debug_assert_eq!(ones_left, 0);
            f(&self.ones);
            return;
        }
        let positions_left = self.m - pos;
        let (word, bit) = (pos / 64, 1u64 << (pos % 64));
        // 1-branch first: lexicographic chosen-index order.
        if ones_left > 0 {
            if self
                .table
                .is_some_and(|t| t.violates(pos, true, &self.ones, &self.zeros))
            {
                self.prune(positions_left - 1, ones_left - 1);
            } else {
                self.ones[word] |= bit;
                self.rec(pos + 1, ones_left - 1, f);
                self.ones[word] &= !bit;
            }
        }
        if ones_left < positions_left {
            if self
                .table
                .is_some_and(|t| t.violates(pos, false, &self.ones, &self.zeros))
            {
                self.prune(positions_left - 1, ones_left);
            } else {
                self.zeros[word] |= bit;
                self.rec(pos + 1, ones_left, f);
                self.zeros[word] &= !bit;
            }
        }
    }
}

/// Builds the [`Region`] of a proven-non-empty candidate: the same
/// H-representation `CellSpec::all_constraints` would produce (chosen
/// half-spaces, the simplex, complements of the unchosen, box faces) around
/// the certified interior witness.
fn materialize_region(
    partial: &[(HalfSpaceId, HalfSpace)],
    simplex: &HalfSpace,
    bounds: &BoundingBox,
    ones: &[u64],
    witness: Vec<f64>,
    slack: f64,
) -> Region {
    let dr = bounds.dim();
    let mut constraints = Vec::with_capacity(partial.len() + 1 + 2 * dr);
    for (i, (_, h)) in partial.iter().enumerate() {
        if ones[i / 64] >> (i % 64) & 1 == 1 {
            constraints.push(h.clone());
        }
    }
    constraints.push(simplex.clone());
    for (i, (_, h)) in partial.iter().enumerate() {
        if ones[i / 64] >> (i % 64) & 1 == 0 {
            constraints.push(h.complement());
        }
    }
    for i in 0..dr {
        let mut lo_coeffs = vec![0.0; dr];
        lo_coeffs[i] = 1.0;
        constraints.push(HalfSpace::new(lo_coeffs, bounds.lo[i]));
        let mut hi_coeffs = vec![0.0; dr];
        hi_coeffs[i] = -1.0;
        constraints.push(HalfSpace::new(hi_coeffs, -bounds.hi[i]));
    }
    Region {
        constraints,
        bounds: bounds.clone(),
        witness,
        slack,
    }
}

/// Chosen half-space ids of a packed candidate.
fn chosen_ids(partial: &[(HalfSpaceId, HalfSpace)], ones: &[u64]) -> (usize, Vec<HalfSpaceId>) {
    let mut ids = Vec::new();
    for (i, (id, _)) in partial.iter().enumerate() {
        if ones[i / 64] >> (i % 64) & 1 == 1 {
            ids.push(*id);
        }
    }
    (ids.len(), ids)
}

/// Processes one leaf: enumerates bit-strings over `partial` in increasing
/// Hamming weight and returns the non-empty cells.
///
/// * `max_weight` — never consider bit-strings with more set bits than this
///   (derived from the best order found so far by the caller);
/// * `collect_extra` — after the first weight `w0` with a non-empty cell,
///   keep enumerating up to `w0 + collect_extra` (τ of iMaxRank; 0 for plain
///   MaxRank);
/// * `options` — pair pruning / witness cache knobs ([`CellEnumOptions`];
///   the `threads` field is ignored here — leaves are indivisible units of
///   the parallel frontier).
pub fn process_leaf(
    bounds: &BoundingBox,
    partial: &[(HalfSpaceId, HalfSpace)],
    simplex: &HalfSpace,
    max_weight: usize,
    collect_extra: usize,
    options: &CellEnumOptions,
    stats: &mut QueryStats,
) -> Vec<FoundCell> {
    let m = partial.len();
    let dr = bounds.dim();
    let max_weight = max_weight.min(m);
    let slab = LeafSlab::build(dr, partial, simplex);
    let mut arena = LpArena::new(dr);
    let mut pool = options.witness_cache.then(|| WitnessPool::new(m));
    if let Some(pool) = &mut pool {
        // Deterministic free probes: the leaf centre (often outside the
        // simplex for coarse leaves) and a point pushed from the lower corner
        // part-way toward the centre, scaled so it stays strictly inside the
        // permissible simplex.  Whichever cells these land in are proven
        // non-empty before any LP runs.
        pool.try_add(bounds.center(), &slab, bounds);
        let lo_sum: f64 = bounds.lo.iter().sum();
        let half_extent_sum: f64 = (0..dr).map(|i| 0.5 * bounds.extent(i)).sum();
        if half_extent_sum > 0.0 {
            let t = 0.5 * (1.0 - lo_sum) / half_extent_sum;
            // At t ≥ 1 the scaled probe IS the centre already classified
            // above; only a genuinely distinct point is worth the O(m·d)
            // classification.
            if t > 0.0 && t < 1.0 {
                let probe: Vec<f64> = (0..dr)
                    .map(|i| bounds.lo[i] + t * 0.5 * bounds.extent(i))
                    .collect();
                pool.try_add(probe, &slab, bounds);
            }
        }
    }

    let mut found = Vec::new();
    let mut first_nonempty: Option<usize> = None;
    let mut implications: Option<ImplicationTable> = None;

    let mut weight = 0usize;
    while weight <= max_weight {
        if let Some(w0) = first_nonempty {
            if weight > w0 + collect_extra {
                break;
            }
        }
        // Lazily derive the pairwise conditions once weights ≥ 2 are reached,
        // where they start paying for themselves.
        if options.pair_pruning && weight >= 2 && implications.is_none() && m >= 2 {
            implications = Some(compute_pair_conditions(
                &slab,
                partial,
                bounds,
                &mut arena,
                pool.as_mut(),
                stats,
            ));
        }
        let mut any_at_this_weight = false;
        let mut walker = CombinationWalker::new(m, implications.as_ref());
        walker.walk(weight, &mut |ones| {
            stats.cells_tested += 1;
            // Witness-first: a cached interior point with this exact sign
            // pattern proves the cell non-empty with zero LP work.
            if let Some(pool) = pool.as_ref() {
                if let Some((point, slack)) = pool.lookup(ones) {
                    stats.witness_hits += 1;
                    any_at_this_weight = true;
                    let (p_order, inside) = chosen_ids(partial, ones);
                    let region =
                        materialize_region(partial, simplex, bounds, ones, point.to_vec(), slack);
                    found.push(FoundCell {
                        p_order,
                        inside,
                        region,
                    });
                    return;
                }
            }
            stats.lp_calls += 1;
            if let Some((witness, slack)) = arena.solve_candidate(&slab, ones, bounds) {
                any_at_this_weight = true;
                if let Some(pool) = pool.as_mut() {
                    // The LP certifies every constraint distance ≥ slack.
                    pool.insert(ones.to_vec(), witness.clone(), slack);
                }
                let (p_order, inside) = chosen_ids(partial, ones);
                let region = materialize_region(partial, simplex, bounds, ones, witness, slack);
                found.push(FoundCell {
                    p_order,
                    inside,
                    region,
                });
            }
        });
        stats.subtrees_pruned += walker.subtrees_pruned;
        stats.bitstrings_pruned += walker.bitstrings_pruned;
        if any_at_this_weight && first_nonempty.is_none() {
            first_nonempty = Some(weight);
        }
        weight += 1;
    }
    found
}

/// Derives the pairwise conditions, witness-first: a cached point realising
/// the two-row sign combination proves it feasible for free; only unproven
/// combinations fall back to the tiny two-constraint LP (straight off the
/// slab — no `HalfSpace` clones), whose witness then joins the pool.  The
/// probes plus the first few pair witnesses typically prove the bulk of the
/// 4·C(m, 2) combinations, so the quadratic pair derivation sheds most of
/// its LPs.
fn compute_pair_conditions(
    slab: &LeafSlab,
    partial: &[(HalfSpaceId, HalfSpace)],
    bounds: &BoundingBox,
    arena: &mut LpArena,
    mut pool: Option<&mut WitnessPool>,
    stats: &mut QueryStats,
) -> ImplicationTable {
    let m = slab.m;
    debug_assert_eq!(partial.len(), m);
    let mut conds = vec![PairConditions::default(); m * m];
    for i in 0..m {
        for j in i + 1..m {
            let feasible = |inside_i: bool,
                            inside_j: bool,
                            arena: &mut LpArena,
                            pool: &mut Option<&mut WitnessPool>,
                            stats: &mut QueryStats| {
                if let Some(pool) = pool.as_deref_mut() {
                    if pool.any_pair_witness(i, j, inside_i, inside_j) {
                        stats.witness_hits += 1;
                        return true;
                    }
                }
                stats.lp_calls += 1;
                match arena.solve_pair(slab, i, j, inside_i, inside_j, bounds) {
                    Some((witness, _)) => {
                        if let Some(pool) = pool.as_deref_mut() {
                            pool.try_add(witness, slab, bounds);
                        }
                        true
                    }
                    None => false,
                }
            };
            conds[i * m + j] = PairConditions {
                forbid11: !feasible(true, true, arena, &mut pool, stats),
                forbid00: !feasible(false, false, arena, &mut pool, stats),
                forbid10: !feasible(true, false, arena, &mut pool, stats),
                forbid01: !feasible(false, true, arena, &mut pool, stats),
            };
        }
    }
    ImplicationTable::build(&conds, m)
}

/// Enumerates the cells of the arrangement held by the quad-tree, visiting
/// leaves in increasing `|F_l|` order and pruning leaves (and Hamming
/// weights) that cannot produce a relevant cell.
///
/// * With `hard_limit = Some(l)` every cell with order ≤ `l` that is within
///   `tau` of its leaf's minimum is returned (cells further from the leaf
///   minimum can never lie within `tau` of the *global* minimum, so they are
///   irrelevant to MaxRank/iMaxRank).
/// * With `hard_limit = None` the bound adapts: the enumeration returns every
///   cell with order ≤ (minimum order found) + `tau`.
/// * `options.threads > 1` shards the leaf frontier over that many scoped
///   threads; the cells returned are identical for any thread count.
///
/// Returns the cells and the effective bound that was applied.
///
/// This is a convenience wrapper over [`CellEnumerator`] without caching; the
/// iterative AA keeps a [`CellEnumerator`] alive across iterations so that
/// leaves untouched by newly inserted half-spaces are not re-enumerated.
pub fn enumerate_cells(
    qt: &HalfSpaceQuadTree,
    hard_limit: Option<usize>,
    tau: usize,
    options: &CellEnumOptions,
    stats: &mut QueryStats,
) -> (Vec<ArrangementCell>, usize) {
    CellEnumerator::new().enumerate(qt, hard_limit, tau, options, stats)
}

#[derive(Debug, Clone)]
struct CachedLeaf {
    /// The Hamming-weight cap the cached enumeration was run with.
    max_weight: usize,
    cells: Vec<FoundCell>,
}

/// Arrangement-cell enumerator with a per-leaf memo.
///
/// The cache key is `(leaf node, |F_l|, |P_l|)`: half-spaces are only ever
/// *added* to the quad-tree, so identical set sizes imply identical sets, and
/// a cached enumeration that was run with a Hamming-weight cap at least as
/// large as the one currently required can be reused after filtering.
#[derive(Debug, Default)]
pub struct CellEnumerator {
    cache: std::collections::HashMap<(usize, usize, usize), CachedLeaf>,
}

impl CellEnumerator {
    /// Creates an enumerator with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// See [`enumerate_cells`].
    pub fn enumerate(
        &mut self,
        qt: &HalfSpaceQuadTree,
        hard_limit: Option<usize>,
        tau: usize,
        options: &CellEnumOptions,
        stats: &mut QueryStats,
    ) -> (Vec<ArrangementCell>, usize) {
        let threads = options.threads.max(1);
        let simplex = reduced_simplex_constraint(qt.reduced_dims() + 1);
        let mut leaves = qt.leaves();
        leaves.sort_by_key(|l| l.full.len());
        let mut best = usize::MAX;
        let mut out: Vec<ArrangementCell> = Vec::new();
        // First pass: serve every leaf whose enumeration is already cached
        // with a sufficient Hamming-weight cap, in |F_l| order, so `best` is
        // as tight as the cache allows before any computation starts.
        let mut todo: Vec<&LeafView> = Vec::new();
        for leaf in &leaves {
            let f = leaf.full.len();
            let cap = match hard_limit {
                Some(l) => l,
                None => best.saturating_add(tau),
            };
            if f > cap {
                break; // leaves are sorted by |F_l|; none of the rest can qualify
            }
            let max_weight = (cap - f).min(leaf.partial.len());
            let key = (leaf.node, f, leaf.partial.len());
            match self.cache.get(&key) {
                Some(cached) if cached.max_weight >= max_weight => {
                    stats.leaves_processed += 1;
                    for c in &cached.cells {
                        if c.p_order > max_weight {
                            continue;
                        }
                        let order = f + c.p_order;
                        best = best.min(order);
                        out.push(ArrangementCell {
                            order,
                            full: leaf.full.clone(),
                            inside_partial: c.inside.clone(),
                            region: c.region.clone(),
                        });
                    }
                }
                _ => todo.push(leaf),
            }
        }
        // Second pass: enumerate the remaining leaves.  With `threads > 1`
        // the frontier is sharded over scoped threads pulling from a shared
        // cursor; `best` is a shared atomic that only ever shrinks, so a
        // worker reading a stale value merely enumerates with a looser cap
        // (extra cells are filtered by the final retain), never a tighter
        // one — the result is identical to the sequential pass.
        let shared_best = AtomicUsize::new(best);
        let cursor = AtomicUsize::new(0);
        let shard_outputs = scatter(threads.min(todo.len().max(1)), |_| {
            let mut shard_stats = QueryStats::default();
            let mut computed: Vec<(usize, usize, Vec<FoundCell>)> = Vec::new();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(leaf) = todo.get(i) else { break };
                let f = leaf.full.len();
                let cap = match hard_limit {
                    Some(l) => l,
                    None => shared_best.load(Ordering::Relaxed).saturating_add(tau),
                };
                if f > cap {
                    // `best` only shrinks, so this leaf can never qualify;
                    // later leaves have even larger |F_l| but other shards may
                    // already hold some, so keep draining the cursor.
                    continue;
                }
                let max_weight = (cap - f).min(leaf.partial.len());
                shard_stats.leaves_processed += 1;
                let partial: Vec<(HalfSpaceId, HalfSpace)> = leaf
                    .partial
                    .iter()
                    .map(|&id| (id, qt.halfspace(id).clone()))
                    .collect();
                let cells = process_leaf(
                    &leaf.bounds,
                    &partial,
                    &simplex,
                    max_weight,
                    tau,
                    options,
                    &mut shard_stats,
                );
                if let Some(min) = cells.iter().map(|c| f + c.p_order).min() {
                    shared_best.fetch_min(min, Ordering::Relaxed);
                }
                computed.push((i, max_weight, cells));
            }
            (computed, shard_stats)
        });
        best = shared_best.load(Ordering::Relaxed);
        // Merge shard outputs in leaf order so cache contents and the output
        // cell order are independent of scheduling.
        let mut merged: Vec<(usize, usize, Vec<FoundCell>)> = shard_outputs
            .into_iter()
            .flat_map(|(computed, shard_stats)| {
                stats.leaves_processed += shard_stats.leaves_processed;
                stats.cells_tested += shard_stats.cells_tested;
                stats.bitstrings_pruned += shard_stats.bitstrings_pruned;
                stats.lp_calls += shard_stats.lp_calls;
                stats.witness_hits += shard_stats.witness_hits;
                stats.subtrees_pruned += shard_stats.subtrees_pruned;
                computed
            })
            .collect();
        merged.sort_by_key(|(i, _, _)| *i);
        for (i, max_weight, cells) in merged {
            let leaf = todo[i];
            let f = leaf.full.len();
            self.cache.insert(
                (leaf.node, f, leaf.partial.len()),
                CachedLeaf {
                    max_weight,
                    cells: cells.clone(),
                },
            );
            for c in cells {
                let order = f + c.p_order;
                best = best.min(order);
                out.push(ArrangementCell {
                    order,
                    full: leaf.full.clone(),
                    inside_partial: c.inside,
                    region: c.region,
                });
            }
        }
        let effective = match hard_limit {
            Some(l) => l,
            None => best.saturating_add(tau),
        };
        out.retain(|c| c.order <= effective);
        (out, effective)
    }
}

/// Calls `f` with every sorted `k`-subset of `0..n`.
///
/// Kept as the specification the packed [`CombinationWalker`] is checked
/// against (same subsets, same lexicographic order); production code uses the
/// walker.
#[cfg_attr(not(test), allow(dead_code))]
fn for_each_combination<F: FnMut(&[usize])>(n: usize, k: usize, mut f: F) {
    if k > n {
        return;
    }
    if k == 0 {
        f(&[]);
        return;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        f(&idx);
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hs(coeffs: &[f64], rhs: f64) -> HalfSpace {
        HalfSpace::new(coeffs.to_vec(), rhs)
    }

    fn simplex2() -> HalfSpace {
        reduced_simplex_constraint(3)
    }

    fn opts() -> CellEnumOptions {
        CellEnumOptions::default()
    }

    fn lp_only() -> CellEnumOptions {
        CellEnumOptions {
            witness_cache: false,
            ..CellEnumOptions::default()
        }
    }

    #[test]
    fn combinations_enumerate_all_subsets() {
        let mut seen = Vec::new();
        for_each_combination(5, 2, |c| seen.push(c.to_vec()));
        assert_eq!(seen.len(), 10);
        assert!(seen.contains(&vec![0, 1]) && seen.contains(&vec![3, 4]));
        let mut zero = 0;
        for_each_combination(4, 0, |c| {
            assert!(c.is_empty());
            zero += 1;
        });
        assert_eq!(zero, 1);
        let mut none = 0;
        for_each_combination(2, 3, |_| none += 1);
        assert_eq!(none, 0);
        let mut all = 0;
        for_each_combination(3, 3, |c| {
            assert_eq!(c, &[0, 1, 2]);
            all += 1;
        });
        assert_eq!(all, 1);
    }

    fn unpack(ones: &[u64], m: usize) -> Vec<usize> {
        (0..m)
            .filter(|&i| ones[i / 64] >> (i % 64) & 1 == 1)
            .collect()
    }

    /// Deterministic pseudo-random pair-condition matrix; `density` in 0..=4
    /// controls how many of the four flags fire.
    fn random_conds(m: usize, seed: u64, density: u64) -> Vec<PairConditions> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut conds = vec![PairConditions::default(); m * m];
        for i in 0..m {
            for j in i + 1..m {
                conds[i * m + j] = PairConditions {
                    forbid11: next() % 7 < density,
                    forbid00: next() % 7 < density,
                    forbid10: next() % 7 < density,
                    forbid01: next() % 7 < density,
                };
            }
        }
        conds
    }

    /// Reference filter over a complete bit-string (what the pre-walker code
    /// applied to every generated combination).
    fn violates_complete(chosen: &[usize], m: usize, conds: &[PairConditions]) -> bool {
        let mut bits = vec![false; m];
        for &i in chosen {
            bits[i] = true;
        }
        for i in 0..m {
            for j in i + 1..m {
                let c = &conds[i * m + j];
                match (bits[i], bits[j]) {
                    (true, true) if c.forbid11 => return true,
                    (false, false) if c.forbid00 => return true,
                    (true, false) if c.forbid10 => return true,
                    (false, true) if c.forbid01 => return true,
                    _ => {}
                }
            }
        }
        false
    }

    #[test]
    fn packed_walker_equals_for_each_combination_exhaustively() {
        // Property: over every (m ≤ 12, k), with and without conditions, the
        // packed walker emits exactly the combinations that generate-then-
        // filter keeps, in the same order, and attributes exactly the
        // rejected ones to pruned subtrees.
        for m in 0..=12usize {
            for k in 0..=m {
                for density in [0u64, 1, 3] {
                    let conds = random_conds(m, 0x5eed ^ (m as u64) << 8 ^ k as u64, density);
                    let table = ImplicationTable::build(&conds, m);
                    let mut expected = Vec::new();
                    let mut rejected = 0usize;
                    for_each_combination(m, k, |c| {
                        if density > 0 && violates_complete(c, m, &conds) {
                            rejected += 1;
                        } else {
                            expected.push(c.to_vec());
                        }
                    });
                    let mut got = Vec::new();
                    let mut walker = CombinationWalker::new(m, (density > 0).then_some(&table));
                    walker.walk(k, &mut |ones| got.push(unpack(ones, m)));
                    assert_eq!(got, expected, "m={m} k={k} density={density}");
                    assert_eq!(
                        walker.bitstrings_pruned, rejected,
                        "pruned-count mismatch m={m} k={k} density={density}"
                    );
                    if rejected > 0 {
                        assert!(walker.subtrees_pruned > 0);
                        assert!(walker.subtrees_pruned <= rejected);
                    }
                }
            }
        }
    }

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(12, 6), 924);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(200, 100), usize::MAX);
    }

    #[test]
    fn figure3_within_leaf_example() {
        // Analogue of paper Figure 3(b), leaf l1: the half-spaces of the
        // partial-overlap set jointly cover the leaf (so the all-zero
        // bit-string is infeasible), the minimum p-order is 1, and it is
        // achieved only by the cell lying inside h2.
        let bounds = BoundingBox::new(vec![0.0, 0.0], vec![0.5, 0.5]);
        let h1 = hs(&[1.0, 1.0], 0.35); // x + y > 0.35
        let h2 = hs(&[-1.0, -1.0], -0.4); // x + y < 0.4
        let h6 = hs(&[1.0, 0.0], 0.05); // x > 0.05
        let h7 = hs(&[0.0, 1.0], 0.05); // y > 0.05
        let partial = vec![(0u32, h1), (1u32, h2.clone()), (2u32, h6), (3u32, h7)];
        let mut stats = QueryStats::default();
        let cells = process_leaf(
            &bounds,
            &partial,
            &simplex2(),
            usize::MAX,
            0,
            &opts(),
            &mut stats,
        );
        assert!(!cells.is_empty());
        let min_order = cells.iter().map(|c| c.p_order).min().unwrap();
        assert_eq!(min_order, 1);
        for c in cells.iter().filter(|c| c.p_order == 1) {
            assert_eq!(
                c.inside,
                vec![1],
                "the p-order-1 cell must be inside h2 only"
            );
            assert!(h2.contains(&c.region.witness));
        }
    }

    #[test]
    fn empty_bitstring_cell_found_when_leaf_uncovered() {
        // A single half-space clipping a corner: the weight-0 cell exists.
        let bounds = BoundingBox::unit(2);
        let partial = vec![(0u32, hs(&[1.0, 1.0], 1.5))];
        let mut stats = QueryStats::default();
        let cells = process_leaf(
            &bounds,
            &partial,
            &simplex2(),
            usize::MAX,
            0,
            &opts(),
            &mut stats,
        );
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].p_order, 0);
        assert!(cells[0].inside.is_empty());
    }

    #[test]
    fn collect_extra_returns_higher_weights() {
        // Two nested half-spaces: weight-0 cell exists; with collect_extra = 2
        // the weight-1 and weight-2 cells are returned too.
        let bounds = BoundingBox::unit(2);
        let partial = vec![(0u32, hs(&[1.0, 1.0], 0.6)), (1u32, hs(&[1.0, 1.0], 1.2))];
        let mut stats = QueryStats::default();
        let plain = process_leaf(
            &bounds,
            &partial,
            &simplex2(),
            usize::MAX,
            0,
            &opts(),
            &mut stats,
        );
        assert!(plain.iter().all(|c| c.p_order == 0));
        let extended = process_leaf(
            &bounds,
            &partial,
            &simplex2(),
            usize::MAX,
            2,
            &opts(),
            &mut stats,
        );
        let weights: Vec<usize> = extended.iter().map(|c| c.p_order).collect();
        assert!(weights.contains(&0) && weights.contains(&1));
        // Note: the weight-2 combination {inside h0, inside h1} is feasible
        // only where x+y > 1.2 intersects the simplex x+y < 1 — it is empty.
        assert!(!weights.contains(&2));
    }

    #[test]
    fn max_weight_caps_enumeration() {
        // The only non-empty cells require weight 1, but the cap of 0 forbids
        // finding them.
        let bounds = BoundingBox::unit(2);
        // Two complementary half-spaces covering the leaf: weight-0 cell empty.
        let partial = vec![(0u32, hs(&[1.0, 0.0], 0.4)), (1u32, hs(&[-1.0, 0.0], -0.6))];
        let mut stats = QueryStats::default();
        let capped = process_leaf(&bounds, &partial, &simplex2(), 0, 0, &opts(), &mut stats);
        assert!(capped.is_empty());
        let uncapped = process_leaf(&bounds, &partial, &simplex2(), 2, 0, &opts(), &mut stats);
        assert!(!uncapped.is_empty());
        assert!(uncapped.iter().all(|c| c.p_order == 1));
    }

    /// Sorted `(p_order, inside)` keys of a cell list.
    fn cell_keys(cells: &[FoundCell]) -> Vec<(usize, Vec<HalfSpaceId>)> {
        let mut keys: Vec<_> = cells
            .iter()
            .map(|c| (c.p_order, c.inside.clone()))
            .collect();
        keys.sort();
        keys
    }

    fn rich_partial() -> Vec<(HalfSpaceId, HalfSpace)> {
        vec![
            (0u32, hs(&[1.0, 0.2], 0.5)),
            (1u32, hs(&[-1.0, 0.3], -0.4)),
            (2u32, hs(&[0.3, 1.0], 0.7)),
            (3u32, hs(&[1.0, 1.0], 1.1)),
            (4u32, hs(&[-0.5, 1.0], 0.1)),
        ]
    }

    #[test]
    fn pair_pruning_matches_unpruned_results() {
        // The pruned and unpruned enumerations must find exactly the same
        // cells (same weights and same inside-sets).
        let bounds = BoundingBox::unit(2);
        let partial = rich_partial();
        let mut s1 = QueryStats::default();
        let mut s2 = QueryStats::default();
        let with = process_leaf(
            &bounds,
            &partial,
            &simplex2(),
            usize::MAX,
            3,
            &opts(),
            &mut s1,
        );
        let without = process_leaf(
            &bounds,
            &partial,
            &simplex2(),
            usize::MAX,
            3,
            &CellEnumOptions {
                pair_pruning: false,
                ..opts()
            },
            &mut s2,
        );
        assert_eq!(cell_keys(&with), cell_keys(&without));
        // Pruning must have dismissed at least one bit-string in this richly
        // overlapping configuration.
        assert!(s1.bitstrings_pruned > 0);
        assert!(s1.subtrees_pruned > 0);
        assert_eq!(s2.subtrees_pruned, 0);
    }

    #[test]
    fn witness_cache_matches_lp_only_cell_for_cell() {
        // The witness fast path must not change the cell set, and must save
        // LP calls on a richly overlapping leaf.
        let bounds = BoundingBox::unit(2);
        let partial = rich_partial();
        for pair_pruning in [true, false] {
            let mut s_wit = QueryStats::default();
            let mut s_lp = QueryStats::default();
            let with_witness = process_leaf(
                &bounds,
                &partial,
                &simplex2(),
                usize::MAX,
                3,
                &CellEnumOptions {
                    pair_pruning,
                    witness_cache: true,
                    threads: 1,
                },
                &mut s_wit,
            );
            let lp_only = process_leaf(
                &bounds,
                &partial,
                &simplex2(),
                usize::MAX,
                3,
                &CellEnumOptions {
                    pair_pruning,
                    witness_cache: false,
                    threads: 1,
                },
                &mut s_lp,
            );
            assert_eq!(
                cell_keys(&with_witness),
                cell_keys(&lp_only),
                "pair_pruning={pair_pruning}"
            );
            assert_eq!(s_wit.cells_tested, s_lp.cells_tested);
            assert_eq!(s_lp.witness_hits, 0);
            assert!(
                s_wit.lp_calls <= s_lp.lp_calls,
                "witness cache must never add LP calls: {} vs {}",
                s_wit.lp_calls,
                s_lp.lp_calls
            );
            assert_eq!(s_lp.lp_calls, s_wit.lp_calls + s_wit.witness_hits);
            if pair_pruning {
                // The pair-condition LPs seed the pool, so some candidate
                // must be answered without an LP on this rich leaf.
                assert!(
                    s_wit.witness_hits > 0,
                    "expected witness hits with pair pruning on"
                );
            }
            // Every witness of every cell must be strictly interior.
            for c in &with_witness {
                assert!(c.region.contains(&c.region.witness.clone()));
            }
        }
    }

    #[test]
    fn enumerate_cells_against_direct_point_counts() {
        // Build a quad-tree over a handful of half-spaces and verify that the
        // minimum cell order reported by enumerate_cells matches a dense grid
        // scan of the permissible simplex.
        let mut qt = HalfSpaceQuadTree::new(2);
        let hss = [
            hs(&[1.0, 0.1], 0.45),
            hs(&[-0.2, 1.0], 0.35),
            hs(&[-1.0, -1.0], -0.9),
            hs(&[0.7, -1.0], -0.1),
            hs(&[1.0, 1.0], 0.75),
        ];
        for h in &hss {
            qt.insert(h.clone());
        }
        let mut stats = QueryStats::default();
        let (cells, _) = enumerate_cells(&qt, None, 0, &opts(), &mut stats);
        assert!(!cells.is_empty());
        let min_order = cells.iter().map(|c| c.order).min().unwrap();
        // Dense grid reference.
        let mut grid_min = usize::MAX;
        let steps = 200;
        for i in 1..steps {
            for j in 1..steps {
                let q = [i as f64 / steps as f64, j as f64 / steps as f64];
                if q[0] + q[1] >= 1.0 {
                    continue;
                }
                let count = hss.iter().filter(|h| h.contains(&q)).count();
                grid_min = grid_min.min(count);
            }
        }
        assert_eq!(min_order, grid_min);
        // Every reported min-order cell's witness must indeed see `min_order`
        // half-spaces.
        for c in cells.iter().filter(|c| c.order == min_order) {
            let w = &c.region.witness;
            let count = hss.iter().filter(|h| h.contains(w)).count();
            assert_eq!(count, min_order);
        }
        assert!(stats.leaves_processed > 0);
        assert!(stats.cells_tested > 0);
        assert!(stats.lp_calls > 0);
        assert!(stats.lp_calls + stats.witness_hits >= stats.cells_tested);
    }

    #[test]
    fn parallel_enumeration_matches_sequential() {
        // A richly overlapping arrangement split across several quad-tree
        // leaves: sharding the frontier must not change the cell set, for
        // both the fixed-cap and the adaptive-cap paths.
        let mut qt = HalfSpaceQuadTree::new(2);
        let mut v = 0.31f64;
        for _ in 0..24 {
            v = (v * 997.0).fract();
            let a = v * 2.0 - 1.0;
            v = (v * 997.0).fract();
            let b = v * 2.0 - 1.0;
            v = (v * 997.0).fract();
            qt.insert(hs(&[a, b], v * 0.8 - 0.2));
        }
        for hard_limit in [None, Some(3)] {
            let mut seq_stats = QueryStats::default();
            let (seq, seq_limit) = enumerate_cells(&qt, hard_limit, 1, &opts(), &mut seq_stats);
            let mut par_stats = QueryStats::default();
            let par_opts = CellEnumOptions {
                threads: 4,
                ..opts()
            };
            let (par, par_limit) = enumerate_cells(&qt, hard_limit, 1, &par_opts, &mut par_stats);
            assert_eq!(seq_limit, par_limit, "hard_limit {hard_limit:?}");
            let key = |c: &ArrangementCell| {
                let mut full = c.full.clone();
                full.sort_unstable();
                (c.order, full, c.inside_partial.clone())
            };
            let mut a: Vec<_> = seq.iter().map(key).collect();
            let mut b: Vec<_> = par.iter().map(key).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "hard_limit {hard_limit:?}");
            assert!(par_stats.leaves_processed >= seq_stats.leaves_processed);
        }
    }

    #[test]
    fn lp_only_enumeration_matches_witness_enumeration_across_leaves() {
        // The whole-arrangement enumeration agrees cell-for-cell between the
        // witness fast path and the LP-only path, and the fast path issues
        // strictly fewer LPs.
        let mut qt = HalfSpaceQuadTree::new(2);
        let mut v = 0.47f64;
        for _ in 0..20 {
            v = (v * 997.0).fract();
            let a = v * 2.0 - 1.0;
            v = (v * 997.0).fract();
            let b = v * 2.0 - 1.0;
            v = (v * 997.0).fract();
            qt.insert(hs(&[a, b], v * 0.8 - 0.2));
        }
        let mut s_wit = QueryStats::default();
        let mut s_lp = QueryStats::default();
        let (wit, wl) = enumerate_cells(&qt, None, 1, &opts(), &mut s_wit);
        let (lp, ll) = enumerate_cells(&qt, None, 1, &lp_only(), &mut s_lp);
        assert_eq!(wl, ll);
        let key = |c: &ArrangementCell| {
            let mut full = c.full.clone();
            full.sort_unstable();
            (c.order, full, c.inside_partial.clone())
        };
        let mut a: Vec<_> = wit.iter().map(key).collect();
        let mut b: Vec<_> = lp.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(
            s_wit.lp_calls < s_lp.lp_calls,
            "witness cache must reduce LP calls ({} vs {})",
            s_wit.lp_calls,
            s_lp.lp_calls
        );
        assert!(s_wit.witness_hits > 0);
    }

    #[test]
    fn enumerate_cells_hard_limit_returns_all_below() {
        let mut qt = HalfSpaceQuadTree::new(2);
        // Three nested half-spaces produce cells of orders 0..=3 along the
        // diagonal (intersected with the simplex).
        qt.insert(hs(&[1.0, 1.0], 0.3));
        qt.insert(hs(&[1.0, 1.0], 0.5));
        qt.insert(hs(&[1.0, 1.0], 0.7));
        // With a hard limit of 2 and tau = 2, every cell within 2 of each
        // leaf's minimum and with order ≤ 2 must be reported.
        let mut stats = QueryStats::default();
        let (cells, limit) = enumerate_cells(&qt, Some(2), 2, &opts(), &mut stats);
        assert_eq!(limit, 2);
        let orders: std::collections::BTreeSet<usize> = cells.iter().map(|c| c.order).collect();
        assert!(orders.contains(&0) && orders.contains(&1) && orders.contains(&2));
        assert!(!orders.contains(&3));
        // With tau = 0 only the minimum-order cells survive.
        let mut stats = QueryStats::default();
        let (cells, _) = enumerate_cells(&qt, None, 0, &opts(), &mut stats);
        assert!(cells.iter().all(|c| c.order == 0));
    }
}
