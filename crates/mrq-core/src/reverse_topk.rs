//! Monochromatic reverse top-k (two dimensions) and the influence score.
//!
//! The closest related query to MaxRank (paper, Section 2; Vlachou et al.
//! \[19\]) asks the *opposite* question: given a fixed `k`, report the parts of
//! the query space where the focal record belongs to the top-k result.  The
//! original solution exists only for `d = 2`; we implement it here with the
//! same score-line sweep FCA uses, both as a baseline from the related work
//! and because combined with MaxRank it answers useful product questions
//! ("for how large a share of preferences is my option in the user's
//! shortlist of k?").

use crate::result::ResultRegion;
use mrq_data::{Dataset, RecordId};
use mrq_geometry::{interval_region, EPS};
use mrq_index::RStarTree;

/// The result of a monochromatic reverse top-k query in two dimensions.
#[derive(Debug, Clone)]
pub struct ReverseTopK {
    /// The `k` the query was evaluated for.
    pub k: usize,
    /// Intervals of the reduced query space (`q_1`) where the focal record is
    /// in the top-k, each with the exact order attained there.
    pub regions: Vec<ResultRegion>,
    /// Total length of those intervals — the fraction of the (1-d reduced)
    /// preference space where the record makes the shortlist.  Vlachou et
    /// al. use this as an "influence" measure.
    pub influence: f64,
}

/// Evaluates the monochromatic reverse top-k query for a focal record of a
/// two-dimensional dataset.
pub fn reverse_top_k(
    data: &Dataset,
    tree: &RStarTree,
    focal_id: RecordId,
    k: usize,
) -> ReverseTopK {
    let p = data.record(focal_id).to_vec();
    reverse_top_k_point(data, tree, &p, Some(focal_id), k)
}

/// Evaluates the monochromatic reverse top-k query for an arbitrary focal
/// point of a two-dimensional dataset.
///
/// # Panics
/// Panics if the dataset is not two-dimensional or `k` is zero.
pub fn reverse_top_k_point(
    data: &Dataset,
    tree: &RStarTree,
    p: &[f64],
    focal_id: Option<RecordId>,
    k: usize,
) -> ReverseTopK {
    assert!(k >= 1, "k must be positive");
    assert_eq!(
        data.dims(),
        2,
        "the monochromatic reverse top-k solution is 2-d only"
    );
    // Sweep identical to FCA, but instead of keeping the minimum order we keep
    // every interval whose order is ≤ k.
    let dominators = tree.count_dominators(p, focal_id) as usize;
    let incomparable = tree.incomparable_ids(p, focal_id);

    let mut always_above = 0usize;
    let mut initial = 0usize;
    let mut events: Vec<(f64, i64)> = Vec::new();
    for &id in &incomparable {
        let r = data.record(id);
        let c = r[0] - r[1] - p[0] + p[1];
        let b = p[1] - r[1];
        if c.abs() < EPS {
            if b < -EPS {
                always_above += 1;
            }
            continue;
        }
        let t = b / c;
        if c > 0.0 {
            if t <= EPS {
                always_above += 1;
            } else if t < 1.0 - EPS {
                events.push((t, 1));
            }
        } else if t >= 1.0 - EPS {
            always_above += 1;
        } else if t > EPS {
            initial += 1;
            events.push((t, -1));
        }
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    let mut boundaries = vec![0.0];
    boundaries.extend(events.iter().map(|(t, _)| *t));
    boundaries.push(1.0);
    let mut orders = Vec::with_capacity(events.len() + 1);
    let mut current = dominators + always_above + initial;
    orders.push(current);
    for (_, delta) in &events {
        current = (current as i64 + delta) as usize;
        orders.push(current);
    }

    let mut regions = Vec::new();
    let mut influence = 0.0;
    for (i, &order) in orders.iter().enumerate() {
        let lo = boundaries[i];
        let hi = boundaries[i + 1];
        if hi - lo < 10.0 * EPS {
            continue;
        }
        let rank = order + 1;
        if rank <= k {
            influence += hi - lo;
            regions.push(ResultRegion {
                region: interval_region(lo, hi),
                order: rank,
                outranking: Vec::new(),
            });
        }
    }
    ReverseTopK {
        k,
        regions,
        influence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrq_data::{synthetic, Distribution};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn figure1() -> (Dataset, RStarTree) {
        let data = Dataset::from_rows(
            2,
            &[
                vec![0.8, 0.9],
                vec![0.2, 0.7],
                vec![0.9, 0.4],
                vec![0.7, 0.2],
                vec![0.4, 0.3],
                vec![0.5, 0.5],
            ],
        );
        let tree = RStarTree::bulk_load(&data);
        (data, tree)
    }

    #[test]
    fn reverse_top2_of_p_is_empty_top3_is_not() {
        // Section 2 of the paper discusses exactly this: p = (0.5, 0.5) is in
        // no top-2 result, but is in some top-3 results.
        let (data, tree) = figure1();
        let r2 = reverse_top_k(&data, &tree, 5, 2);
        assert!(r2.regions.is_empty());
        assert_eq!(r2.influence, 0.0);
        let r3 = reverse_top_k(&data, &tree, 5, 3);
        assert!(!r3.regions.is_empty());
        assert!(r3.influence > 0.0);
        // Consistency with MaxRank: k* = 3 means the reverse top-(k*-1) set is
        // empty and the reverse top-k* set is not.
        let maxrank = crate::fca::run(&data, &tree, 5, 0);
        assert_eq!(maxrank.k_star, 3);
    }

    #[test]
    fn regions_match_plain_order_evaluation() {
        let mut rng = StdRng::seed_from_u64(12);
        let data = synthetic::generate(Distribution::Independent, 200, 2, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let focal = 33u32;
        let res = reverse_top_k(&data, &tree, focal, 10);
        let p = data.record(focal);
        for region in &res.regions {
            let q = region.representative_query();
            let order = data.order_of(p, &q);
            assert_eq!(order, region.order);
            assert!(order <= 10);
        }
        // Points outside every region must not be in the top-10.
        for _ in 0..200 {
            let q1: f64 = rng.gen_range(0.001..0.999);
            let covered = res
                .regions
                .iter()
                .any(|r| q1 > r.region.bounds.lo[0] && q1 < r.region.bounds.hi[0]);
            if !covered {
                let order = data.order_of(p, &[q1, 1.0 - q1]);
                assert!(
                    order > 10,
                    "q1 {q1} gives order {order} but was not reported"
                );
            }
        }
    }

    #[test]
    fn influence_grows_with_k() {
        let mut rng = StdRng::seed_from_u64(13);
        let data = synthetic::generate(Distribution::AntiCorrelated, 150, 2, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let mut prev = 0.0;
        for k in [1usize, 2, 5, 10, 20] {
            let res = reverse_top_k(&data, &tree, 7, k);
            assert!(res.influence >= prev - 1e-12);
            assert!(res.influence <= 1.0 + 1e-9);
            prev = res.influence;
        }
    }

    #[test]
    fn influence_positive_iff_k_at_least_kstar() {
        let mut rng = StdRng::seed_from_u64(14);
        let data = synthetic::generate(Distribution::Independent, 120, 2, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let focal = 11u32;
        let maxrank = crate::fca::run(&data, &tree, focal, 0);
        let below = reverse_top_k(&data, &tree, focal, maxrank.k_star.saturating_sub(1).max(1));
        let at = reverse_top_k(&data, &tree, focal, maxrank.k_star);
        if maxrank.k_star > 1 {
            assert!(below.regions.is_empty());
        }
        assert!(!at.regions.is_empty());
    }
}
