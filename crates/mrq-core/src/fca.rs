//! FCA — the first-cut algorithm for two-dimensional data (paper, Section 4).
//!
//! With `d = 2` the score of every record is a line in `q_1`; the order of
//! the focal record changes only at the intersections of its score line with
//! the score lines of the incomparable records.  FCA computes all those
//! intersections, sorts them, sweeps the `q_1` domain and reports the
//! interval(s) with the smallest order (or within `τ` of it for iMaxRank).
//!
//! Dominators and dominees are pruned exactly as in BA/AA; the dominator
//! count is obtained from the aggregate R\*-tree.

use crate::result::{MaxRankResult, QueryStats, ResultRegion};
use mrq_data::{Dataset, RecordId};
use mrq_geometry::{halfline_for_record, interval_region, HalfLine2d, EPS};
use mrq_index::RStarTree;
use std::time::Instant;

/// Runs FCA for a focal record identified by id.
pub fn run(data: &Dataset, tree: &RStarTree, focal_id: RecordId, tau: usize) -> MaxRankResult {
    let p = data.record(focal_id).to_vec();
    run_point(data, tree, &p, Some(focal_id), tau)
}

/// Runs FCA for an arbitrary focal point (which need not belong to the
/// dataset).
///
/// # Panics
/// Panics if the dataset is not two-dimensional.
pub fn run_point(
    data: &Dataset,
    tree: &RStarTree,
    p: &[f64],
    focal_id: Option<RecordId>,
    tau: usize,
) -> MaxRankResult {
    assert_eq!(
        data.dims(),
        2,
        "FCA is defined for two-dimensional data only"
    );
    assert_eq!(p.len(), 2);
    let start = Instant::now();
    // Delta-based accounting: no reset, so concurrent queries sharing this
    // tree cannot zero each other's counter mid-flight (they may still
    // inflate each other's delta; see IoStats).
    let io_base = tree.io().reads();
    let mut stats = QueryStats::default();

    let dominators = tree.count_dominators(p, focal_id) as usize;
    stats.dominators = dominators;
    let incomparable = tree.incomparable_ids(p, focal_id);

    // Build the sweep events.  Each incomparable record wins on an interval of
    // q1 that is either (t, 1), (0, t), all of (0, 1), or empty.
    let mut always_above = 0usize;
    let mut initial = 0usize; // winners just right of q1 = 0
    let mut events: Vec<(f64, i64)> = Vec::with_capacity(incomparable.len());
    let mut interval_records: Vec<(f64, bool, RecordId)> = Vec::new(); // (t, wins_right, id)
    for &id in &incomparable {
        match halfline_for_record(data.record(id), p) {
            HalfLine2d::AlwaysAbove => always_above += 1,
            HalfLine2d::NeverAbove => {}
            HalfLine2d::WinsRight(t) => {
                events.push((t, 1));
                interval_records.push((t, true, id));
            }
            HalfLine2d::WinsLeft(t) => {
                initial += 1;
                events.push((t, -1));
                interval_records.push((t, false, id));
            }
        }
    }
    stats.halfspaces_inserted = events.len();

    let base = dominators + always_above;
    if events.is_empty() {
        stats.io_reads = tree.io().reads().saturating_sub(io_base);
        stats.cpu_time = start.elapsed();
        stats.iterations = 1;
        // The order is the same everywhere: base + initial (initial == 0 here).
        return crate::common::trivial_result(2, base, tau, stats);
    }

    events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    // Sweep: interval boundaries are 0, t_1, …, t_m, 1.
    let mut boundaries = Vec::with_capacity(events.len() + 2);
    boundaries.push(0.0);
    boundaries.extend(events.iter().map(|(t, _)| *t));
    boundaries.push(1.0);

    let mut orders = Vec::with_capacity(events.len() + 1);
    let mut current = always_above + initial;
    orders.push(current);
    for (_, delta) in &events {
        current = (current as i64 + delta) as usize;
        orders.push(current);
    }

    let min_order = *orders.iter().min().expect("at least one interval exists");
    let mut regions = Vec::new();
    for (i, &order) in orders.iter().enumerate() {
        let lo = boundaries[i];
        let hi = boundaries[i + 1];
        if hi - lo < 10.0 * EPS {
            continue; // zero-length interval produced by coincident events
        }
        if order > min_order + tau {
            continue;
        }
        let outranking: Vec<RecordId> = interval_records
            .iter()
            .filter(|(t, wins_right, _)| {
                let mid = 0.5 * (lo + hi);
                if *wins_right {
                    mid > *t
                } else {
                    mid < *t
                }
            })
            .map(|(_, _, id)| *id)
            .collect();
        regions.push(ResultRegion {
            region: interval_region(lo, hi),
            order: dominators + order + 1,
            outranking,
        });
    }

    stats.io_reads = tree.io().reads().saturating_sub(io_base);
    stats.cpu_time = start.elapsed();
    stats.iterations = 1;
    stats.cells_tested = orders.len();

    MaxRankResult {
        dims: 2,
        k_star: dominators + min_order + 1,
        tau,
        regions,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> (Dataset, RStarTree) {
        let data = Dataset::from_rows(
            2,
            &[
                vec![0.8, 0.9], // r1 (dominator)
                vec![0.2, 0.7], // r2
                vec![0.9, 0.4], // r3
                vec![0.7, 0.2], // r4
                vec![0.4, 0.3], // r5 (dominee)
                vec![0.5, 0.5], // p itself
            ],
        );
        let tree = RStarTree::bulk_load(&data);
        (data, tree)
    }

    #[test]
    fn paper_running_example() {
        // Section 4 / Figure 2: k* = 3, attained on q1 ∈ (0, 0.2) ∪ (0.4, 0.6).
        let (data, tree) = figure1();
        let res = run(&data, &tree, 5, 0);
        assert_eq!(res.k_star, 3);
        assert_eq!(res.region_count(), 2);
        let mut intervals: Vec<(f64, f64)> = res
            .regions
            .iter()
            .map(|r| (r.region.bounds.lo[0], r.region.bounds.hi[0]))
            .collect();
        intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        assert!((intervals[0].0 - 0.0).abs() < 1e-9 && (intervals[0].1 - 0.2).abs() < 1e-9);
        assert!((intervals[1].0 - 0.4).abs() < 1e-9 && (intervals[1].1 - 0.6).abs() < 1e-9);
        // Validate with the plain dataset order at region witnesses.
        for region in &res.regions {
            let q = region.representative_query();
            assert_eq!(data.order_of(&[0.5, 0.5], &q), 3);
        }
    }

    #[test]
    fn imaxrank_extends_intervals() {
        // With τ = 1 the regions must cover every q1 where the order is ≤ 4,
        // which in Figure 2 is the whole (0, 1) domain.
        let (data, tree) = figure1();
        let res = run(&data, &tree, 5, 1);
        assert_eq!(res.k_star, 3);
        let total: f64 = res
            .regions
            .iter()
            .map(|r| r.region.bounds.hi[0] - r.region.bounds.lo[0])
            .sum();
        assert!((total - 1.0).abs() < 1e-6, "covered {total}");
        assert!(res.regions.iter().all(|r| r.order <= 4));
    }

    #[test]
    fn focal_point_outside_dataset() {
        let (data, tree) = figure1();
        // A clearly dominated point: every other record beats it somewhere,
        // and r1 dominates it outright.
        let res = run_point(&data, &tree, &[0.1, 0.1], None, 0);
        assert!(res.k_star >= 5, "k* = {}", res.k_star);
        // A point dominating everything: k* = 1 everywhere.
        let res = run_point(&data, &tree, &[0.95, 0.95], None, 0);
        assert_eq!(res.k_star, 1);
        assert_eq!(res.region_count(), 1);
    }

    #[test]
    fn order_at_witness_matches_region_order() {
        let (data, tree) = figure1();
        for focal in 0..data.len() as u32 {
            let res = run(&data, &tree, focal, 0);
            let p = data.record(focal);
            for region in &res.regions {
                let q = region.representative_query();
                assert_eq!(data.order_of(p, &q), region.order, "focal {focal}");
            }
        }
    }

    #[test]
    fn stats_populated() {
        let (data, tree) = figure1();
        let res = run(&data, &tree, 5, 0);
        assert!(res.stats.io_reads > 0);
        assert_eq!(res.stats.dominators, 1);
        assert_eq!(res.stats.halfspaces_inserted, 3);
        assert_eq!(res.stats.iterations, 1);
    }
}
