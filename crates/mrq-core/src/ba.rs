//! BA — the basic approach for general dimensionality (paper, Section 5).
//!
//! BA reads **every** record incomparable to the focal record, maps each to a
//! half-space of the reduced query space, indexes the half-spaces in the
//! augmented quad-tree and finds the smallest-order cells by processing the
//! quad-tree leaves in increasing `|F_l|` order (Section 5.1), enumerating
//! cells within each surviving leaf by Hamming weight (Section 5.2).
//!
//! BA is exact but reads a large fraction of the dataset; the paper (and our
//! experiments) use it mainly as the baseline that AA is compared against.

use crate::common::{build_result, map_record, trivial_result, HalfSpaceRegistry, MappedHalfSpace};
use crate::result::{MaxRankResult, QueryStats};
use crate::withinleaf::enumerate_cells;
use mrq_data::{Dataset, RecordId};
use mrq_index::RStarTree;
use mrq_quadtree::{HalfSpaceQuadTree, QuadTreeConfig};
use std::time::Instant;

/// Tuning knobs shared by BA and AA.
#[derive(Debug, Clone, Copy)]
pub struct AlgoConfig {
    /// Quad-tree configuration; `None` selects the default for the data
    /// dimensionality.
    pub quadtree: Option<QuadTreeConfig>,
    /// Whether the within-leaf module uses the pairwise containment
    /// conditions of Section 5.2 (subject of an ablation experiment).
    pub pair_pruning: bool,
    /// Whether the within-leaf module proves candidate cells non-empty from
    /// cached witness points before resorting to an LP.  The answer is
    /// identical either way (subject of an ablation experiment).
    pub witness_cache: bool,
    /// Number of threads the within-leaf cell enumeration shards its
    /// candidate-leaf frontier over (1 = sequential).  The answer is
    /// identical for any value; only wall-clock time changes.
    pub threads: usize,
}

impl Default for AlgoConfig {
    fn default() -> Self {
        Self {
            quadtree: None,
            pair_pruning: true,
            witness_cache: true,
            threads: 1,
        }
    }
}

impl AlgoConfig {
    /// The within-leaf enumeration options this configuration selects.
    pub(crate) fn cell_enum_options(&self) -> crate::withinleaf::CellEnumOptions {
        crate::withinleaf::CellEnumOptions {
            pair_pruning: self.pair_pruning,
            witness_cache: self.witness_cache,
            threads: self.threads.max(1),
        }
    }
}

/// Runs BA for a focal record identified by id.
pub fn run(
    data: &Dataset,
    tree: &RStarTree,
    focal_id: RecordId,
    tau: usize,
    config: &AlgoConfig,
) -> MaxRankResult {
    let p = data.record(focal_id).to_vec();
    run_point(data, tree, &p, Some(focal_id), tau, config)
}

/// Runs BA for an arbitrary focal point.
pub fn run_point(
    data: &Dataset,
    tree: &RStarTree,
    p: &[f64],
    focal_id: Option<RecordId>,
    tau: usize,
    config: &AlgoConfig,
) -> MaxRankResult {
    let d = data.dims();
    assert_eq!(p.len(), d);
    assert!(d >= 2);
    let start = Instant::now();
    // Delta-based accounting: no reset, so concurrent queries sharing this
    // tree cannot zero each other's counter mid-flight (they may still
    // inflate each other's delta; see IoStats).
    let io_base = tree.io().reads();
    let mut stats = QueryStats {
        iterations: 1,
        ..QueryStats::default()
    };

    let dominators = tree.count_dominators(p, focal_id) as usize;
    stats.dominators = dominators;

    // BA's defining characteristic: access every incomparable record.
    let incomparable = tree.incomparable_ids(p, focal_id);

    let qt_config = config
        .quadtree
        .unwrap_or_else(|| QuadTreeConfig::for_reduced_dims(d - 1));
    let mut qt = HalfSpaceQuadTree::with_config(d - 1, qt_config);
    let mut registry = HalfSpaceRegistry::default();
    let mut always_above = 0usize;
    for &id in &incomparable {
        match map_record(data.record(id), p) {
            MappedHalfSpace::Usable(h) => {
                let hid = qt.insert(h);
                registry.push(hid, id);
            }
            MappedHalfSpace::AlwaysAbove => always_above += 1,
            MappedHalfSpace::NeverAbove => {}
        }
    }
    stats.halfspaces_inserted = registry.len();
    let base = dominators + always_above;

    if qt.halfspace_count() == 0 {
        stats.io_reads = tree.io().reads().saturating_sub(io_base);
        stats.cpu_time = start.elapsed();
        return trivial_result(d, base, tau, stats);
    }

    let (cells, _) = enumerate_cells(&qt, None, tau, &config.cell_enum_options(), &mut stats);
    stats.io_reads = tree.io().reads().saturating_sub(io_base);
    let mut result = build_result(d, base, tau, cells, &registry, stats);
    result.stats.cpu_time = start.elapsed();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrq_data::{synthetic, Distribution};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn figure1_3d_like() -> (Dataset, RStarTree) {
        let data = Dataset::from_rows(
            3,
            &[
                vec![0.5, 0.5, 0.5], // 0: focal
                vec![0.9, 0.6, 0.7], // 1: dominator
                vec![0.8, 0.3, 0.6], // 2: incomparable
                vec![0.2, 0.9, 0.4], // 3: incomparable
                vec![0.6, 0.4, 0.9], // 4: incomparable
                vec![0.3, 0.2, 0.1], // 5: dominee
                vec![0.4, 0.8, 0.2], // 6: incomparable
            ],
        );
        let tree = RStarTree::bulk_load(&data);
        (data, tree)
    }

    #[test]
    fn witness_orders_match_dataset() {
        let (data, tree) = figure1_3d_like();
        let res = run(&data, &tree, 0, 0, &AlgoConfig::default());
        assert!(
            res.k_star >= 2,
            "a dominator forces k* ≥ 2, got {}",
            res.k_star
        );
        assert!(!res.regions.is_empty());
        for region in &res.regions {
            let q = region.representative_query();
            assert_eq!(data.order_of(data.record(0), &q), res.k_star);
        }
    }

    #[test]
    fn k_star_bounded_by_sampling_and_achieved_by_witnesses() {
        // Sampling many query vectors gives an upper bound on k* (it can
        // never find a better rank than the true optimum), while the region
        // witnesses certify that k* is actually attainable.  Together the two
        // pin k* from both sides without relying on the sample hitting the
        // (possibly tiny) optimal region.
        let mut rng = StdRng::seed_from_u64(77);
        let data = synthetic::generate(Distribution::Independent, 60, 3, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        for focal in [0u32, 7, 23] {
            let res = run(&data, &tree, focal, 0, &AlgoConfig::default());
            let p = data.record(focal);
            let mut best = usize::MAX;
            for _ in 0..20_000 {
                let mut q: Vec<f64> = (0..3).map(|_| rng.gen::<f64>() + 1e-6).collect();
                let s: f64 = q.iter().sum();
                q.iter_mut().for_each(|x| *x /= s);
                best = best.min(data.order_of(p, &q));
            }
            assert!(
                best >= res.k_star,
                "sampling found {best} < k* {} (focal {focal})",
                res.k_star
            );
            for region in &res.regions {
                let q = region.representative_query();
                assert_eq!(data.order_of(p, &q), res.k_star, "focal {focal}");
            }
        }
    }

    #[test]
    fn imaxrank_regions_cover_slack_orders() {
        let (data, tree) = figure1_3d_like();
        let tau = 2;
        let res = run(&data, &tree, 0, tau, &AlgoConfig::default());
        assert!(res
            .regions
            .iter()
            .all(|r| r.order >= res.k_star && r.order <= res.k_star + tau));
        // Every region's witness must achieve exactly the region's order.
        for region in &res.regions {
            let q = region.representative_query();
            assert_eq!(data.order_of(data.record(0), &q), region.order);
        }
        // iMaxRank returns at least as many regions as MaxRank.
        let plain = run(&data, &tree, 0, 0, &AlgoConfig::default());
        assert!(res.region_count() >= plain.region_count());
    }

    #[test]
    fn dominating_focal_point_is_rank_one() {
        let (data, tree) = figure1_3d_like();
        let res = run_point(
            &data,
            &tree,
            &[0.99, 0.99, 0.99],
            None,
            0,
            &AlgoConfig::default(),
        );
        assert_eq!(res.k_star, 1);
        assert_eq!(res.region_count(), 1);
    }

    #[test]
    fn pair_pruning_does_not_change_answer() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = synthetic::generate(Distribution::AntiCorrelated, 80, 3, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let with = run(
            &data,
            &tree,
            3,
            1,
            &AlgoConfig {
                pair_pruning: true,
                ..AlgoConfig::default()
            },
        );
        let without = run(
            &data,
            &tree,
            3,
            1,
            &AlgoConfig {
                pair_pruning: false,
                ..AlgoConfig::default()
            },
        );
        assert_eq!(with.k_star, without.k_star);
        assert_eq!(with.region_count(), without.region_count());
    }

    #[test]
    fn threaded_enumeration_does_not_change_answer() {
        let mut rng = StdRng::seed_from_u64(9);
        let data = synthetic::generate(Distribution::AntiCorrelated, 90, 3, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        for focal in [2u32, 31] {
            for tau in [0usize, 2] {
                let seq = run(&data, &tree, focal, tau, &AlgoConfig::default());
                let par = run(
                    &data,
                    &tree,
                    focal,
                    tau,
                    &AlgoConfig {
                        threads: 4,
                        ..AlgoConfig::default()
                    },
                );
                assert_eq!(seq.k_star, par.k_star, "focal {focal} tau {tau}");
                assert_eq!(
                    seq.region_count(),
                    par.region_count(),
                    "focal {focal} tau {tau}"
                );
                let aa_seq = crate::aa::run(&data, &tree, focal, tau, &AlgoConfig::default());
                let aa_par = crate::aa::run(
                    &data,
                    &tree,
                    focal,
                    tau,
                    &AlgoConfig {
                        threads: 4,
                        ..AlgoConfig::default()
                    },
                );
                assert_eq!(aa_seq.k_star, aa_par.k_star, "AA focal {focal} tau {tau}");
                assert_eq!(
                    aa_seq.region_count(),
                    aa_par.region_count(),
                    "AA focal {focal} tau {tau}"
                );
            }
        }
    }

    #[test]
    fn quadtree_config_does_not_change_answer() {
        let mut rng = StdRng::seed_from_u64(6);
        let data = synthetic::generate(Distribution::Independent, 70, 4, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let default_cfg = run(&data, &tree, 11, 0, &AlgoConfig::default());
        let coarse = run(
            &data,
            &tree,
            11,
            0,
            &AlgoConfig {
                quadtree: Some(QuadTreeConfig {
                    split_threshold: 20,
                    max_depth: 3,
                }),
                ..AlgoConfig::default()
            },
        );
        assert_eq!(default_cfg.k_star, coarse.k_star);
    }
}
