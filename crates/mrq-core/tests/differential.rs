//! Differential test harness: one table-driven runner that pits every
//! applicable algorithm (FCA / BA / AA / AA2D) against the reference oracles
//! (`oracle::exhaustive`, `oracle::sampled_min_order`) and against each other,
//! across seeded IND / COR / ANTI datasets, τ ∈ {0, 2}, and both focal kinds
//! (a record of the dataset, and an arbitrary "what-if" point).
//!
//! This replaces the ad-hoc per-module `matches_fca_*` tests: every algorithm
//! pair goes through the same checks, so a divergence anywhere in the stack
//! (sweep, quad-tree, within-leaf enumeration, skyline subsumption) fails
//! with a case label identifying dataset, focal and τ.
//!
//! Checks per case:
//!
//! * every algorithm reports the same `k*`;
//! * grid ground truth: at a dense grid of reduced query vectors, each
//!   algorithm's reported coverage (`order_at`) must equal the brute-force
//!   order whenever that order is within `k* + τ`, and report nothing there
//!   otherwise (grid points within numerical tolerance of a region boundary
//!   are skipped — regions are open sets);
//! * `oracle::exhaustive` (small inputs only) agrees on `k*`;
//! * `oracle::sampled_min_order` never beats `k*` (it is an upper bound);
//! * every region's representative query achieves exactly the region's
//!   order, and orders stay within `[k*, k* + τ]`;
//! * skyband cross-check (`mrq_index::k_skyband_incomparable`): a record
//!   listed as outranking inside a region of rank `k` is accompanied there by
//!   all of its incomparable dominators, so it must belong to the
//!   `(k − |D⁺| − 1)`-skyband of the incomparable records.

use mrq_core::oracle;
use mrq_core::{Algorithm, MaxRankConfig, MaxRankQuery, MaxRankResult};
use mrq_data::{synthetic, Dataset, Distribution};
use mrq_index::{k_skyband_incomparable, RStarTree};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashSet;

/// Which focal the case evaluates.
#[derive(Debug, Clone, Copy)]
enum Focal {
    /// A record of the dataset, picked among the best-ranked ones so the
    /// exhaustive oracle stays tractable (its cost is combinatorial in `k*`).
    WellRankedRecord(usize),
    /// An arbitrary point that does not belong to the dataset.
    Point([f64; 2]),
}

struct Case {
    label: &'static str,
    dist: Distribution,
    n: usize,
    d: usize,
    seed: u64,
    tau: usize,
    focal: Focal,
    /// Run the exhaustive oracle (exponential — small inputs only).
    exhaustive: bool,
}

const CASES: &[Case] = &[
    // --- 2-d: all four algorithms + both oracles ---
    Case {
        label: "ind-2d-record-tau0",
        dist: Distribution::Independent,
        n: 50,
        d: 2,
        seed: 101,
        tau: 0,
        focal: Focal::WellRankedRecord(2),
        exhaustive: true,
    },
    Case {
        label: "cor-2d-record-tau0",
        dist: Distribution::Correlated,
        n: 50,
        d: 2,
        seed: 102,
        tau: 0,
        focal: Focal::WellRankedRecord(1),
        exhaustive: true,
    },
    Case {
        label: "anti-2d-record-tau0",
        dist: Distribution::AntiCorrelated,
        n: 50,
        d: 2,
        seed: 103,
        tau: 0,
        focal: Focal::WellRankedRecord(3),
        exhaustive: true,
    },
    Case {
        label: "ind-2d-record-tau2",
        dist: Distribution::Independent,
        n: 45,
        d: 2,
        seed: 104,
        tau: 2,
        focal: Focal::WellRankedRecord(0),
        exhaustive: true,
    },
    Case {
        label: "anti-2d-record-tau2",
        dist: Distribution::AntiCorrelated,
        n: 45,
        d: 2,
        seed: 105,
        tau: 2,
        focal: Focal::WellRankedRecord(2),
        exhaustive: true,
    },
    Case {
        label: "ind-2d-point-tau0",
        dist: Distribution::Independent,
        n: 50,
        d: 2,
        seed: 106,
        tau: 0,
        focal: Focal::Point([0.72, 0.55]),
        exhaustive: true,
    },
    Case {
        label: "cor-2d-point-tau2",
        dist: Distribution::Correlated,
        n: 45,
        d: 2,
        seed: 107,
        tau: 2,
        focal: Focal::Point([0.6, 0.62]),
        exhaustive: true,
    },
    // --- 2-d at a scale the exhaustive oracle cannot reach: the algorithms
    // (and the sampling oracle) still cross-check each other ---
    Case {
        label: "ind-2d-record-tau0-large",
        dist: Distribution::Independent,
        n: 900,
        d: 2,
        seed: 108,
        tau: 0,
        focal: Focal::WellRankedRecord(40),
        exhaustive: false,
    },
    Case {
        label: "anti-2d-record-tau2-large",
        dist: Distribution::AntiCorrelated,
        n: 900,
        d: 2,
        seed: 109,
        tau: 2,
        focal: Focal::WellRankedRecord(25),
        exhaustive: false,
    },
    Case {
        label: "cor-2d-record-tau0-large",
        dist: Distribution::Correlated,
        n: 900,
        d: 2,
        seed: 110,
        tau: 0,
        focal: Focal::WellRankedRecord(33),
        exhaustive: false,
    },
    // --- 3-d: BA and AA against the oracles ---
    Case {
        label: "ind-3d-record-tau0",
        dist: Distribution::Independent,
        n: 40,
        d: 3,
        seed: 111,
        tau: 0,
        focal: Focal::WellRankedRecord(1),
        exhaustive: true,
    },
    Case {
        label: "anti-3d-record-tau0",
        dist: Distribution::AntiCorrelated,
        n: 35,
        d: 3,
        seed: 112,
        tau: 0,
        focal: Focal::WellRankedRecord(2),
        exhaustive: true,
    },
    Case {
        label: "cor-3d-record-tau2",
        dist: Distribution::Correlated,
        n: 35,
        d: 3,
        seed: 113,
        tau: 2,
        focal: Focal::WellRankedRecord(0),
        exhaustive: true,
    },
    // --- 4-d: BA and AA with the 3-d reduced grid as ground truth (added
    // with the witness-guided within-leaf fast path, whose savings start to
    // matter here) ---
    Case {
        label: "ind-4d-record-tau0",
        dist: Distribution::Independent,
        n: 32,
        d: 4,
        seed: 114,
        tau: 0,
        focal: Focal::WellRankedRecord(1),
        exhaustive: true,
    },
    Case {
        label: "anti-4d-record-tau2",
        dist: Distribution::AntiCorrelated,
        n: 28,
        d: 4,
        seed: 115,
        tau: 2,
        focal: Focal::WellRankedRecord(0),
        exhaustive: true,
    },
];

/// Focal records whose best attainable rank is small keep the exhaustive
/// enumeration tractable.
fn well_ranked_focal(data: &Dataset, rank: usize) -> u32 {
    let mut by_sum: Vec<(f64, u32)> = data
        .iter()
        .map(|(id, r)| (r.iter().sum::<f64>(), id))
        .collect();
    by_sum.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    by_sum[rank].1
}

/// The algorithms applicable at dimensionality `d`.
fn algorithms(d: usize) -> Vec<Algorithm> {
    if d == 2 {
        vec![
            Algorithm::Fca,
            Algorithm::BasicApproach,
            Algorithm::AdvancedApproach,
            Algorithm::AdvancedApproach2D,
        ]
    } else {
        vec![Algorithm::BasicApproach, Algorithm::AdvancedApproach]
    }
}

/// Grid of reduced query vectors strictly inside the permissible simplex.
fn reduced_grid(d: usize) -> Vec<Vec<f64>> {
    match d {
        2 => (1..200).map(|i| vec![i as f64 / 200.0]).collect(),
        3 => {
            let mut grid = Vec::new();
            for i in 1..40 {
                for j in 1..40 {
                    let (q1, q2) = (i as f64 / 40.0, j as f64 / 40.0);
                    if q1 + q2 < 1.0 - 1e-9 {
                        grid.push(vec![q1, q2]);
                    }
                }
            }
            grid
        }
        4 => {
            // Coarser in 3 reduced dimensions: ~12³ candidate points, ~200
            // of which survive the simplex filter.
            let mut grid = Vec::new();
            for i in 1..12 {
                for j in 1..12 {
                    for k in 1..12 {
                        let (q1, q2, q3) = (i as f64 / 12.0, j as f64 / 12.0, k as f64 / 12.0);
                        if q1 + q2 + q3 < 1.0 - 1e-9 {
                            grid.push(vec![q1, q2, q3]);
                        }
                    }
                }
            }
            grid
        }
        other => unimplemented!("no grid for d = {other}"),
    }
}

/// Whether `q` lies within `tol` of any constraint of any reported region —
/// regions are open sets, so containment right at a boundary is undefined.
fn near_region_boundary(res: &MaxRankResult, q: &[f64], tol: f64) -> bool {
    res.regions
        .iter()
        .flat_map(|r| r.region.constraints.iter())
        .any(|h| !h.is_degenerate() && h.normalized().slack(q).abs() < tol)
}

fn check_case(case: &Case) {
    let mut rng = StdRng::seed_from_u64(case.seed);
    let data = synthetic::generate(case.dist, case.n, case.d, &mut rng);
    let tree = RStarTree::bulk_load(&data);
    let engine = MaxRankQuery::new(&data, &tree);
    let (p, focal_id) = match case.focal {
        Focal::WellRankedRecord(rank) => {
            let id = well_ranked_focal(&data, rank);
            (data.record(id).to_vec(), Some(id))
        }
        Focal::Point(p) => (p.to_vec(), None),
    };

    let grid = reduced_grid(case.d);
    let results: Vec<(Algorithm, MaxRankResult)> = algorithms(case.d)
        .into_iter()
        .map(|algo| {
            let config = MaxRankConfig {
                tau: case.tau,
                algorithm: algo,
                ..MaxRankConfig::new()
            };
            let res = match focal_id {
                Some(id) => engine.evaluate(id, &config),
                None => engine.evaluate_point(&p, &config),
            };
            (algo, res)
        })
        .collect();

    let (ref_algo, reference) = &results[0];
    for (algo, res) in &results {
        assert_eq!(
            res.k_star,
            reference.k_star,
            "[{}] {} k* {} vs {} k* {}",
            case.label,
            algo.name(),
            res.k_star,
            ref_algo.name(),
            reference.k_star
        );
        // Grid ground truth: reported coverage must equal the brute-force
        // order wherever that order is within k* + τ, and be absent
        // elsewhere.  This pins down region *extents*, not just k*.
        for q in &grid {
            if near_region_boundary(res, q, 1e-6) {
                continue;
            }
            let full_q = mrq_geometry::reduced::expand_query(q);
            let truth = data.order_of(&p, &full_q);
            let expected = (truth <= res.k_star + case.tau).then_some(truth);
            assert_eq!(
                res.order_at(q),
                expected,
                "[{}] {} at {q:?} (true order {truth}, k* {})",
                case.label,
                algo.name(),
                res.k_star
            );
        }
        // Region-level invariants, algorithm-independent.
        for region in &res.regions {
            assert!(
                region.order >= res.k_star && region.order <= res.k_star + case.tau,
                "[{}] {} region order {} outside [k*, k*+tau]",
                case.label,
                algo.name(),
                region.order
            );
            let q = region.representative_query();
            assert_eq!(
                data.order_of(&p, &q),
                region.order,
                "[{}] {} witness order mismatch",
                case.label,
                algo.name()
            );
        }
        // Skyband cross-check: outranking records of a rank-k region lie in
        // the (k − |D⁺| − 1)-skyband of the incomparable records.
        let dominators = res.stats.dominators;
        for region in &res.regions {
            if region.outranking.is_empty() {
                continue;
            }
            let band_k = region.order.saturating_sub(dominators + 1).max(1);
            let band: HashSet<u32> = k_skyband_incomparable(&tree, &p, focal_id, band_k)
                .into_iter()
                .collect();
            for &rid in &region.outranking {
                assert!(
                    band.contains(&rid),
                    "[{}] {} outranking record {rid} missing from the \
                     {band_k}-skyband of the incomparable records",
                    case.label,
                    algo.name()
                );
            }
        }
    }

    if case.exhaustive {
        let ex = oracle::exhaustive(&data, &p, focal_id, case.tau);
        assert_eq!(
            ex.k_star,
            reference.k_star,
            "[{}] exhaustive oracle k* {} vs {} k* {}",
            case.label,
            ex.k_star,
            ref_algo.name(),
            reference.k_star
        );
    }

    let (sampled, q) = oracle::sampled_min_order(&data, &p, 20_000, &mut rng);
    assert!(
        sampled >= reference.k_star,
        "[{}] sampling found order {sampled} below k* {}",
        case.label,
        reference.k_star
    );
    assert_eq!(data.order_of(&p, &q), sampled, "[{}]", case.label);
}

#[test]
fn all_algorithm_pairs_agree_with_the_oracles() {
    for case in CASES {
        check_case(case);
    }
}

#[test]
fn case_table_covers_the_advertised_matrix() {
    // The table must keep exercising every distribution, both τ values, both
    // focal kinds and both dimensionalities — guard against future shrinkage.
    assert!(CASES.iter().any(|c| c.dist == Distribution::Independent));
    assert!(CASES.iter().any(|c| c.dist == Distribution::Correlated));
    assert!(CASES.iter().any(|c| c.dist == Distribution::AntiCorrelated));
    assert!(CASES.iter().any(|c| c.tau == 0));
    assert!(CASES.iter().any(|c| c.tau == 2));
    assert!(CASES.iter().any(|c| matches!(c.focal, Focal::Point(_))));
    assert!(CASES
        .iter()
        .any(|c| matches!(c.focal, Focal::WellRankedRecord(_))));
    assert!(CASES.iter().any(|c| c.d == 2) && CASES.iter().any(|c| c.d == 3));
    assert!(CASES.iter().any(|c| c.d == 4));
    assert!(CASES.iter().any(|c| c.exhaustive) && CASES.iter().any(|c| !c.exhaustive));
}
