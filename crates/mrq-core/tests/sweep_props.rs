//! Property tests for the 2-d sweep core (FCA's complete sweep and the
//! incremental AA2D event sweep), on randomly seeded independent and
//! anti-correlated data:
//!
//! * the interval boundaries of the complete arrangement are exactly the
//!   sorted half-line breakpoints of the incomparable records (the event
//!   ordering is a permutation of the legacy interval set);
//! * the rank reported for every interval equals the brute-force rank at the
//!   interval midpoint;
//! * the incremental sweep (AA2D) agrees with the complete sweep (FCA) on
//!   `k*` and on every reported interval, for τ ∈ {0, 2}.

use mrq_core::{fca, Algorithm, MaxRankConfig, MaxRankQuery};
use mrq_data::{partition_by_focal, synthetic, Dataset, Distribution};
use mrq_geometry::{halfline_for_record, reduced::expand_query, HalfLine2d};
use mrq_index::RStarTree;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn dist_from_index(i: u32) -> Distribution {
    if i.is_multiple_of(2) {
        Distribution::Independent
    } else {
        Distribution::AntiCorrelated
    }
}

/// The breakpoints of all proper half-lines induced by the records
/// incomparable to `focal`, sorted ascending.
fn brute_force_breakpoints(data: &Dataset, focal: u32) -> Vec<f64> {
    let p = data.record(focal);
    let part = partition_by_focal(data, p, Some(focal));
    let mut ts: Vec<f64> = part
        .incomparable
        .iter()
        .filter_map(|&id| match halfline_for_record(data.record(id), p) {
            HalfLine2d::WinsRight(t) | HalfLine2d::WinsLeft(t) => Some(t),
            _ => None,
        })
        .collect();
    ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FCA with τ large enough to keep every interval: the reported interval
    /// boundaries are a permutation of {0} ∪ breakpoints ∪ {1}, and each
    /// interval's order is the brute-force rank at its midpoint.
    #[test]
    fn complete_sweep_intervals_match_brute_force(
        seed in any::<u64>(),
        n in 20usize..160,
        dist_idx in any::<u32>(),
        focal_sel in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = synthetic::generate(dist_from_index(dist_idx), n, 2, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let focal = (focal_sel % data.len() as u64) as u32;
        let p = data.record(focal);
        // τ = n: no interval is filtered, the complete arrangement is visible.
        let res = fca::run(&data, &tree, focal, data.len());

        // Interval boundaries = sorted breakpoints (plus the domain ends).
        let expected = brute_force_breakpoints(&data, focal);
        let mut intervals: Vec<(f64, f64)> = res
            .regions
            .iter()
            .map(|r| (r.region.bounds.lo[0], r.region.bounds.hi[0]))
            .collect();
        intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        prop_assert_eq!(intervals.len(), expected.len() + 1, "interval count");
        let mut boundaries: Vec<f64> = intervals.iter().map(|(lo, _)| *lo).collect();
        boundaries.push(intervals.last().unwrap().1);
        prop_assert!((boundaries[0]).abs() < 1e-12, "first boundary is 0");
        prop_assert!((boundaries[boundaries.len() - 1] - 1.0).abs() < 1e-12);
        for (got, want) in boundaries[1..boundaries.len() - 1].iter().zip(&expected) {
            prop_assert!((got - want).abs() < 1e-9, "boundary {got} vs breakpoint {want}");
        }
        // Adjacent intervals must share their boundary (no gaps, no overlap).
        for w in intervals.windows(2) {
            prop_assert!((w[0].1 - w[1].0).abs() < 1e-9);
        }

        // Every interval's order is the brute-force rank at its midpoint.
        for region in &res.regions {
            let mid = 0.5 * (region.region.bounds.lo[0] + region.region.bounds.hi[0]);
            let q = expand_query(&[mid]);
            prop_assert_eq!(data.order_of(p, &q), region.order);
        }
    }

    /// The incremental event sweep (AA2D) agrees with the complete sweep
    /// (FCA) on k* and on every reported interval, and its own midpoints
    /// match the brute-force rank.
    #[test]
    fn incremental_sweep_matches_complete_sweep(
        seed in any::<u64>(),
        n in 20usize..160,
        dist_idx in any::<u32>(),
        focal_sel in any::<u64>(),
        tau_sel in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = synthetic::generate(dist_from_index(dist_idx), n, 2, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let focal = (focal_sel % data.len() as u64) as u32;
        let p = data.record(focal);
        let tau = if tau_sel { 2 } else { 0 };
        let engine = MaxRankQuery::new(&data, &tree);
        let config = MaxRankConfig::with_tau(tau);
        let aa2d = engine.evaluate(
            focal,
            &config.with_algorithm(Algorithm::AdvancedApproach2D),
        );
        let fca = engine.evaluate(focal, &config.with_algorithm(Algorithm::Fca));

        prop_assert_eq!(aa2d.k_star, fca.k_star);
        prop_assert_eq!(aa2d.region_count(), fca.region_count());
        let key = |r: &mrq_core::ResultRegion| {
            (
                (r.region.bounds.lo[0] * 1e9).round() as i64,
                (r.region.bounds.hi[0] * 1e9).round() as i64,
                r.order,
            )
        };
        let mut a: Vec<_> = aa2d.regions.iter().map(key).collect();
        let mut b: Vec<_> = fca.regions.iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "interval sets differ");

        for region in &aa2d.regions {
            let mid = 0.5 * (region.region.bounds.lo[0] + region.region.bounds.hi[0]);
            let q = expand_query(&[mid]);
            prop_assert_eq!(data.order_of(p, &q), region.order);
        }
    }
}
