//! Differential property tests for the witness-guided within-leaf fast path
//! (PR 5): the witness-cache enumeration and the LP-only enumeration must
//! agree **cell for cell** — same `k*`, same regions (order + outranking
//! set), same coverage at every grid point — across the advertised matrix
//! FCA / BA / AA × d ∈ {2, 3, 4} × τ ∈ {0, 2}, and the fast path must never
//! issue *more* LPs than the LP-only path.
//!
//! A proptest sweep then hammers BA vs AA with both knob settings on random
//! seeds/focals, asserting the four evaluations agree pairwise.

use mrq_core::{Algorithm, MaxRankConfig, MaxRankQuery, MaxRankResult};
use mrq_data::{synthetic, Distribution};
use mrq_index::RStarTree;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// Canonical fingerprint of a result: `k*` plus the sorted multiset of
/// `(order, sorted outranking ids)` region keys.
fn fingerprint(res: &MaxRankResult) -> (usize, Vec<(usize, Vec<u32>)>) {
    let mut regions: Vec<(usize, Vec<u32>)> = res
        .regions
        .iter()
        .map(|r| {
            let mut ids = r.outranking.clone();
            ids.sort_unstable();
            (r.order, ids)
        })
        .collect();
    regions.sort();
    (res.k_star, regions)
}

/// A modest grid of reduced query vectors strictly inside the simplex.
fn grid(d: usize) -> Vec<Vec<f64>> {
    let steps = match d {
        2 => 64,
        3 => 16,
        _ => 8,
    };
    let dr = d - 1;
    let mut out = Vec::new();
    let mut idx = vec![1usize; dr];
    loop {
        let q: Vec<f64> = idx.iter().map(|&i| i as f64 / steps as f64).collect();
        if q.iter().sum::<f64>() < 1.0 - 1e-9 {
            out.push(q);
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            idx[pos] += 1;
            if idx[pos] < steps {
                break;
            }
            idx[pos] = 1;
            pos += 1;
            if pos == dr {
                return out;
            }
        }
    }
}

#[test]
fn witness_cache_is_answer_invariant_across_the_matrix() {
    for d in [2usize, 3, 4] {
        let algorithms: &[Algorithm] = if d == 2 {
            &[
                Algorithm::Fca,
                Algorithm::BasicApproach,
                Algorithm::AdvancedApproach,
            ]
        } else {
            &[Algorithm::BasicApproach, Algorithm::AdvancedApproach]
        };
        let n = match d {
            2 => 70,
            3 => 55,
            _ => 40,
        };
        for (di, dist) in [Distribution::Independent, Distribution::AntiCorrelated]
            .into_iter()
            .enumerate()
        {
            let mut rng = StdRng::seed_from_u64(5_000 + d as u64 * 10 + di as u64);
            let data = synthetic::generate(dist, n, d, &mut rng);
            let tree = RStarTree::bulk_load(&data);
            let engine = MaxRankQuery::new(&data, &tree);
            // A well-ranked focal keeps high-d enumeration frontiers shallow.
            let focal = data
                .iter()
                .max_by(|a, b| {
                    let sa: f64 = a.1.iter().sum();
                    let sb: f64 = b.1.iter().sum();
                    sa.partial_cmp(&sb).unwrap().then(b.0.cmp(&a.0))
                })
                .map(|(id, _)| id)
                .unwrap();
            for tau in [0usize, 2] {
                for &algo in algorithms {
                    let label = format!("{} d={d} {dist:?} tau={tau}", algo.name());
                    let with = engine.evaluate(
                        focal,
                        &MaxRankConfig {
                            tau,
                            algorithm: algo,
                            witness_cache: true,
                            ..MaxRankConfig::new()
                        },
                    );
                    let without = engine.evaluate(
                        focal,
                        &MaxRankConfig {
                            tau,
                            algorithm: algo,
                            witness_cache: false,
                            ..MaxRankConfig::new()
                        },
                    );
                    assert_eq!(
                        fingerprint(&with),
                        fingerprint(&without),
                        "cell sets diverged [{label}]"
                    );
                    // Identical candidate work, answered with fewer LPs.
                    assert_eq!(
                        with.stats.cells_tested, without.stats.cells_tested,
                        "{label}"
                    );
                    assert_eq!(without.stats.witness_hits, 0, "{label}");
                    assert_eq!(
                        without.stats.lp_calls,
                        with.stats.lp_calls + with.stats.witness_hits,
                        "every witness hit must replace exactly one LP [{label}]"
                    );
                    // Coverage agrees pointwise, not just as a fingerprint.
                    for q in grid(d) {
                        assert_eq!(
                            with.order_at(&q),
                            without.order_at(&q),
                            "coverage diverged at {q:?} [{label}]"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn witness_cache_saves_lp_calls_somewhere_in_the_matrix() {
    // The invariance test above allows hits to be zero case-by-case (tiny
    // leaves may never reach weight 2); in aggregate across the matrix the
    // cache must fire and must strictly reduce LP calls.
    let mut total_hits = 0usize;
    let mut lp_with = 0usize;
    let mut lp_without = 0usize;
    for d in [3usize, 4] {
        let mut rng = StdRng::seed_from_u64(9_100 + d as u64);
        let data = synthetic::generate(Distribution::AntiCorrelated, 60, d, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let engine = MaxRankQuery::new(&data, &tree);
        for focal in [0u32, 11, 23] {
            for witness_cache in [true, false] {
                let res = engine.evaluate(
                    focal,
                    &MaxRankConfig {
                        tau: 1,
                        algorithm: Algorithm::AdvancedApproach,
                        witness_cache,
                        ..MaxRankConfig::new()
                    },
                );
                if witness_cache {
                    total_hits += res.stats.witness_hits;
                    lp_with += res.stats.lp_calls;
                } else {
                    lp_without += res.stats.lp_calls;
                }
            }
        }
    }
    assert!(
        total_hits > 0,
        "witness cache never fired across the matrix"
    );
    assert!(
        lp_with < lp_without,
        "witness cache must strictly reduce LP calls ({lp_with} vs {lp_without})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random 3-d instances: BA and AA, each with the witness cache on and
    /// off, must all agree on `k*` and the region fingerprint.
    #[test]
    fn four_way_agreement_on_random_3d_instances(seed in 0u64..1_000, focal_rank in 0usize..6) {
        let mut rng = StdRng::seed_from_u64(77_000 + seed);
        let data = synthetic::generate(Distribution::Independent, 45, 3, &mut rng);
        let tree = RStarTree::bulk_load(&data);
        let engine = MaxRankQuery::new(&data, &tree);
        // Pick the focal_rank-th best record by attribute sum.
        let mut by_sum: Vec<(f64, u32)> = data
            .iter()
            .map(|(id, r)| (r.iter().sum::<f64>(), id))
            .collect();
        by_sum.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let focal = by_sum[focal_rank].1;
        // Within one algorithm the witness knob must not change anything;
        // across algorithms only `k*` is comparable (AA's mixed arrangement
        // decomposes the same answer region into different cells, and its
        // outranking lists cover only the records it accessed).
        let mut k_stars = Vec::new();
        for algo in [Algorithm::BasicApproach, Algorithm::AdvancedApproach] {
            let mut prints = Vec::new();
            for witness_cache in [true, false] {
                let res = engine.evaluate(focal, &MaxRankConfig {
                    algorithm: algo,
                    witness_cache,
                    ..MaxRankConfig::new()
                });
                prints.push(fingerprint(&res));
            }
            prop_assert_eq!(&prints[0], &prints[1], "algo {}", algo.name());
            k_stars.push(prints[0].0);
        }
        prop_assert_eq!(k_stars[0], k_stars[1], "BA vs AA k*");
    }
}
