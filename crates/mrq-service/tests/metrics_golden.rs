//! Golden-file test for the Prometheus text exposition format.
//!
//! The rendered `/metrics` text for a fixed [`ServiceStats`] must match
//! `tests/golden/metrics.prom` byte for byte — scrapers parse this format
//! with regexes, so even whitespace or metadata-ordering drift is a
//! compatibility break worth a deliberate review.  To accept an intentional
//! format change, regenerate the file with:
//!
//! ```text
//! MRQ_UPDATE_GOLDEN=1 cargo test -p mrq-service --test metrics_golden
//! ```

use mrq_service::{
    render_metrics, CacheStats, DatasetQueryStats, DurabilityStats, PoolStats, ReliabilityStats,
    ServiceStats, SubscriptionStats,
};
use std::path::PathBuf;

/// A fixed stats snapshot exercising every family, a label needing escapes,
/// and a counter above 2^53 (the f64 integer-exactness cliff).
fn golden_stats() -> ServiceStats {
    ServiceStats {
        cache: CacheStats {
            hits: 101,
            misses: 57,
            evictions: 9,
            evictions_stale: 31,
            len: 48,
            capacity: 1024,
        },
        pool: PoolStats {
            workers: 8,
            queue_capacity: 512,
            queue_depth: 3,
            executed: 9007199254740993, // 2^53 + 1: must not round to ...992
            coalesced: 12,
            timed_out: 4,
            deadline_rejected: 2,
        },
        datasets: vec!["demo".into(), "hotels\"eu\"".into()],
        per_dataset: vec![
            DatasetQueryStats {
                dataset: "demo".into(),
                queries: 250,
                cache_hits: 101,
                cpu_us: 1234567,
                io_reads: 8901,
                cells_tested: 23456,
                lp_calls: 7890,
                witness_hits: 4567,
            },
            DatasetQueryStats {
                dataset: "hotels\"eu\"".into(),
                queries: 7,
                cache_hits: 0,
                cpu_us: 99,
                io_reads: 3,
                cells_tested: 11,
                lp_calls: 5,
                witness_hits: 2,
            },
        ],
        durability: DurabilityStats {
            durable_datasets: 2,
            recovered_datasets: 1,
            wal_batches_replayed: 40,
            torn_bytes_discarded: 128,
            recovery_pages_read: 77,
            wal_appends: 300,
            wal_appended_bytes: 18446744073709551615, // u64::MAX
            checkpoints: 6,
        },
        subscriptions: SubscriptionStats {
            active: 5,
            deltas_triaged: 90,
            unaffected_skips: 60,
            partial_repairs: 25,
            full_reevals: 5,
        },
        reliability: ReliabilityStats {
            connections_shed: 17,
            idle_disconnects: 3,
            update_dedup_hits: 8,
        },
        degraded: vec!["hotels\"eu\"".into()],
    }
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("metrics.prom")
}

#[test]
fn metrics_text_matches_the_golden_file() {
    let rendered = render_metrics(&golden_stats());
    let path = golden_path();
    if std::env::var_os("MRQ_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with MRQ_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert!(
        rendered == golden,
        "metrics exposition format drifted from {}.\n\
         If the change is intentional, regenerate with MRQ_UPDATE_GOLDEN=1.\n\
         --- golden ---\n{golden}\n--- rendered ---\n{rendered}",
        path.display()
    );
}
