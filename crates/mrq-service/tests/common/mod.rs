//! Helpers shared by the differential harnesses (`update_diff.rs` and
//! `crash_recovery.rs`): canonical result fingerprints, fresh single-shot
//! evaluation on a rebuilt index, witness validation and seeded update-batch
//! generation.  Each integration-test target compiles its own copy, so not
//! every target uses every helper.
#![allow(dead_code)]

pub mod chaos;

use mrq_core::{Algorithm, MaxRankConfig, MaxRankQuery, MaxRankResult};
use mrq_data::{Dataset, Update};
use mrq_index::RStarTree;
use rand::{rngs::StdRng, Rng};

/// The semantic payload of a result, rendered canonically.  Statistics are
/// excluded (they differ run to run by nature), and so is list *order*
/// inside a region: an incrementally maintained tree visits leaves in a
/// different order than a bulk-loaded one, which permutes the outranking
/// ids and the H-representation without changing the answer.  Witness
/// points are validated separately (they must attain the region's order on
/// the version's data).
pub fn fingerprint(result: &MaxRankResult) -> String {
    let mut regions: Vec<String> = result
        .regions
        .iter()
        .map(|r| {
            let mut outranking = r.outranking.clone();
            outranking.sort_unstable();
            let mut constraints: Vec<String> = r
                .region
                .constraints
                .iter()
                .map(|h| format!("{h:?}"))
                .collect();
            constraints.sort();
            format!(
                "order={} outranking={outranking:?} constraints={constraints:?} bounds={:?}",
                r.order, r.region.bounds
            )
        })
        .collect();
    regions.sort();
    format!(
        "dims={} k*={} tau={} regions={regions:?}",
        result.dims, result.k_star, result.tau
    )
}

/// Every region's witness must attain the region's order on `data` — this is
/// the semantic check that the geometric payload of a served answer is
/// correct for the version it claims.
pub fn assert_witnesses_hold(result: &MaxRankResult, data: &Dataset, focal: u32) {
    let p = data.record(focal);
    for region in &result.regions {
        let q = region.representative_query();
        assert_eq!(
            data.order_of(p, &q),
            region.order,
            "witness order mismatch at version {}",
            data.version()
        );
    }
}

/// Evaluates (focal, algo, τ) on a freshly bulk-loaded index over `data`.
pub fn fresh_eval(data: &Dataset, focal: u32, algorithm: Algorithm, tau: usize) -> MaxRankResult {
    let tree = RStarTree::bulk_load(data);
    MaxRankQuery::new(data, &tree).evaluate(
        focal,
        &MaxRankConfig {
            tau,
            algorithm,
            ..MaxRankConfig::new()
        },
    )
}

/// Builds a valid update batch against the mirror's current state: inserts
/// are fresh rows, deletes are distinct live ids.
pub fn random_batch(mirror: &Dataset, rng: &mut StdRng) -> Vec<Update> {
    let d = mirror.dims();
    let mut batch = Vec::new();
    let mut doomed: Vec<u32> = Vec::new();
    for _ in 0..rng.gen_range(1..=3) {
        let live: Vec<u32> = mirror
            .iter()
            .map(|(id, _)| id)
            .filter(|id| !doomed.contains(id))
            .collect();
        if rng.gen_bool(0.5) || live.len() <= 5 {
            batch.push(Update::Insert((0..d).map(|_| rng.gen::<f64>()).collect()));
        } else {
            let id = live[rng.gen_range(0..live.len())];
            doomed.push(id);
            batch.push(Update::Delete(id));
        }
    }
    batch
}
