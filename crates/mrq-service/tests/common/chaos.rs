//! A deterministic TCP chaos proxy for fault-injection tests.
//!
//! The proxy sits between a [`Client`](mrq_service::Client) and a real
//! server, forwarding bytes **uncorrupted** but mangling delivery in the
//! ways flaky networks do: added latency, byte-at-a-time partial writes,
//! long mid-frame stalls and abrupt mid-stream connection resets.  Every
//! fault is drawn from a seeded xorshift stream keyed by the connection
//! index, so a given `(seed, connection ordinal)` always yields the same
//! fault schedule — chaos runs are replayable bit for bit.
//!
//! Resets deliberately fire *after* bytes of a request have been forwarded:
//! the cruellest case is an update the server committed whose
//! acknowledgement never arrived, which is exactly what `request_id` dedup
//! plus client retries must turn back into exactly-once.
#![allow(dead_code)]

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Knobs for the fault schedule.  All probabilities are percentages.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Chance that a connection is scheduled for a mid-stream reset.  The
    /// very first connection is always scheduled, so any run that opens the
    /// proxy at all observes at least one reset.
    pub reset_percent: u64,
    /// Client→server bytes forwarded before a scheduled reset fires,
    /// drawn uniformly from this half-open range.
    pub reset_window: (usize, usize),
    /// Extra bytes added to the window per connection ordinal.  Escalation
    /// guarantees forward progress: each reconnect survives strictly longer,
    /// so a retrying client always outruns the fault schedule eventually.
    pub reset_growth: usize,
    /// Forwarded chunks are `1..=max_chunk` bytes — small values shred
    /// frames across many `write` calls.
    pub max_chunk: usize,
    /// Chance that an individual chunk is preceded by a stall.
    pub stall_percent: u64,
    /// Length of such a stall.
    pub stall: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0xC4A05,
            reset_percent: 35,
            reset_window: (8, 160),
            reset_growth: 64,
            max_chunk: 7,
            stall_percent: 10,
            stall: Duration::from_millis(25),
        }
    }
}

/// Minimal xorshift64 stream — the tests must not depend on `rand` here so
/// the proxy stays a self-contained drop-in for any integration target.
struct FaultRng(u64);

impl FaultRng {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// The per-connection schedule, derived once from the connection ordinal.
struct FaultPlan {
    /// Client→server bytes after which both directions are torn down.
    reset_after: Option<usize>,
    rng: FaultRng,
    config: ChaosConfig,
}

impl FaultPlan {
    fn derive(config: ChaosConfig, ordinal: u64) -> Self {
        let mut rng = FaultRng::new(config.seed ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let scheduled = ordinal == 0 || rng.below(100) < config.reset_percent;
        let reset_after = scheduled.then(|| {
            let (lo, hi) = config.reset_window;
            lo + ordinal as usize * config.reset_growth
                + rng.below(hi.saturating_sub(lo).max(1) as u64) as usize
        });
        Self {
            reset_after,
            rng,
            config,
        }
    }

    fn chunk_len(&mut self) -> usize {
        1 + self.rng.below(self.config.max_chunk.max(1) as u64) as usize
    }

    fn stalls(&mut self) -> bool {
        self.rng.below(100) < self.config.stall_percent
    }
}

/// A chaos proxy listening on an ephemeral loopback port.  Dropping it
/// stops the accept loop; in-flight pumps notice the stop flag and exit.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    resets: Arc<AtomicU64>,
    connections: Arc<AtomicU64>,
}

impl ChaosProxy {
    /// Starts relaying `proxy addr → upstream` with the given fault knobs.
    pub fn start(upstream: SocketAddr, config: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let resets = Arc::new(AtomicU64::new(0));
        let connections = Arc::new(AtomicU64::new(0));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let resets = Arc::clone(&resets);
            let connections = Arc::clone(&connections);
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let ordinal = connections.fetch_add(1, Ordering::Relaxed);
                            let Ok(server) = TcpStream::connect(upstream) else {
                                continue;
                            };
                            relay(
                                client,
                                server,
                                config,
                                ordinal,
                                Arc::clone(&stop),
                                Arc::clone(&resets),
                            );
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(ChaosProxy {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            resets,
            connections,
        })
    }

    /// The address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many scheduled resets actually fired.
    pub fn resets(&self) -> u64 {
        self.resets.load(Ordering::Relaxed)
    }

    /// How many connections were accepted (reconnects included).
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Spawns the two pump threads for one proxied connection.  The scheduled
/// reset alternates direction by connection ordinal: even connections tear
/// the request path (a torn request the server never saw), odd ones the
/// reply path — which is the sharp case, a request the server fully
/// processed whose acknowledgement never arrives.  Both directions always
/// get chunking and stalls.
fn relay(
    client: TcpStream,
    server: TcpStream,
    config: ChaosConfig,
    ordinal: u64,
    stop: Arc<AtomicBool>,
    resets: Arc<AtomicU64>,
) {
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let (Ok(client_rd), Ok(server_rd)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let mut plan = FaultPlan::derive(config, ordinal);
    let mut reply_plan = FaultPlan {
        reset_after: None,
        rng: FaultRng::new(plan.rng.0 ^ 0x5DEE_CE66),
        config,
    };
    if ordinal % 2 == 1 {
        reply_plan.reset_after = plan.reset_after.take();
    }
    {
        let stop = Arc::clone(&stop);
        let resets = Arc::clone(&resets);
        thread::spawn(move || pump(client_rd, server, plan, stop, resets));
    }
    thread::spawn(move || pump(server_rd, client, reply_plan, stop, resets));
}

/// Copies bytes `from → to` through the fault plan until EOF, an error,
/// the stop flag, or a scheduled reset.
fn pump(
    mut from: TcpStream,
    to: TcpStream,
    mut plan: FaultPlan,
    stop: Arc<AtomicBool>,
    resets: Arc<AtomicU64>,
) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 4096];
    let mut forwarded = 0usize;
    'outer: while !stop.load(Ordering::Relaxed) {
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => break,
        };
        let mut off = 0;
        while off < n {
            if let Some(at) = plan.reset_after {
                if forwarded >= at {
                    // Mid-frame reset: some bytes of the current request are
                    // already upstream, the rest never arrive.
                    resets.fetch_add(1, Ordering::Relaxed);
                    let _ = from.shutdown(Shutdown::Both);
                    let _ = to.shutdown(Shutdown::Both);
                    return;
                }
            }
            let mut len = plan.chunk_len().min(n - off);
            if let Some(at) = plan.reset_after {
                // Land the reset exactly on its scheduled byte.
                len = len.min((at - forwarded).max(1));
            }
            if plan.stalls() {
                thread::sleep(plan.config.stall);
            }
            if (&to).write_all(&buf[off..off + len]).is_err() {
                break 'outer;
            }
            forwarded += len;
            off += len;
        }
    }
    // Propagate EOF without tearing down the opposite direction.
    let _ = to.shutdown(Shutdown::Write);
}
