//! The differential harness for standing queries — the acceptance test of
//! the subscription subsystem.
//!
//! A seeded interleaving of `SUBSCRIBE`, `UNSUBSCRIBE` and `UPDATE` batches
//! runs against one `MrqService` while a *mirror* dataset replays the same
//! updates outside the service.  After every applied batch the harness
//! checks two things for every subscription:
//!
//! 1. **Every notification is exact.**  Each `Changed` event's carried
//!    result must fingerprint-equal a fresh evaluation on a bulk-loaded
//!    index over the mirror at the event's version, and its witnesses must
//!    attain their region orders on that data.  `Cancelled` events must
//!    coincide with the focal's deletion.
//! 2. **Every silence is exact too.**  Unaffected and rank-shifted
//!    subscriptions never re-enumerate — so the harness additionally
//!    snapshots every *surviving* subscription and requires the resident
//!    result to match a fresh rebuild at the new version.  A triage pass
//!    that wrongly certified a crossing delta as unaffected would keep a
//!    stale result resident and fail here even though no NOTIFY fired.
//!
//! A directed companion test pins the triage counters down: batches of
//! dominated / dominating deltas must resolve entirely through
//! `unaffected_skips` and `partial_repairs` (the resident `Arc` is
//! physically untouched for skips), with `full_reevals` reserved for the
//! one genuinely crossing delta.

mod common;

use common::{assert_witnesses_hold, fingerprint, fresh_eval, random_batch};
use mrq_core::Algorithm;
use mrq_data::{synthetic, Dataset, Distribution, Update};
use mrq_service::{
    DatasetRegistry, MrqService, NotifyKind, NotifyMailbox, ServiceConfig, Subscription,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Registers a subscription on a uniformly chosen live focal and checks the
/// acknowledged resident result against a fresh rebuild.
fn subscribe_random(
    service: &MrqService,
    mirror: &Dataset,
    algorithms: &[Algorithm],
    mailbox: &Arc<NotifyMailbox>,
    rng: &mut StdRng,
    live_subs: &mut HashMap<u64, Arc<Subscription>>,
) {
    let live: Vec<u32> = mirror.iter().map(|(id, _)| id).collect();
    let focal = live[rng.gen_range(0..live.len())];
    let algorithm = algorithms[rng.gen_range(0..algorithms.len())];
    let tau = rng.gen_range(0..2usize);
    let sub = service
        .subscribe("dyn", focal, algorithm, tau, Arc::clone(mailbox))
        .expect("subscribing to a live focal succeeds");
    let (result, version) = sub.snapshot();
    assert_eq!(version, mirror.version(), "ack must carry the live version");
    let fresh = fresh_eval(mirror, focal, sub.algorithm(), tau);
    assert_eq!(
        fingerprint(&result),
        fingerprint(&fresh),
        "subscription ack diverged from a fresh rebuild (focal {focal}, {algorithm:?}, tau {tau})"
    );
    live_subs.insert(sub.id(), sub);
}

fn run_script(d: usize, dist: Distribution, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mirror = synthetic::generate(dist, 40, d, &mut rng);
    let registry = Arc::new(DatasetRegistry::new());
    registry.register_loaded("dyn", mirror.clone()).unwrap();
    let service = MrqService::new(
        Arc::clone(&registry),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let algorithms: &[Algorithm] = if d == 2 {
        &[
            Algorithm::Fca,
            Algorithm::BasicApproach,
            Algorithm::AdvancedApproach,
            Algorithm::AdvancedApproach2D,
        ]
    } else {
        &[Algorithm::BasicApproach, Algorithm::AdvancedApproach]
    };
    let mailbox = Arc::new(NotifyMailbox::new());
    let mut live_subs: HashMap<u64, Arc<Subscription>> = HashMap::new();
    for _ in 0..4 {
        subscribe_random(
            &service,
            &mirror,
            algorithms,
            &mailbox,
            &mut rng,
            &mut live_subs,
        );
    }

    for _ in 0..24 {
        let roll: f64 = rng.gen();
        if roll < 0.20 {
            subscribe_random(
                &service,
                &mirror,
                algorithms,
                &mailbox,
                &mut rng,
                &mut live_subs,
            );
        } else if roll < 0.32 && !live_subs.is_empty() {
            let ids: Vec<u64> = live_subs.keys().copied().collect();
            let id = ids[rng.gen_range(0..ids.len())];
            assert!(service.unsubscribe(id), "live ids must unsubscribe cleanly");
            live_subs.remove(&id);
        } else {
            let batch = random_batch(&mirror, &mut rng);
            service.update("dyn", &batch).unwrap();
            for update in &batch {
                mirror.apply(update).unwrap();
            }
            let version = mirror.version();

            // 1. Every pushed event is exact at the version it carries.
            for event in mailbox.drain() {
                assert_eq!(event.version, version, "events are pushed in-batch");
                match &event.kind {
                    NotifyKind::Changed { result, .. } => {
                        let sub = &live_subs[&event.subscription];
                        let fresh = fresh_eval(&mirror, event.focal, sub.algorithm(), sub.tau());
                        assert_eq!(
                            fingerprint(result),
                            fingerprint(&fresh),
                            "NOTIFY'd result diverged from a fresh rebuild at version \
                             {version} (focal {}, {:?}, tau {})",
                            event.focal,
                            sub.algorithm(),
                            sub.tau()
                        );
                        assert_witnesses_hold(result, &mirror, event.focal);
                    }
                    NotifyKind::Cancelled { reason } => {
                        assert!(reason.contains("deleted"), "unexpected reason: {reason}");
                        assert!(
                            !mirror.is_live(event.focal),
                            "cancellation without a focal deletion"
                        );
                        live_subs
                            .remove(&event.subscription)
                            .expect("cancelled subscription was registered");
                    }
                }
            }

            // 2. Silence is exact too: even subscriptions that got *no*
            // event must now be resident-correct at the new version.
            for sub in live_subs.values() {
                let (result, v) = sub.snapshot();
                assert_eq!(
                    v, version,
                    "every survivor is stamped with the batch version"
                );
                let fresh = fresh_eval(&mirror, sub.focal(), sub.algorithm(), sub.tau());
                assert_eq!(
                    fingerprint(&result),
                    fingerprint(&fresh),
                    "maintained result diverged from a fresh rebuild at version \
                     {version} (focal {}, {:?}, tau {})",
                    sub.focal(),
                    sub.algorithm(),
                    sub.tau()
                );
                assert_witnesses_hold(&result, &mirror, sub.focal());
            }
        }
    }

    let stats = service.stats().subscriptions;
    assert_eq!(stats.active as usize, live_subs.len());
    assert_eq!(
        stats.deltas_triaged,
        stats.unaffected_skips + stats.partial_repairs + stats.full_reevals,
        "every examined delta lands in exactly one triage bucket"
    );
    service.shutdown();
}

#[test]
fn maintained_results_match_rebuilds_2d() {
    run_script(2, Distribution::Independent, 20150801);
    run_script(2, Distribution::AntiCorrelated, 42);
}

#[test]
fn maintained_results_match_rebuilds_3d() {
    run_script(3, Distribution::Correlated, 7);
    run_script(3, Distribution::Independent, 2015);
}

/// Directed counter attestation on the demo dataset: dominated inserts are
/// certified unaffected without touching the resident `Arc`, dominating
/// inserts are repaired arithmetically, and only the genuinely crossing
/// delete re-enumerates — so the non-intersecting majority of deltas never
/// re-runs cell enumeration.
#[test]
fn triage_counters_attest_skipped_enumeration() {
    let rows: Vec<Vec<f64>> = vec![
        vec![0.8, 0.9],
        vec![0.2, 0.7],
        vec![0.9, 0.4],
        vec![0.7, 0.2],
        vec![0.4, 0.3],
        vec![0.5, 0.5],
    ];
    let mut mirror = Dataset::from_rows(2, &rows);
    let registry = Arc::new(DatasetRegistry::new());
    registry.register_loaded("dyn", mirror.clone()).unwrap();
    let service = MrqService::new(Arc::clone(&registry), ServiceConfig::default());
    let mailbox = Arc::new(NotifyMailbox::new());
    let sub = service
        .subscribe("dyn", 5, Algorithm::Auto, 0, Arc::clone(&mailbox))
        .unwrap();
    let (initial, _) = sub.snapshot();
    assert_eq!(initial.k_star, 3);

    // Batch A: three inserts dominated by the focal — certified unaffected;
    // the resident result object itself must be untouched.
    let dominated: Vec<Update> = vec![
        Update::Insert(vec![0.05, 0.05]),
        Update::Insert(vec![0.10, 0.02]),
        Update::Insert(vec![0.02, 0.20]),
    ];
    service.update("dyn", &dominated).unwrap();
    for update in &dominated {
        mirror.apply(update).unwrap();
    }
    assert!(
        mailbox.drain().is_empty(),
        "unaffected deltas push no NOTIFY"
    );
    let (after_skip, v) = sub.snapshot();
    assert_eq!(v, mirror.version());
    assert!(
        Arc::ptr_eq(&initial, &after_skip),
        "a skipped batch must not rebuild the result"
    );

    // Batch B: two inserts dominating the focal — pure arithmetic repair,
    // one Changed event for the whole batch.
    let dominating: Vec<Update> = vec![
        Update::Insert(vec![0.95, 0.95]),
        Update::Insert(vec![0.90, 0.99]),
    ];
    service.update("dyn", &dominating).unwrap();
    for update in &dominating {
        mirror.apply(update).unwrap();
    }
    let events = mailbox.drain();
    assert_eq!(events.len(), 1);
    match &events[0].kind {
        NotifyKind::Changed { result, .. } => assert_eq!(result.k_star, 5),
        other => panic!("expected a change, got {other:?}"),
    }

    // Batch C: deleting an incomparable record can promote outside cells
    // into the window — the one delta that must re-enumerate.
    let crossing: Vec<Update> = vec![Update::Delete(2)];
    service.update("dyn", &crossing).unwrap();
    mirror.apply(&crossing[0]).unwrap();
    let events = mailbox.drain();
    assert_eq!(events.len(), 1);
    let (final_result, final_version) = sub.snapshot();
    assert_eq!(final_version, mirror.version());
    let fresh = fresh_eval(&mirror, 5, sub.algorithm(), 0);
    assert_eq!(fingerprint(&final_result), fingerprint(&fresh));
    assert_witnesses_hold(&final_result, &mirror, 5);

    let stats = service.stats().subscriptions;
    assert_eq!(stats.deltas_triaged, 6);
    assert_eq!(stats.unaffected_skips, 3);
    assert_eq!(stats.partial_repairs, 2);
    assert_eq!(stats.full_reevals, 1);
    assert!(
        stats.unaffected_skips + stats.partial_repairs > stats.full_reevals,
        "non-intersecting deltas must dominate the triage outcome"
    );
    service.shutdown();
}
