//! Property tests for the serving layer's caching and concurrency claims:
//!
//! 1. A cached service answer is **byte-identical** to a fresh,
//!    single-threaded `MaxRankQuery::evaluate` answer, across algorithms.
//! 2. Cache eviction never changes results: a cache too small for the
//!    workload keeps every answer equal to the uncached one.
//!
//! "Byte-identical" is checked on everything the result semantically carries
//! (dimensionality, `k*`, τ, and each region's H-representation, witness,
//! order and outranking set via its `Debug` rendering).  Execution statistics
//! are excluded — wall-clock time differs between any two runs by nature.

use mrq_core::{Algorithm, MaxRankConfig, MaxRankQuery, MaxRankResult};
use mrq_data::{synthetic, Dataset, Distribution};
use mrq_index::RStarTree;
use mrq_service::{DatasetRegistry, MrqService, QueryRequest, ServiceConfig};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;

/// The semantic payload of a result, rendered deterministically.
fn fingerprint(result: &MaxRankResult) -> String {
    let regions: Vec<String> = result
        .regions
        .iter()
        .map(|r| {
            format!(
                "order={} outranking={:?} region={:?}",
                r.order, r.outranking, r.region
            )
        })
        .collect();
    format!(
        "dims={} k*={} tau={} regions={regions:?}",
        result.dims, result.k_star, result.tau
    )
}

fn dataset_strategy(d: usize, max_n: usize) -> impl Strategy<Value = (Dataset, Vec<u32>, usize)> {
    (20usize..max_n, any::<u64>()).prop_map(move |(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = match seed % 3 {
            0 => Distribution::Independent,
            1 => Distribution::Correlated,
            _ => Distribution::AntiCorrelated,
        };
        let data = synthetic::generate(dist, n, d, &mut rng);
        // A handful of focals with deliberate repeats so the cache is hit.
        let focals: Vec<u32> = (0..6u64)
            .map(|i| (seed.wrapping_add(i * 7919) % n as u64) as u32)
            .collect();
        let tau = (seed % 3) as usize;
        (data, focals, tau)
    })
}

/// Runs every focal twice through a service and checks both answers against
/// a fresh single-threaded engine.
fn assert_cached_equals_fresh(
    data: Dataset,
    focals: &[u32],
    tau: usize,
    algorithms: &[Algorithm],
    cache_capacity: usize,
) -> Result<(), TestCaseError> {
    let fresh_data = data.clone();
    let tree = RStarTree::bulk_load(&fresh_data);
    let engine = MaxRankQuery::new(&fresh_data, &tree);

    let registry = Arc::new(DatasetRegistry::new());
    registry
        .register_loaded("p", data)
        .map_err(|e| TestCaseError::fail(format!("register: {e}")))?;
    let service = MrqService::new(
        Arc::clone(&registry),
        ServiceConfig {
            workers: 3,
            cache_capacity,
            ..ServiceConfig::default()
        },
    );

    for &algorithm in algorithms {
        for round in 0..2 {
            for &focal in focals {
                let request = QueryRequest {
                    algorithm,
                    tau,
                    ..QueryRequest::new("p", focal)
                };
                let answer = service
                    .query(&request)
                    .map_err(|e| TestCaseError::fail(format!("service: {e}")))?;
                let config = MaxRankConfig {
                    tau,
                    algorithm,
                    ..MaxRankConfig::new()
                };
                let fresh = engine.evaluate(focal, &config);
                prop_assert_eq!(
                    fingerprint(&answer.result),
                    fingerprint(&fresh),
                    "round {} focal {} algorithm {:?}",
                    round,
                    focal,
                    algorithm
                );
            }
        }
    }
    let stats = service.stats();
    service.shutdown();
    // The second round re-queried every key: with a big enough cache that
    // must produce hits; with eviction pressure it may not, but the
    // equality assertions above have already done the real work.
    if cache_capacity >= focals.len() {
        prop_assert!(
            stats.cache.hits > 0,
            "repeat workload must hit: {:?}",
            stats
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// 2-d: every algorithm (FCA, AA2D, plus the generic pair) served through
    /// the cache equals fresh evaluation.
    #[test]
    fn cached_answers_identical_2d((data, focals, tau) in dataset_strategy(2, 80)) {
        assert_cached_equals_fresh(
            data,
            &focals,
            tau,
            &[Algorithm::Fca, Algorithm::AdvancedApproach2D, Algorithm::Auto],
            1024,
        )?;
    }

    /// 3-d: BA and AA served through the cache equal fresh evaluation.
    #[test]
    fn cached_answers_identical_3d((data, focals, tau) in dataset_strategy(3, 50)) {
        assert_cached_equals_fresh(
            data,
            &focals,
            tau,
            &[Algorithm::BasicApproach, Algorithm::AdvancedApproach],
            1024,
        )?;
    }

    /// A cache under heavy eviction pressure (capacity 2 for 6 keys, queried
    /// twice) never changes any answer.
    #[test]
    fn eviction_never_changes_results((data, focals, tau) in dataset_strategy(3, 50)) {
        assert_cached_equals_fresh(
            data,
            &focals,
            tau,
            &[Algorithm::AdvancedApproach],
            2,
        )?;
    }
}

/// Deterministic (non-proptest) eviction check with explicit counters: a
/// capacity-2 cache cycled over 8 focals evicts constantly, yet every answer
/// stays equal to the fresh one.
#[test]
fn eviction_counters_move_and_answers_stay_correct() {
    let mut rng = StdRng::seed_from_u64(99);
    let data = synthetic::generate(Distribution::Independent, 120, 3, &mut rng);
    let fresh_data = data.clone();
    let tree = RStarTree::bulk_load(&fresh_data);
    let engine = MaxRankQuery::new(&fresh_data, &tree);

    let registry = Arc::new(DatasetRegistry::new());
    registry.register_loaded("p", data).unwrap();
    let service = MrqService::new(
        registry,
        ServiceConfig {
            workers: 2,
            cache_capacity: 2,
            ..ServiceConfig::default()
        },
    );
    let focals: Vec<u32> = (0..8).map(|i| i * 13 % 120).collect();
    for _ in 0..3 {
        for &focal in &focals {
            let answer = service.query(&QueryRequest::new("p", focal)).unwrap();
            let fresh = engine.evaluate(focal, &MaxRankConfig::new());
            assert_eq!(fingerprint(&answer.result), fingerprint(&fresh));
        }
    }
    let stats = service.stats();
    assert!(
        stats.cache.evictions > 0,
        "8 keys through a 2-entry cache must evict: {stats:?}"
    );
    assert_eq!(stats.cache.len, 2);
    service.shutdown();
}
