//! Graceful storage degradation: a WAL I/O failure must never panic the
//! server or half-apply a batch.  Instead the batch is rejected *before*
//! the copy-on-write swap and the dataset transitions to degraded
//! (read-only) mode — queries keep serving the last durable version,
//! further updates get the typed `dataset degraded` error, and a restart
//! against a healthy disk clears the mode.
//!
//! Faults are injected through the `MRQ_STORAGE_FAIL_WAL_IO` hook
//! (`mrq_data::storage::set_wal_fail_mode`), the runtime-settable sibling
//! of PR 6's `MRQ_STORAGE_CRASH_WAL_BYTES` abort hook.  The hook state is
//! process-global, so every test in this binary serializes on one mutex
//! and restores `Off` before releasing it.

use mrq_data::storage::{set_wal_fail_mode, WalFailMode};
use mrq_data::{synthetic, Dataset, Distribution, Update};
use mrq_service::{
    render_metrics, DatasetRegistry, DurabilityOptions, MrqService, QueryRequest, ServiceConfig,
    ServiceError,
};
use rand::{rngs::StdRng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

const DATASET: &str = "frail";

/// Serializes tests toggling the process-global fault hook.
static HOOK: Mutex<()> = Mutex::new(());

/// RAII guard: holds the serialization lock and always restores `Off`.
struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FaultGuard {
    fn engage(mode: WalFailMode) -> Self {
        let guard = HOOK.lock().unwrap_or_else(PoisonError::into_inner);
        set_wal_fail_mode(mode);
        Self(guard)
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        set_wal_fail_mode(WalFailMode::Off);
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mrq_degraded_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn initial_dataset() -> Dataset {
    let mut rng = StdRng::seed_from_u64(7);
    synthetic::generate(Distribution::Independent, 24, 2, &mut rng)
}

fn durable_service(dir: &Path) -> (Arc<DatasetRegistry>, MrqService) {
    let registry = Arc::new(DatasetRegistry::new());
    registry
        .register_loaded_durable(
            DATASET,
            initial_dataset(),
            dir,
            DurabilityOptions::default(),
        )
        .unwrap();
    let service = MrqService::new(
        Arc::clone(&registry),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    (registry, service)
}

fn insert(x: f64) -> Vec<Update> {
    vec![Update::Insert(vec![x, 1.0 - x])]
}

/// The shared body: inject `mode`, verify reject-before-swap + read-only
/// serving + typed errors + observability, then restart on a healthy disk
/// and verify the mode cleared and updates flow again.
fn degrade_and_recover(mode: WalFailMode, tag: &str) {
    let dir = scratch_dir(tag);
    let (registry, service) = durable_service(&dir);

    // One durable batch while the disk is healthy.
    let ok = service.update(DATASET, &insert(0.25)).unwrap();
    assert_eq!(ok.version, 1);
    let answer = service.query(&QueryRequest::new(DATASET, 3)).unwrap();
    let healthy_k = answer.result.k_star;
    assert_eq!(answer.version, 1);

    // Inject the fault: the next update must be rejected, not half-applied.
    let guard = FaultGuard::engage(mode);
    let err = service.update(DATASET, &insert(0.5)).unwrap_err();
    assert!(
        matches!(err, ServiceError::Internal(ref msg) if msg.contains("update not committed")),
        "first failing update should surface the storage error: {err}"
    );

    // No half-applied batch: still version 1, queries still answer.
    let handle = registry.handle(DATASET).unwrap();
    assert_eq!(handle.snapshot().data().version(), 1);
    let after = service.query(&QueryRequest::new(DATASET, 3)).unwrap();
    assert_eq!(after.version, 1);
    assert_eq!(after.result.k_star, healthy_k);

    // The dataset is now degraded: further updates get the typed error even
    // though the fault itself has been cleared (degraded mode is sticky
    // until a restart proves the disk state).
    drop(guard);
    let err = service.update(DATASET, &insert(0.5)).unwrap_err();
    match err {
        ServiceError::DatasetDegraded { dataset, reason } => {
            assert_eq!(dataset, DATASET);
            assert!(!reason.is_empty());
        }
        other => panic!("expected dataset degraded, got {other}"),
    }

    // STATS and /metrics both expose the mode.
    let stats = service.stats();
    assert_eq!(stats.degraded, vec![DATASET.to_string()]);
    let text = render_metrics(&stats);
    assert!(
        text.contains(&format!("mrq_dataset_degraded{{dataset=\"{DATASET}\"}} 1")),
        "{text}"
    );

    // Reads keep working in degraded mode.
    assert_eq!(
        service
            .query(&QueryRequest::new(DATASET, 3))
            .unwrap()
            .version,
        1
    );
    service.shutdown();
    drop(registry);

    // Restart with a healthy disk: recovery serves the last durable version
    // and the degraded mode is gone.
    let (registry, service) = durable_service(&dir);
    let handle = registry.handle(DATASET).unwrap();
    assert_eq!(
        handle.snapshot().data().version(),
        1,
        "recovery must land on the last durable batch boundary"
    );
    assert!(handle.degraded().is_none());
    assert!(service.stats().degraded.is_empty());
    let ok = service.update(DATASET, &insert(0.75)).unwrap();
    assert_eq!(ok.version, 2);
    assert_eq!(
        service
            .query(&QueryRequest::new(DATASET, 3))
            .unwrap()
            .version,
        2
    );
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_append_error_degrades_to_read_only_and_restart_recovers() {
    degrade_and_recover(WalFailMode::Append, "append");
}

#[test]
fn wal_fsync_error_degrades_to_read_only_and_restart_recovers() {
    // The torn half-record the failed fsync left behind must be discarded
    // by recovery, exactly like a torn tail after a crash.
    degrade_and_recover(WalFailMode::Sync, "sync");
}

#[test]
fn disk_full_degrades_to_read_only_and_restart_recovers() {
    degrade_and_recover(WalFailMode::Full, "full");
}

#[test]
fn manual_checkpoint_of_a_degraded_dataset_is_refused() {
    let dir = scratch_dir("checkpoint");
    let (registry, service) = durable_service(&dir);
    service.update(DATASET, &insert(0.25)).unwrap();
    let _guard = FaultGuard::engage(WalFailMode::Append);
    let _ = service.update(DATASET, &insert(0.5)).unwrap_err();
    let handle = registry.handle(DATASET).unwrap();
    let err = handle.checkpoint().unwrap_err();
    assert!(
        err.to_string().contains("degraded"),
        "checkpointing a degraded dataset must be refused: {err}"
    );
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
