//! Chaos differential: a seeded query/update/subscribe script driven through
//! the fault-injecting proxy (`common::chaos`) with a retrying client must
//! produce exactly the same transcript and final state as the same script
//! run against an identical fault-free server.
//!
//! This is the end-to-end proof of the robustness stack: mid-frame resets,
//! byte stalls and partial writes are turned back into exactly-once
//! semantics by `request_id` dedup on updates plus transport-aware retries
//! on idempotent requests.  An update whose acknowledgement was severed is
//! the sharp case — the server committed it, the client retries it, and the
//! dedup window must replay the original receipt instead of applying it
//! twice (which the version-by-version transcript comparison would expose
//! immediately).
//!
//! Notifications are deliberately out of scope here: subscriptions are
//! connection-bound, so a reset legitimately kills them mid-script.  The
//! subscribe acknowledgements (initial answers) are compared instead —
//! those are deterministic given the committed update prefix.

mod common;

use common::chaos::{ChaosConfig, ChaosProxy};
use common::random_batch;
use mrq_core::Algorithm;
use mrq_data::{synthetic, Dataset, Distribution, Update};
use mrq_service::{
    Client, ClientError, DatasetRegistry, MrqService, RetryPolicy, Server, ServerConfig,
    ServiceConfig,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

const DATASET: &str = "dyn";
const SCRIPT_SEED: u64 = 2015;
const SCRIPT_LEN: usize = 60;

/// One pre-materialized script step.  The script is generated *before* any
/// server runs, so both sides execute byte-identical requests.
enum Op {
    Update {
        request_id: String,
        inserts: Vec<Vec<f64>>,
        deletes: Vec<u32>,
    },
    Query {
        focal: u32,
    },
    Subscribe {
        focal: u32,
    },
}

fn initial_dataset() -> Dataset {
    let mut rng = StdRng::seed_from_u64(SCRIPT_SEED);
    synthetic::generate(Distribution::Independent, 32, 2, &mut rng)
}

/// Materializes the seeded script against an in-memory mirror so deletes
/// always name live ids and focals always name live records.  Also returns
/// a few ids still live after the last step, for final-state probes.
fn build_script() -> (Vec<Op>, Vec<u32>, u64) {
    let mut mirror = initial_dataset();
    let mut rng = StdRng::seed_from_u64(SCRIPT_SEED ^ 0xD1FF);
    let mut script = Vec::with_capacity(SCRIPT_LEN);
    for step in 0..SCRIPT_LEN {
        let live: Vec<u32> = mirror.iter().map(|(id, _)| id).collect();
        let roll = rng.gen_range(0..10);
        if roll < 5 {
            let batch = random_batch(&mirror, &mut rng);
            let mut inserts = Vec::new();
            let mut deletes = Vec::new();
            for update in &batch {
                match update {
                    Update::Insert(row) => inserts.push(row.clone()),
                    Update::Delete(id) => deletes.push(*id),
                }
                mirror.apply(update).unwrap();
            }
            script.push(Op::Update {
                request_id: format!("chaos-{SCRIPT_SEED}-{step}"),
                inserts,
                deletes,
            });
        } else if roll < 8 {
            script.push(Op::Query {
                focal: live[rng.gen_range(0..live.len())],
            });
        } else {
            script.push(Op::Subscribe {
                focal: live[rng.gen_range(0..live.len())],
            });
        }
    }
    let probes: Vec<u32> = mirror.iter().map(|(id, _)| id).take(3).collect();
    let final_version = mirror.version();
    (script, probes, final_version)
}

fn start_server() -> Server {
    let registry = Arc::new(DatasetRegistry::new());
    registry
        .register_loaded(DATASET, initial_dataset())
        .unwrap();
    let service = Arc::new(MrqService::new(
        registry,
        ServiceConfig {
            workers: 2,
            queue_capacity: 32,
            cache_capacity: 16,
            ..ServiceConfig::default()
        },
    ));
    let config = ServerConfig {
        poll_interval: Duration::from_millis(25),
        ..ServerConfig::default()
    };
    Server::start_with(service, "127.0.0.1:0", config).unwrap()
}

fn retry_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 30,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(100),
        seed: 42,
    }
}

/// Runs the script through one client, rendering each reply canonically.
/// Subscription ids are excluded on purpose: a retry after a reset may
/// re-register, so the counter differs between runs without any semantic
/// difference.
fn run_script(addr: SocketAddr, script: &[Op], with_retry: bool) -> (Vec<String>, u64) {
    let mut client = if with_retry {
        Client::connect_with_retry(addr, retry_policy()).unwrap()
    } else {
        Client::connect(addr).unwrap()
    };
    let mut transcript = Vec::with_capacity(script.len());
    for (step, op) in script.iter().enumerate() {
        let line = match op {
            Op::Update {
                request_id,
                inserts,
                deletes,
            } => {
                let reply = client
                    .update_with_id(DATASET, inserts, deletes, Some(request_id))
                    .unwrap_or_else(|e| panic!("step {step}: update failed: {e}"));
                format!(
                    "update v{} records={} inserted={:?} deleted={}",
                    reply.version, reply.records, reply.inserted, reply.deleted
                )
            }
            Op::Query { focal } => {
                let reply = client
                    .query(DATASET, *focal)
                    .unwrap_or_else(|e| panic!("step {step}: query failed: {e}"));
                format!(
                    "query focal={focal} v{} k*={} |T|={} orders={:?}",
                    reply.version, reply.k_star, reply.region_count, reply.orders
                )
            }
            Op::Subscribe { focal } => {
                let reply = client
                    .subscribe(DATASET, *focal, Algorithm::Auto, 0)
                    .unwrap_or_else(|e| panic!("step {step}: subscribe failed: {e}"));
                format!(
                    "subscribe focal={focal} v{} k*={}",
                    reply.version, reply.k_star
                )
            }
        };
        transcript.push(line);
    }
    (transcript, client.retries_performed())
}

/// Final state as seen by a brand-new, fault-free client.
fn final_state(addr: SocketAddr, focals: &[u32]) -> Vec<String> {
    let mut client = Client::connect(addr).unwrap();
    let mut state = Vec::new();
    for (name, records, dims) in client.list().unwrap() {
        state.push(format!("dataset {name} records={records} dims={dims}"));
    }
    for &focal in focals {
        let reply = client.query(DATASET, focal).unwrap();
        state.push(format!(
            "final focal={focal} v{} k*={} |T|={} orders={:?}",
            reply.version, reply.k_star, reply.region_count, reply.orders
        ));
    }
    state
}

#[test]
fn chaos_script_matches_fault_free_run_exactly() {
    let (script, probes, expected_version) = build_script();

    // Control: clean server, direct connection, no retries needed.
    let clean = start_server();
    let (clean_transcript, clean_retries) = run_script(clean.local_addr(), &script, false);
    assert_eq!(clean_retries, 0);

    // Faulty: identical server behind the chaos proxy, retrying client.
    // Every connection is scheduled for a reset; the escalating window is
    // what guarantees the script still finishes anyway.
    let faulty = start_server();
    let proxy = ChaosProxy::start(
        faulty.local_addr(),
        ChaosConfig {
            reset_percent: 100,
            ..ChaosConfig::default()
        },
    )
    .unwrap();
    let (chaos_transcript, retries) = run_script(proxy.addr(), &script, true);

    assert!(
        proxy.resets() > 0,
        "chaos config produced no resets — the run proved nothing \
         (connections={})",
        proxy.connections()
    );
    assert!(
        retries > 0,
        "client rode through {} resets without retrying",
        proxy.resets()
    );

    // The transcripts must match step for step: same versions (no lost and
    // no double-applied update), same answers, same subscribe snapshots.
    assert_eq!(chaos_transcript, clean_transcript);

    // Final state seen by fresh clients must match too, and the version
    // must equal the mirror's — every scripted update committed exactly
    // once, none lost, none double-applied.
    let clean_final = final_state(clean.local_addr(), &probes);
    let chaos_final = final_state(faulty.local_addr(), &probes);
    assert_eq!(chaos_final, clean_final);
    assert!(
        clean_final
            .iter()
            .any(|line| line.contains(&format!(" v{expected_version} "))),
        "expected final version {expected_version} in:\n{clean_final:#?}"
    );

    // Odd-ordinal connections tear the *reply* path, so with this fixed
    // seed at least one update ack is severed after the server committed —
    // the retry must hit the dedup window, not re-apply.
    let dedup_hits = faulty.service().stats().reliability.update_dedup_hits;
    assert!(
        dedup_hits > 0,
        "no severed-ack replay was exercised ({} resets)",
        proxy.resets()
    );
    eprintln!(
        "chaos run: {retries} retries, {dedup_hits} dedup hits, {} resets over {} connections",
        proxy.resets(),
        proxy.connections()
    );
    drop(proxy);
    clean.shutdown();
    faulty.shutdown();
}

/// The CI smoke: overload shedding, dedup and chaos retries all leave their
/// fingerprints in the `/metrics` exposition, with zero lost or duplicated
/// updates.  Kept deliberately small — the workflow gives it < 60 s.
#[test]
fn chaos_smoke_sheds_dedups_and_retries_under_a_minute() {
    let registry = Arc::new(DatasetRegistry::new());
    registry
        .register_loaded(DATASET, initial_dataset())
        .unwrap();
    let service = Arc::new(MrqService::new(
        registry,
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    ));
    let config = ServerConfig {
        poll_interval: Duration::from_millis(25),
        max_connections: 1,
        ..ServerConfig::default()
    };
    let server = Server::start_with(service, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    // 1. Overload: while a connection holds the single slot, a second
    //    arrival is shed with the retryable busy frame; the retrying client
    //    succeeds once the holder leaves.
    let mut holder = Client::connect(addr).unwrap();
    holder.ping().unwrap();
    let held = std::thread::spawn({
        move || {
            std::thread::sleep(Duration::from_millis(200));
            drop(holder);
        }
    });
    let mut retrier = Client::connect_with_retry(addr, retry_policy()).unwrap();
    retrier.ping().unwrap();
    held.join().unwrap();
    assert!(retrier.retries_performed() > 0);

    // 2. Exactly-once: the same request_id applied twice commits once.
    let before = retrier.query(DATASET, 1).unwrap().version;
    let first = retrier
        .update_with_id(DATASET, &[vec![0.5, 0.5]], &[], Some("smoke-dup"))
        .unwrap();
    let replay = retrier
        .update_with_id(DATASET, &[vec![0.5, 0.5]], &[], Some("smoke-dup"))
        .unwrap();
    assert_eq!(first.version, replay.version);
    assert_eq!(first.version, before + 1);

    // 3. A short chaos burst: updates through the proxy, then verify none
    //    were lost or double-applied.
    drop(retrier);
    let proxy = ChaosProxy::start(
        addr,
        ChaosConfig {
            reset_percent: 50,
            ..ChaosConfig::default()
        },
    )
    .unwrap();
    let mut chaotic = Client::connect_with_retry(proxy.addr(), retry_policy()).unwrap();
    for i in 0..12 {
        chaotic
            .update_with_id(
                DATASET,
                &[vec![0.1 + 0.05 * f64::from(i), 0.3]],
                &[],
                Some(&format!("smoke-{i}")),
            )
            .unwrap();
    }
    let final_version = chaotic.query(DATASET, 1).unwrap().version;
    assert_eq!(
        final_version,
        first.version + 12,
        "chaos burst lost or duplicated an update"
    );

    // 4. The metrics exposition carries the evidence.
    let metrics = match chaotic.metrics() {
        Ok(text) => text,
        Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {
            // The scrape itself may be severed by the proxy; a direct
            // connection reads the same counters.
            Client::connect(addr).unwrap().metrics().unwrap()
        }
        Err(other) => panic!("metrics scrape failed: {other}"),
    };
    let counter = |name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(name).map(str::trim))
            .unwrap_or_else(|| panic!("{name} missing from exposition:\n{metrics}"))
            .parse()
            .unwrap()
    };
    assert!(counter("mrq_connections_shed_total") > 0);
    assert!(counter("mrq_update_dedup_hits_total") > 0);

    // The chaotic client still holds the server's single connection slot, so
    // a client-driven SHUTDOWN would itself be shed — stop the server
    // directly instead.
    drop(chaotic);
    drop(proxy);
    server.shutdown();
}
