//! Fuzz-style property tests for the hand-rolled protocol layer: the JSON
//! subset parser, `Request` decoding and the length-prefixed frame reader
//! must **never panic**, whatever bytes arrive — a serving process shares
//! its address space between all connections, so a parser panic is a
//! denial of service.  On top of the no-panic properties, every request
//! verb must survive an encode → parse round trip unchanged, and rendering
//! a parsed value must be a fixpoint.

use mrq_core::Algorithm;
use mrq_service::protocol::json::{self, Json};
use mrq_service::protocol::{read_frame, write_frame, Request};
use proptest::prelude::*;

/// Wholly arbitrary bytes (the "line noise" regime).
fn arbitrary_bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=255u8, 0..max)
}

/// Bytes folded onto the JSON alphabet, so draws routinely get past the
/// first character and stress nesting, number and escape handling instead
/// of just the "unexpected leading byte" branch.
fn jsonish_string(max: usize) -> impl Strategy<Value = String> {
    const ALPHABET: &[u8] = br#"{}[]",:0123456789.eE+-truefalsn\u "#;
    prop::collection::vec(0u8..=255u8, 0..max).prop_map(|bytes| {
        bytes
            .iter()
            .map(|b| ALPHABET[(*b as usize) % ALPHABET.len()] as char)
            .collect()
    })
}

/// A valid dataset name.
fn name_strategy() -> impl Strategy<Value = String> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-_";
    prop::collection::vec(0u8..=255u8, 1..12).prop_map(|bytes| {
        bytes
            .iter()
            .map(|b| ALPHABET[(*b as usize) % ALPHABET.len()] as char)
            .collect()
    })
}

/// Any finite `f64`, bit-pattern uniform (subnormals, huge magnitudes,
/// negative zero included) — all must survive the decimal wire format.
fn finite_f64() -> impl Strategy<Value = f64> {
    any::<u64>()
        .prop_map(f64::from_bits)
        .prop_filter("finite", |x| x.is_finite())
}

const ALGORITHMS: [Algorithm; 5] = [
    Algorithm::Auto,
    Algorithm::Fca,
    Algorithm::BasicApproach,
    Algorithm::AdvancedApproach,
    Algorithm::AdvancedApproach2D,
];

fn query_strategy() -> impl Strategy<Value = Request> {
    (
        name_strategy(),
        any::<u32>(),
        0usize..ALGORITHMS.len(),
        (0usize..4, any::<bool>(), any::<bool>(), 0u64..1_000_000),
        (1usize..9, any::<bool>(), 0usize..1000),
    )
        .prop_map(
            |(
                dataset,
                focal,
                algo,
                (tau, no_cache, has_timeout, timeout),
                (threads, has_max, max),
            )| {
                Request::Query {
                    dataset,
                    focal,
                    algorithm: ALGORITHMS[algo],
                    tau,
                    timeout_ms: has_timeout.then_some(timeout),
                    no_cache,
                    max_regions: has_max.then_some(max),
                    threads,
                }
            },
        )
}

fn subscribe_strategy() -> impl Strategy<Value = Request> {
    (
        name_strategy(),
        any::<u32>(),
        0usize..ALGORITHMS.len(),
        0usize..4,
    )
        .prop_map(|(dataset, focal, algo, tau)| Request::Subscribe {
            dataset,
            focal,
            algorithm: ALGORITHMS[algo],
            tau,
        })
}

fn unsubscribe_strategy() -> impl Strategy<Value = Request> {
    // Ids ride the JSON number lane (f64), which is exact up to 2^53.
    (0u64..=(1u64 << 53)).prop_map(|subscription| Request::Unsubscribe { subscription })
}

fn update_strategy() -> impl Strategy<Value = Request> {
    (
        name_strategy(),
        (any::<bool>(), name_strategy()),
        prop::collection::vec(prop::collection::vec(finite_f64(), 0..5), 0..4),
        prop::collection::vec(any::<u32>(), 0..5),
    )
        .prop_map(|(dataset, (with_id, id), inserts, mut deletes)| {
            if inserts.is_empty() && deletes.is_empty() {
                // The wire format rejects empty batches, so keep at least
                // one operation in every generated request.
                deletes.push(0);
            }
            Request::Update {
                dataset,
                request_id: with_id.then_some(id),
                inserts,
                deletes,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The JSON parser returns `Err`, never panics, on arbitrary byte soup.
    #[test]
    fn json_parse_never_panics_on_arbitrary_bytes(bytes in arbitrary_bytes(256)) {
        let input = String::from_utf8_lossy(&bytes);
        let _ = json::parse(&input);
    }

    /// Alphabet-weighted inputs reach the deep branches (nesting, escapes,
    /// numbers); whenever such an input *does* parse, rendering it is a
    /// fixpoint: parse(render(v)) renders identically.
    #[test]
    fn json_parse_render_is_a_fixpoint(input in jsonish_string(256)) {
        if let Ok(v) = json::parse(&input) {
            let rendered = v.to_string();
            let reparsed = json::parse(&rendered)
                .map_err(|e| TestCaseError::fail(format!("render not parseable: {e}\n{rendered}")))?;
            prop_assert_eq!(reparsed.to_string(), rendered);
        }
    }

    /// Request decoding never panics — on noise or on JSON-shaped noise.
    #[test]
    fn request_parse_never_panics(bytes in arbitrary_bytes(200), jsonish in jsonish_string(200)) {
        let _ = Request::parse(&String::from_utf8_lossy(&bytes));
        let _ = Request::parse(&jsonish);
    }

    /// The frame reader never panics on arbitrary bytes, even when asked to
    /// keep reading frames until the stream is exhausted.
    #[test]
    fn read_frame_never_panics_on_arbitrary_bytes(bytes in arbitrary_bytes(300)) {
        let mut stream: &[u8] = &bytes;
        for _ in 0..4 {
            match read_frame(&mut stream) {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// write_frame → read_frame restores any payload byte-for-byte,
    /// including newlines, NULs and replacement characters.
    #[test]
    fn frame_round_trip(bytes in arbitrary_bytes(300)) {
        let payload = String::from_utf8_lossy(&bytes).into_owned();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut stream: &[u8] = &wire;
        let got = read_frame(&mut stream).unwrap().expect("frame present");
        prop_assert_eq!(got, payload);
        prop_assert!(read_frame(&mut stream).unwrap().is_none(), "exactly one frame");
    }

    /// All eight verbs survive encode → parse unchanged — both directly and
    /// through the frame layer.
    #[test]
    fn every_verb_round_trips(
        query in query_strategy(),
        update in update_strategy(),
        subscribe in subscribe_strategy(),
        unsubscribe in unsubscribe_strategy(),
    ) {
        for request in [
            query,
            update,
            subscribe,
            unsubscribe,
            Request::Stats,
            Request::List,
            Request::Ping,
            Request::Shutdown,
        ] {
            let encoded = request.encode();
            let parsed = Request::parse(&encoded)
                .map_err(|e| TestCaseError::fail(format!("{e}\n{encoded}")))?;
            prop_assert_eq!(&parsed, &request);

            let mut wire = Vec::new();
            write_frame(&mut wire, &encoded).unwrap();
            let mut stream: &[u8] = &wire;
            let payload = read_frame(&mut stream).unwrap().expect("frame present");
            let parsed = Request::parse(&payload)
                .map_err(|e| TestCaseError::fail(format!("{e}\n{payload}")))?;
            prop_assert_eq!(&parsed, &request);
        }
    }

    /// Valid requests with random byte corruption (flips and truncation)
    /// never panic the decoder — they parse to *something* or error out.
    #[test]
    fn mutated_valid_payloads_never_panic(
        query in query_strategy(),
        update in update_strategy(),
        subscribe in subscribe_strategy(),
        unsubscribe in unsubscribe_strategy(),
        flips in prop::collection::vec((any::<usize>(), 0u8..=255u8), 1..8),
        cut in any::<usize>(),
    ) {
        for request in [query, update, subscribe, unsubscribe] {
            let mut bytes = request.encode().into_bytes();
            for (pos, val) in &flips {
                let i = pos % bytes.len();
                bytes[i] = *val;
            }
            bytes.truncate(cut % (bytes.len() + 1));
            let _ = Request::parse(&String::from_utf8_lossy(&bytes));
        }
    }
}

/// Directed (non-random) regressions the fuzz strategies would only hit by
/// luck: depth bombs, huge length prefixes, surrogate escapes.
#[test]
fn adversarial_inputs_error_cleanly() {
    // A nesting bomb must hit the depth cap, not the stack guard.
    let bomb = format!("{}1{}", "[".repeat(10_000), "]".repeat(10_000));
    assert!(json::parse(&bomb).is_err());

    // Lone surrogates are rejected; a conforming pair combines.
    assert!(json::parse(r#""\ud800""#).is_err());
    assert!(json::parse(r#""\udc00""#).is_err());
    assert!(json::parse(r#""\ud83d_""#).is_err());
    // Direct UTF-8 and an escaped surrogate pair decode to the same char.
    assert_eq!(json::parse(r#""😀""#).unwrap(), Json::Str("😀".to_string()));
    let pair = format!(r#""{bs}ud83d{bs}ude00""#, bs = '\\');
    assert_eq!(json::parse(&pair).unwrap(), Json::Str("😀".to_string()));

    // A frame whose header promises more than the cap must error, not
    // allocate 16 GiB.
    let mut stream: &[u8] = b"17179869184\nx";
    assert!(read_frame(&mut stream).is_err());

    // Unknown verbs and non-object payloads error without panicking.
    assert!(Request::parse("[1,2,3]").is_err());
    assert!(Request::parse("{\"cmd\":\"nope\"}").is_err());
    assert!(Request::parse("").is_err());
}
