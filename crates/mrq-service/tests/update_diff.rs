//! The differential update harness — the acceptance test of the mutation
//! subsystem.
//!
//! A scripted but seed-randomized interleaving of `UPDATE` batches and
//! queries runs against one `MrqService` while a *mirror* dataset replays
//! the same updates outside the service.  After every query the harness
//! bulk-loads a fresh R\*-tree over the mirror and evaluates the same
//! (focal, algorithm, τ) single-threadedly: the service answer — whether it
//! came from the worker pool, a coalesced batch or the result cache — must
//! be semantically identical, and must carry exactly the mirror's current
//! version.  Because cache keys embed the dataset version, any stale cache
//! hit would either carry the wrong version (caught by the version
//! assertion) or the wrong content (caught by the fingerprint comparison).
//!
//! A second phase enqueues queries, applies an update *while they may still
//! be queued*, then enqueues more: each answer must match a fresh
//! evaluation at the version it reports, proving in-flight queries finish
//! on the snapshot they validated against while later ones see the new one.

mod common;

use common::{assert_witnesses_hold, fingerprint, fresh_eval, random_batch};
use mrq_core::Algorithm;
use mrq_data::{synthetic, Dataset, Distribution};
use mrq_service::{DatasetRegistry, MrqService, QueryRequest, ServiceConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

fn run_script(d: usize, dist: Distribution, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mirror = synthetic::generate(dist, 40, d, &mut rng);
    let registry = Arc::new(DatasetRegistry::new());
    registry.register_loaded("dyn", mirror.clone()).unwrap();
    let service = MrqService::new(
        Arc::clone(&registry),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let algorithms: &[Algorithm] = if d == 2 {
        &[
            Algorithm::Fca,
            Algorithm::BasicApproach,
            Algorithm::AdvancedApproach,
            Algorithm::AdvancedApproach2D,
        ]
    } else {
        &[Algorithm::BasicApproach, Algorithm::AdvancedApproach]
    };
    // Every dataset state a query can have validated against, by version.
    let mut by_version: HashMap<u64, Dataset> = HashMap::new();
    by_version.insert(0, mirror.clone());

    // Phase 1: synchronous interleaving.  Every answer must be computed at
    // the *current* version and equal a fresh evaluation on a rebuilt index.
    for _ in 0..28 {
        if rng.gen_bool(0.4) {
            let batch = random_batch(&mirror, &mut rng);
            let outcome = service.update("dyn", &batch).unwrap();
            for update in &batch {
                mirror.apply(update).unwrap();
            }
            assert_eq!(outcome.version, mirror.version());
            assert_eq!(outcome.records, mirror.live_len());
            by_version.insert(mirror.version(), mirror.clone());
        } else {
            let live: Vec<u32> = mirror.iter().map(|(id, _)| id).collect();
            let focal = live[rng.gen_range(0..live.len())];
            let algorithm = algorithms[rng.gen_range(0..algorithms.len())];
            let tau = rng.gen_range(0..2usize);
            let answer = service
                .query(&QueryRequest {
                    algorithm,
                    tau,
                    ..QueryRequest::new("dyn", focal)
                })
                .unwrap();
            assert_eq!(
                answer.version,
                mirror.version(),
                "an answer must never come from an older dataset version"
            );
            let fresh = fresh_eval(&mirror, focal, algorithm, tau);
            assert_eq!(
                fingerprint(&answer.result),
                fingerprint(&fresh),
                "service answer (cached={}) diverged from a fresh rebuild at \
                 version {} (focal {focal}, {algorithm:?}, tau {tau})",
                answer.cached,
                mirror.version()
            );
            assert_witnesses_hold(&answer.result, &mirror, focal);
        }
    }

    // Phase 2: queries in flight across an update.  Answers report which
    // snapshot they ran on; each must match a rebuild of *that* state.
    let live: Vec<u32> = mirror.iter().map(|(id, _)| id).collect();
    let before: Vec<_> = (0..4)
        .map(|i| {
            let focal = live[i % live.len()];
            (
                focal,
                service
                    .enqueue(&QueryRequest::new("dyn", focal))
                    .expect("enqueue before update"),
            )
        })
        .collect();
    let batch = random_batch(&mirror, &mut rng);
    service.update("dyn", &batch).unwrap();
    for update in &batch {
        mirror.apply(update).unwrap();
    }
    by_version.insert(mirror.version(), mirror.clone());
    let live_after: Vec<u32> = mirror.iter().map(|(id, _)| id).collect();
    let after: Vec<_> = (0..4)
        .map(|i| {
            let focal = live_after[(i + 1) % live_after.len()];
            (
                focal,
                service
                    .enqueue(&QueryRequest::new("dyn", focal))
                    .expect("enqueue after update"),
            )
        })
        .collect();
    for (focal, pending) in before.into_iter().chain(after) {
        let answer = pending.wait().unwrap();
        let state = by_version
            .get(&answer.version)
            .expect("answers only ever carry registered versions");
        let fresh = fresh_eval(state, focal, Algorithm::Auto, 0);
        assert_eq!(
            fingerprint(&answer.result),
            fingerprint(&fresh),
            "in-flight answer diverged at version {} (focal {focal})",
            answer.version
        );
        assert_witnesses_hold(&answer.result, state, focal);
    }

    // Phase 3: the cache is alive and correct at the final version — the
    // same request twice must hit, still matching a fresh evaluation.
    let focal = live_after[0];
    let first = service.query(&QueryRequest::new("dyn", focal)).unwrap();
    let second = service.query(&QueryRequest::new("dyn", focal)).unwrap();
    assert!(second.cached, "a repeat at a stable version must hit");
    assert_eq!(second.version, mirror.version());
    assert!(Arc::ptr_eq(&first.result, &second.result));
    let fresh = fresh_eval(&mirror, focal, Algorithm::Auto, 0);
    assert_eq!(fingerprint(&second.result), fingerprint(&fresh));
    assert!(service.stats().cache.hits > 0);
    service.shutdown();
}

#[test]
fn interleaved_updates_and_queries_match_rebuilds_2d() {
    run_script(2, Distribution::Independent, 20150801);
    run_script(2, Distribution::AntiCorrelated, 42);
}

#[test]
fn interleaved_updates_and_queries_match_rebuilds_3d() {
    run_script(3, Distribution::Correlated, 7);
    run_script(3, Distribution::Independent, 2015);
}
