//! End-to-end loopback test: a real TCP server on an ephemeral port, driven
//! by concurrent clients, checked against fresh single-threaded evaluation.
//!
//! This is the acceptance test of the serving layer: every answer produced
//! through registry → queue → pool → cache must equal what a brand-new
//! `MaxRankQuery` computes on its own thread, and a repeated-focal workload
//! must actually exercise the result cache.

use mrq_core::{MaxRankConfig, MaxRankQuery};
use mrq_service::{
    Client, DatasetRegistry, DatasetSpec, MrqService, QueryReply, Server, ServiceConfig,
};
use std::collections::HashMap;
use std::sync::Arc;

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 12;
/// Focal ids deliberately smaller than the total query count so every client
/// revisits focals and the cache sees repeats.
const FOCALS: [u32; 6] = [1, 17, 42, 99, 150, 237];

fn start_server() -> (Server, DatasetSpec) {
    let spec = DatasetSpec::Synthetic {
        dist: mrq_data::Distribution::Independent,
        n: 300,
        d: 3,
        seed: 2015,
    };
    let registry = Arc::new(DatasetRegistry::new());
    registry.register("bench", &spec).unwrap();
    let service = Arc::new(MrqService::new(
        registry,
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 32,
            ..ServiceConfig::default()
        },
    ));
    (Server::start(service, "127.0.0.1:0").unwrap(), spec)
}

/// Fresh, single-threaded reference answers, one engine per call site.
fn reference_answers(spec: &DatasetSpec) -> HashMap<u32, (usize, usize, Vec<usize>)> {
    let data = spec.materialize().unwrap();
    let tree = mrq_index::RStarTree::bulk_load(&data);
    let engine = MaxRankQuery::new(&data, &tree);
    FOCALS
        .iter()
        .map(|&focal| {
            let res = engine.evaluate(focal, &MaxRankConfig::new());
            let orders: Vec<usize> = res.regions.iter().map(|r| r.order).collect();
            (focal, (res.k_star, res.region_count(), orders))
        })
        .collect()
}

fn check_reply(
    reply: &QueryReply,
    focal: u32,
    reference: &HashMap<u32, (usize, usize, Vec<usize>)>,
) {
    let (k_star, region_count, orders) = &reference[&focal];
    assert_eq!(reply.k_star, *k_star, "focal {focal}: k* mismatch");
    assert_eq!(
        reply.region_count, *region_count,
        "focal {focal}: |T| mismatch"
    );
    assert_eq!(
        &reply.orders, orders,
        "focal {focal}: region orders mismatch"
    );
    assert_eq!(reply.witnesses.len(), *region_count);
    for w in &reply.witnesses {
        assert_eq!(w.len(), 3, "witnesses are full-dimensional");
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|x| *x > 0.0));
    }
}

#[test]
fn concurrent_clients_agree_with_fresh_evaluation_and_hit_the_cache() {
    let (server, spec) = start_server();
    let addr = server.local_addr();
    let reference = Arc::new(reference_answers(&spec));

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let reference = Arc::clone(&reference);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for q in 0..QUERIES_PER_CLIENT {
                    // Interleave focals differently per client so requests
                    // overlap across connections (coalescing + cache races).
                    let focal = FOCALS[(c + q) % FOCALS.len()];
                    let reply = client.query("bench", focal).expect("query");
                    check_reply(&reply, focal, &reference);
                }
            });
        }
    });

    // Repeated-focal workload ⇒ the cache must have served real hits.
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    let total = (CLIENTS * QUERIES_PER_CLIENT) as u64;
    assert_eq!(stats.cache.hits + stats.cache.misses, total);
    assert!(
        stats.cache.hits > 0,
        "repeated-focal workload must produce cache hits: {stats:?}"
    );
    // Only 6 distinct keys exist; concurrent clients may race to fill the
    // same key (both miss before either inserts), so misses can exceed 6 —
    // but the vast majority of this workload must still be cache-served.
    assert!(
        stats.cache.hits >= total / 2,
        "a 6-key repeated workload should be mostly hits: {stats:?}"
    );
    assert_eq!(stats.pool.executed, stats.cache.misses);
    assert_eq!(stats.datasets, vec!["bench".to_string()]);

    // Cached answers still equal fresh evaluation (spot check).
    let reply = client.query("bench", FOCALS[0]).unwrap();
    assert!(reply.cached);
    check_reply(&reply, FOCALS[0], &reference);

    server.shutdown();
}

#[test]
fn shutdown_via_protocol_drains_cleanly() {
    let (server, _) = start_server();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.query("bench", 3).unwrap();
    client.shutdown_server().unwrap();
    // `wait` joins the accept thread, every connection thread and the pool;
    // returning at all *is* the assertion of a clean shutdown.
    server.wait();
}
