//! The crash-injection differential harness — the acceptance test of the
//! durability subsystem.
//!
//! A child process (this same test binary, re-executed with the
//! `MRQ_CRASH_CHILD` environment set) runs a **deterministic, seeded**
//! interleaving of `UPDATE` batches and queries against a durably registered
//! dataset, and dies in one of three ways:
//!
//! * killed cold with `SIGKILL` at a parent-chosen moment,
//! * aborted **mid-WAL-append** through the `MRQ_STORAGE_CRASH_WAL_BYTES`
//!   fault hook (a genuinely torn record, fsynced partially, then
//!   `std::process::abort`),
//! * or a clean exit, after which the parent additionally truncates a copy
//!   of the WAL at arbitrary byte offsets.
//!
//! The parent then recovers the store and replays the *same* seeded script
//! against an in-memory mirror up to the recovered version.  Because every
//! script step is a pure function of the shared RNG and the mirror state,
//! the recovered dataset must equal the mirror **exactly** — any batch that
//! was acknowledged but lost, resurrected half-applied, or replayed with
//! drifted insert ids shows up as an inequality.  On top of the state
//! check, served answers after recovery are compared against fresh
//! single-shot evaluations on the mirror (same fingerprints and witnesses
//! as `update_diff.rs`), and every recovery is performed twice to prove
//! replay is idempotent.
//!
//! Seeds are pinned (CI runs them all); set `MRQ_CRASH_SEEDS` to a
//! comma-separated list to override.

mod common;

use common::{assert_witnesses_hold, fingerprint, fresh_eval, random_batch};
use mrq_core::Algorithm;
use mrq_data::storage::{DatasetStore, RecoveryReport};
use mrq_data::{synthetic, Dataset, Distribution, Update};
use mrq_service::{DatasetRegistry, DurabilityOptions, MrqService, QueryRequest, ServiceConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

const DATASET: &str = "dyn";
const INITIAL_N: usize = 32;
const DIMS: usize = 3;

/// The pinned seed set, overridable via `MRQ_CRASH_SEEDS=1,2,3`.
fn seeds() -> Vec<u64> {
    match std::env::var("MRQ_CRASH_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(|t| t.parse().expect("MRQ_CRASH_SEEDS: comma-separated u64s"))
            .collect(),
        Err(_) => vec![0xC0FFEE, 11, 20150801],
    }
}

/// A scratch directory unique to this process and tag.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mrq_crash_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The initial dataset and the script RNG, both derived from one seed.  The
/// generator consumes draws, so child and parent must call this the same
/// way to stay aligned.
fn initial_dataset(seed: u64) -> (Dataset, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = synthetic::generate(Distribution::Independent, INITIAL_N, DIMS, &mut rng);
    (data, rng)
}

/// One step of the workload script.
enum Action {
    Update(Vec<Update>),
    Query(u32),
}

/// Draws the next step.  Pure in (mirror state, RNG): the child executes
/// the action, the parent replays only the updates — but both *draw* the
/// query focals, keeping the two RNG streams in lockstep.
fn script_step(mirror: &Dataset, rng: &mut StdRng) -> Action {
    if rng.gen_bool(0.6) {
        Action::Update(random_batch(mirror, rng))
    } else {
        let live: Vec<u32> = mirror.iter().map(|(id, _)| id).collect();
        Action::Query(live[rng.gen_range(0..live.len())])
    }
}

/// Spawns the workload child: this same test binary, filtered down to
/// [`crash_child`], with the script parameters in the environment.
/// `steps == 0` means "run until killed".
fn spawn_child(dir: &Path, seed: u64, steps: usize, extra_env: &[(&str, String)]) -> Child {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.arg("crash_child")
        .arg("--exact")
        .arg("--test-threads=1")
        .env("MRQ_CRASH_CHILD", "1")
        .env("MRQ_CRASH_SEED", seed.to_string())
        .env("MRQ_CRASH_DIR", dir)
        .env("MRQ_CRASH_STEPS", steps.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn crash child")
}

/// The workload body, run **only** in the re-executed child (a no-op test
/// in a normal run).  Applies the seeded script through a durably
/// registered service until it is told to stop — or until the parent kills
/// it, or the storage fault hook aborts it mid-append.
#[test]
fn crash_child() {
    if std::env::var("MRQ_CRASH_CHILD").is_err() {
        return;
    }
    let seed: u64 = std::env::var("MRQ_CRASH_SEED").unwrap().parse().unwrap();
    let dir = PathBuf::from(std::env::var("MRQ_CRASH_DIR").unwrap());
    let steps: usize = std::env::var("MRQ_CRASH_STEPS").unwrap().parse().unwrap();
    let checkpoint_wal_bytes: u64 = std::env::var("MRQ_CRASH_CHECKPOINT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DurabilityOptions::default().checkpoint_wal_bytes);

    let (initial, mut rng) = initial_dataset(seed);
    let registry = Arc::new(DatasetRegistry::new());
    registry
        .register_loaded_durable(
            DATASET,
            initial.clone(),
            &dir,
            DurabilityOptions {
                checkpoint_wal_bytes,
            },
        )
        .unwrap();
    let service = MrqService::new(
        Arc::clone(&registry),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let mut mirror = initial;
    let mut step = 0usize;
    loop {
        match script_step(&mirror, &mut rng) {
            Action::Update(batch) => {
                service.update(DATASET, &batch).unwrap();
                for update in &batch {
                    mirror.apply(update).unwrap();
                }
            }
            Action::Query(focal) => {
                service
                    .query(&QueryRequest::new(DATASET, focal))
                    .expect("child query");
            }
        }
        step += 1;
        if steps != 0 && step >= steps {
            break;
        }
    }
    service.shutdown();
}

/// Recovers the store at `dir` and differentials it against a from-scratch
/// replay of the same seeded script:
///
/// 1. the recovered version must fall **on a batch boundary** of the script
///    (atomicity: no half-applied batch survives a crash),
/// 2. the recovered dataset must equal the mirror replayed to that version
///    (no committed batch lost, none resurrected, no insert-id drift),
/// 3. the recovered R\*-tree passes its structural invariants,
/// 4. served answers equal fresh single-shot evaluations on the mirror.
fn recover_and_verify(dir: &Path, seed: u64) -> (u64, Option<RecoveryReport>) {
    let (initial, mut rng) = initial_dataset(seed);
    let registry = Arc::new(DatasetRegistry::new());
    let (entry, report) = registry
        .register_loaded_durable(DATASET, initial.clone(), dir, DurabilityOptions::default())
        .unwrap();
    let recovered_version = entry.version();

    let mut mirror = initial;
    let mut guard = 0u32;
    while mirror.version() < recovered_version {
        if let Action::Update(batch) = script_step(&mirror, &mut rng) {
            for update in &batch {
                mirror.apply(update).unwrap();
            }
        }
        guard += 1;
        assert!(
            guard < 1_000_000,
            "recovered version {recovered_version} is not reachable by the script"
        );
    }
    assert_eq!(
        mirror.version(),
        recovered_version,
        "recovered version {recovered_version} falls inside a batch: \
         a crash must never commit half a batch"
    );
    assert_eq!(
        entry.data(),
        &mirror,
        "recovered dataset diverged from the in-memory replay at version {recovered_version} \
         (seed {seed})"
    );
    entry.tree().check_invariants().unwrap();

    let service = MrqService::new(
        Arc::clone(&registry),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let live: Vec<u32> = mirror.iter().map(|(id, _)| id).collect();
    let stride = (live.len() / 4).max(1);
    for (i, &focal) in live.iter().step_by(stride).enumerate() {
        let algorithm = [
            Algorithm::BasicApproach,
            Algorithm::AdvancedApproach,
            Algorithm::Auto,
        ][i % 3];
        let tau = i % 2;
        let answer = service
            .query(&QueryRequest {
                algorithm,
                tau,
                ..QueryRequest::new(DATASET, focal)
            })
            .unwrap();
        assert_eq!(answer.version, recovered_version);
        let fresh = fresh_eval(&mirror, focal, algorithm, tau);
        assert_eq!(
            fingerprint(&answer.result),
            fingerprint(&fresh),
            "post-recovery answer diverged from a fresh rebuild at version \
             {recovered_version} (seed {seed}, focal {focal}, {algorithm:?}, tau {tau})"
        );
        assert_witnesses_hold(&answer.result, &mirror, focal);
    }
    service.shutdown();
    (recovered_version, report)
}

/// SIGKILL at a parent-chosen moment, with an aggressive checkpoint
/// threshold so kills also land around snapshot-rewrite/log-truncate
/// windows.  Recovery must land on a committed batch boundary and match
/// the replayed mirror; recovering twice must agree (idempotent replay).
#[test]
fn sigkill_mid_run_recovers_a_committed_prefix() {
    for seed in seeds() {
        let dir = scratch_dir(&format!("sigkill_{seed}"));
        let mut child = spawn_child(
            &dir,
            seed,
            0,
            &[("MRQ_CRASH_CHECKPOINT", "2048".to_string())],
        );
        std::thread::sleep(Duration::from_millis(40 + (seed % 5) * 45));
        child.kill().expect("SIGKILL the workload child");
        child.wait().unwrap();

        let (version, _) = recover_and_verify(&dir, seed);
        let (again, report) = recover_and_verify(&dir, seed);
        assert_eq!(again, version, "recovery must be idempotent (seed {seed})");
        let report = report.expect("second open recovers an existing store");
        assert_eq!(
            report.torn_bytes_discarded, 0,
            "the first recovery already repaired the tail"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Death **inside** a WAL append: the storage fault hook writes a partial
/// record (fsynced!) and aborts, so the log genuinely ends mid-record.
/// Recovery must discard exactly that torn tail and keep every previously
/// acknowledged batch.
#[test]
fn abort_mid_wal_append_discards_only_the_torn_tail() {
    for seed in seeds() {
        let dir = scratch_dir(&format!("abort_{seed}"));
        // Post-header byte budget before the hook tears an append; the
        // default (large) checkpoint threshold keeps the log growing
        // monotonically toward it.
        let budget = 150 + (seed % 997);
        let mut child = spawn_child(
            &dir,
            seed,
            0,
            &[("MRQ_STORAGE_CRASH_WAL_BYTES", budget.to_string())],
        );
        let status = child.wait().unwrap();
        assert!(
            !status.success(),
            "the child must die by abort, not exit cleanly (seed {seed})"
        );

        let (version, report) = recover_and_verify(&dir, seed);
        let report = report.expect("the initial snapshot always exists");
        assert_eq!(report.version, version);
        // The budget admits at least one whole batch (a max-size 3-op batch
        // is ~110 bytes), so some committed history must survive the abort.
        assert!(version > 0, "no batch committed before the abort");
        // The cut usually lands mid-record; when it happens to fall on a
        // record boundary the tail is empty — both are legal, silently
        // losing a *committed* batch is not (checked by the differential).
        let (again, _) = recover_and_verify(&dir, seed);
        assert_eq!(again, version);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A clean run, then the WAL of a copy of the store is truncated at
/// arbitrary (seeded) byte offsets — including inside the header and at
/// offset 0.  Every truncation point must recover to exactly the committed
/// prefix the surviving bytes describe.
#[test]
fn wal_truncated_at_arbitrary_offsets_recovers_the_surviving_prefix() {
    for seed in seeds() {
        let dir = scratch_dir(&format!("trunc_{seed}"));
        // Checkpoints disabled: the whole history stays in the WAL, so a
        // cut can land anywhere in it.
        let status = spawn_child(
            &dir,
            seed,
            40,
            &[("MRQ_CRASH_CHECKPOINT", u64::MAX.to_string())],
        )
        .wait()
        .unwrap();
        assert!(status.success(), "clean child run failed (seed {seed})");

        let (full_version, _) = recover_and_verify(&dir, seed);
        let wal = std::fs::read(DatasetStore::wal_path(&dir.join(DATASET))).unwrap();
        let snapshot = std::fs::read(DatasetStore::snapshot_path(&dir.join(DATASET))).unwrap();

        let mut cut_rng = StdRng::seed_from_u64(seed ^ 0x7A11);
        for case in 0..8 {
            let cut = cut_rng.gen_range(0..=wal.len());
            let tdir = scratch_dir(&format!("trunc_{seed}_{case}"));
            let store_dir = tdir.join(DATASET);
            std::fs::create_dir_all(&store_dir).unwrap();
            std::fs::write(DatasetStore::snapshot_path(&store_dir), &snapshot).unwrap();
            std::fs::write(DatasetStore::wal_path(&store_dir), &wal[..cut]).unwrap();

            let (version, _) = recover_and_verify(&tdir, seed);
            assert!(
                version <= full_version,
                "a truncated log cannot recover beyond the full history"
            );
            std::fs::remove_dir_all(&tdir).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// No crash at all: restart-and-resume plus explicit checkpointing, driven
/// through the service layer, with the durability counters checked along
/// the way.
#[test]
fn clean_restart_resumes_the_log_and_checkpoint_empties_it() {
    let seed = seeds()[0];
    let dir = scratch_dir("clean_restart");
    let (initial, mut rng) = initial_dataset(seed);

    // Life 1: create the store, commit a few batches.
    let mut mirror = initial.clone();
    {
        let registry = Arc::new(DatasetRegistry::new());
        let (_, report) = registry
            .register_loaded_durable(DATASET, initial.clone(), &dir, DurabilityOptions::default())
            .unwrap();
        assert!(report.is_none(), "first registration creates, not recovers");
        let service = MrqService::new(Arc::clone(&registry), ServiceConfig::default());
        for _ in 0..5 {
            let batch = random_batch(&mirror, &mut rng);
            service.update(DATASET, &batch).unwrap();
            for update in &batch {
                mirror.apply(update).unwrap();
            }
        }
        let stats = service.stats().durability;
        assert_eq!(stats.durable_datasets, 1);
        assert_eq!(stats.wal_appends, 5);
        assert!(stats.wal_appended_bytes > 0);
        assert_eq!(stats.recovered_datasets, 0);
        service.shutdown();
    }

    // Life 2: recover (pure WAL replay), commit more, checkpoint on the
    // way out.
    {
        let registry = Arc::new(DatasetRegistry::new());
        let (entry, report) = registry
            .register_loaded_durable(DATASET, initial.clone(), &dir, DurabilityOptions::default())
            .unwrap();
        let report = report.expect("second registration recovers");
        assert_eq!(report.batches_replayed, 5);
        assert_eq!(entry.data(), &mirror);
        let service = MrqService::new(Arc::clone(&registry), ServiceConfig::default());
        for _ in 0..3 {
            let batch = random_batch(&mirror, &mut rng);
            service.update(DATASET, &batch).unwrap();
            for update in &batch {
                mirror.apply(update).unwrap();
            }
        }
        let stats = service.stats().durability;
        assert_eq!(stats.recovered_datasets, 1);
        assert_eq!(stats.wal_batches_replayed, 5);
        assert_eq!(registry.checkpoint_all().unwrap(), 1);
        assert_eq!(service.stats().durability.checkpoints, 1);
        service.shutdown();
    }

    // Life 3: the checkpoint made restart a pure snapshot load.
    {
        let registry = Arc::new(DatasetRegistry::new());
        let (entry, report) = registry
            .register_loaded_durable(DATASET, initial, &dir, DurabilityOptions::default())
            .unwrap();
        let report = report.expect("recovers from the checkpointed snapshot");
        assert_eq!(report.batches_replayed, 0);
        assert_eq!(report.snapshot_version, mirror.version());
        assert_eq!(entry.data(), &mirror);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
