//! Prometheus-format observability: the text renderer behind the `metrics`
//! protocol verb and the plain-HTTP scrape listener behind `--metrics-port`.
//!
//! The renderer emits the [text exposition format] by hand, like the rest of
//! the std-only stack: one `# HELP` / `# TYPE` pair per family, then the
//! samples.  Every counter the system keeps is exported — result-cache
//! hits/misses/evictions, worker-pool throughput and rejections, per-dataset
//! lifetime query totals, durability (WAL/checkpoint) counters, and
//! subscription triage tallies.  Values are written through `u64`/`usize`
//! `Display`, never through the JSON writer's `f64` path, so counters stay
//! **integer-exact past 2^53** (the `STATS` JSON verb cannot promise that;
//! this endpoint can and tests pin it).
//!
//! The listener speaks just enough HTTP/1.0 for `curl` and a Prometheus
//! scraper: `GET /metrics` → `200` with `text/plain; version=0.0.4`,
//! anything else → `404`.  Scrapes are served one at a time on the accept
//! thread — a scrape is a read-only stats snapshot and a small write, and
//! metrics ports are not exposed to untrusted peers.
//!
//! [text exposition format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::service::{MrqService, ServiceStats};
use crate::sync::lock_or_recover;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The `Content-Type` of the exposition format.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Incremental writer for one exposition document.
struct Exposition {
    out: String,
}

impl Exposition {
    fn new() -> Self {
        Self { out: String::new() }
    }

    /// Starts a metric family: `# HELP` + `# TYPE` lines.
    fn family(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// One unlabelled sample.  `u64::Display` keeps the value integer-exact.
    fn sample(&mut self, name: &str, value: u64) {
        let _ = writeln!(self.out, "{name} {value}");
    }

    /// One sample labelled with the dataset name.
    fn dataset_sample(&mut self, name: &str, dataset: &str, value: u64) {
        let _ = write!(self.out, "{name}{{dataset=\"");
        // Label-value escaping per the exposition format: backslash, quote
        // and newline.
        for c in dataset.chars() {
            match c {
                '\\' => self.out.push_str("\\\\"),
                '"' => self.out.push_str("\\\""),
                '\n' => self.out.push_str("\\n"),
                c => self.out.push(c),
            }
        }
        let _ = writeln!(self.out, "\"}} {value}");
    }
}

/// Renders the full Prometheus exposition text for one stats snapshot.
pub fn render_metrics(stats: &ServiceStats) -> String {
    let mut e = Exposition::new();

    // Result cache.
    e.family(
        "mrq_cache_hits_total",
        "counter",
        "Result-cache lookups answered from the cache.",
    );
    e.sample("mrq_cache_hits_total", stats.cache.hits);
    e.family(
        "mrq_cache_misses_total",
        "counter",
        "Result-cache lookups that missed.",
    );
    e.sample("mrq_cache_misses_total", stats.cache.misses);
    e.family(
        "mrq_cache_evictions_total",
        "counter",
        "Entries evicted from the result cache to make room.",
    );
    e.sample("mrq_cache_evictions_total", stats.cache.evictions);
    e.family(
        "mrq_cache_evictions_stale_total",
        "counter",
        "Entries purged because their dataset moved past their version.",
    );
    e.sample(
        "mrq_cache_evictions_stale_total",
        stats.cache.evictions_stale,
    );
    e.family(
        "mrq_cache_entries",
        "gauge",
        "Entries currently resident in the result cache.",
    );
    e.sample("mrq_cache_entries", stats.cache.len as u64);
    e.family(
        "mrq_cache_capacity",
        "gauge",
        "Result-cache capacity (0 = caching disabled).",
    );
    e.sample("mrq_cache_capacity", stats.cache.capacity as u64);

    // Worker pool.
    e.family(
        "mrq_pool_workers",
        "gauge",
        "Worker threads in the query pool.",
    );
    e.sample("mrq_pool_workers", stats.pool.workers as u64);
    e.family(
        "mrq_pool_queue_capacity",
        "gauge",
        "Bounded queue capacity of the query pool.",
    );
    e.sample("mrq_pool_queue_capacity", stats.pool.queue_capacity as u64);
    e.family(
        "mrq_pool_queue_depth",
        "gauge",
        "Jobs currently queued in the query pool.",
    );
    e.sample("mrq_pool_queue_depth", stats.pool.queue_depth as u64);
    e.family(
        "mrq_pool_jobs_executed_total",
        "counter",
        "Jobs evaluated by the pool (cache hits and rejections excluded).",
    );
    e.sample("mrq_pool_jobs_executed_total", stats.pool.executed);
    e.family(
        "mrq_pool_jobs_coalesced_total",
        "counter",
        "Jobs that rode along in a coalesced same-dataset batch.",
    );
    e.sample("mrq_pool_jobs_coalesced_total", stats.pool.coalesced);
    e.family(
        "mrq_pool_jobs_timed_out_total",
        "counter",
        "Jobs whose deadline had already passed at dequeue time.",
    );
    e.sample("mrq_pool_jobs_timed_out_total", stats.pool.timed_out);
    e.family(
        "mrq_pool_jobs_deadline_rejected_total",
        "counter",
        "Jobs rejected by the second deadline check, between cache lookup and evaluation.",
    );
    e.sample(
        "mrq_pool_jobs_deadline_rejected_total",
        stats.pool.deadline_rejected,
    );

    // Per-dataset lifetime query totals.
    e.family(
        "mrq_dataset_queries_total",
        "counter",
        "Queries evaluated per dataset (cache hits excluded).",
    );
    for d in &stats.per_dataset {
        e.dataset_sample("mrq_dataset_queries_total", &d.dataset, d.queries);
    }
    e.family(
        "mrq_dataset_cache_hits_total",
        "counter",
        "Queries answered from the result cache per dataset.",
    );
    for d in &stats.per_dataset {
        e.dataset_sample("mrq_dataset_cache_hits_total", &d.dataset, d.cache_hits);
    }
    e.family(
        "mrq_dataset_cpu_microseconds_total",
        "counter",
        "CPU time spent evaluating queries per dataset, in microseconds.",
    );
    for d in &stats.per_dataset {
        e.dataset_sample("mrq_dataset_cpu_microseconds_total", &d.dataset, d.cpu_us);
    }
    e.family(
        "mrq_dataset_io_reads_total",
        "counter",
        "Simulated page reads per dataset (the paper's I/O model).",
    );
    for d in &stats.per_dataset {
        e.dataset_sample("mrq_dataset_io_reads_total", &d.dataset, d.io_reads);
    }
    e.family(
        "mrq_dataset_cells_tested_total",
        "counter",
        "Candidate cells decided per dataset (witness cache or LP).",
    );
    for d in &stats.per_dataset {
        e.dataset_sample("mrq_dataset_cells_tested_total", &d.dataset, d.cells_tested);
    }
    e.family(
        "mrq_dataset_lp_calls_total",
        "counter",
        "Simplex LPs solved per dataset.",
    );
    for d in &stats.per_dataset {
        e.dataset_sample("mrq_dataset_lp_calls_total", &d.dataset, d.lp_calls);
    }
    e.family(
        "mrq_dataset_witness_hits_total",
        "counter",
        "Candidates proven non-empty by a cached witness per dataset.",
    );
    for d in &stats.per_dataset {
        e.dataset_sample("mrq_dataset_witness_hits_total", &d.dataset, d.witness_hits);
    }

    // Durability.
    e.family(
        "mrq_durable_datasets",
        "gauge",
        "Datasets currently backed by an on-disk store.",
    );
    e.sample("mrq_durable_datasets", stats.durability.durable_datasets);
    e.family(
        "mrq_recovered_datasets_total",
        "counter",
        "Datasets recovered from an existing store at registration time.",
    );
    e.sample(
        "mrq_recovered_datasets_total",
        stats.durability.recovered_datasets,
    );
    e.family(
        "mrq_wal_batches_replayed_total",
        "counter",
        "WAL batches replayed across all recoveries.",
    );
    e.sample(
        "mrq_wal_batches_replayed_total",
        stats.durability.wal_batches_replayed,
    );
    e.family(
        "mrq_wal_torn_bytes_discarded_total",
        "counter",
        "Torn WAL tail bytes discarded across all recoveries.",
    );
    e.sample(
        "mrq_wal_torn_bytes_discarded_total",
        stats.durability.torn_bytes_discarded,
    );
    e.family(
        "mrq_recovery_pages_read_total",
        "counter",
        "Real 4 KiB pages read from disk during recovery.",
    );
    e.sample(
        "mrq_recovery_pages_read_total",
        stats.durability.recovery_pages_read,
    );
    e.family(
        "mrq_wal_appends_total",
        "counter",
        "Update batches appended (and fsynced) to write-ahead logs.",
    );
    e.sample("mrq_wal_appends_total", stats.durability.wal_appends);
    e.family(
        "mrq_wal_appended_bytes_total",
        "counter",
        "Bytes appended to write-ahead logs.",
    );
    e.sample(
        "mrq_wal_appended_bytes_total",
        stats.durability.wal_appended_bytes,
    );
    e.family(
        "mrq_checkpoints_total",
        "counter",
        "Checkpoints taken (snapshot rewrite + WAL truncation).",
    );
    e.sample("mrq_checkpoints_total", stats.durability.checkpoints);

    // Standing queries.
    e.family(
        "mrq_subscriptions_active",
        "gauge",
        "Currently registered subscriptions.",
    );
    e.sample("mrq_subscriptions_active", stats.subscriptions.active);
    e.family(
        "mrq_subscription_deltas_triaged_total",
        "counter",
        "Delta records examined by the subscription triage pass.",
    );
    e.sample(
        "mrq_subscription_deltas_triaged_total",
        stats.subscriptions.deltas_triaged,
    );
    e.family(
        "mrq_subscription_unaffected_skips_total",
        "counter",
        "Deltas certified unaffected without touching the index.",
    );
    e.sample(
        "mrq_subscription_unaffected_skips_total",
        stats.subscriptions.unaffected_skips,
    );
    e.family(
        "mrq_subscription_partial_repairs_total",
        "counter",
        "Deltas resolved by an arithmetic rank shift.",
    );
    e.sample(
        "mrq_subscription_partial_repairs_total",
        stats.subscriptions.partial_repairs,
    );
    e.family(
        "mrq_subscription_full_reevals_total",
        "counter",
        "Full re-evaluations forced by a delta crossing a resident region.",
    );
    e.sample(
        "mrq_subscription_full_reevals_total",
        stats.subscriptions.full_reevals,
    );

    // Overload control and exactly-once retries.
    e.family(
        "mrq_connections_shed_total",
        "counter",
        "Connections rejected at accept time with a retryable busy frame.",
    );
    e.sample(
        "mrq_connections_shed_total",
        stats.reliability.connections_shed,
    );
    e.family(
        "mrq_idle_disconnects_total",
        "counter",
        "Connections cut for holding a partial frame past the idle timeout.",
    );
    e.sample(
        "mrq_idle_disconnects_total",
        stats.reliability.idle_disconnects,
    );
    e.family(
        "mrq_update_dedup_hits_total",
        "counter",
        "Retried updates answered from the request-id dedup window.",
    );
    e.sample(
        "mrq_update_dedup_hits_total",
        stats.reliability.update_dedup_hits,
    );
    e.family(
        "mrq_dataset_degraded",
        "gauge",
        "1 when the dataset is in degraded (read-only) mode after a storage failure.",
    );
    for name in &stats.datasets {
        let degraded = stats.degraded.iter().any(|d| d == name);
        e.dataset_sample("mrq_dataset_degraded", name, u64::from(degraded));
    }

    e.out
}

/// How often a blocked scrape read re-checks the shutdown flag, and the
/// budget an individual scrape gets to deliver its request head.
const SCRAPE_POLL: Duration = Duration::from_millis(200);
const SCRAPE_READ_TICKS: u32 = 10;

/// A minimal HTTP listener serving `GET /metrics` scrapes for one service.
///
/// Bind it to a loopback address next to the protocol port (what
/// `maxrank-serve --metrics-port` does); stop it with
/// [`MetricsServer::shutdown`].
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    flag: Arc<AtomicBool>,
    accept: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts answering scrapes.
    pub fn start(
        service: Arc<MrqService>,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let flag = Arc::new(AtomicBool::new(false));
        let accept = {
            let flag = Arc::clone(&flag);
            std::thread::Builder::new()
                .name("mrq-metrics".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if flag.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else {
                            std::thread::sleep(Duration::from_millis(50));
                            continue;
                        };
                        // One scrape at a time: render + write, then close.
                        let _ = serve_scrape(stream, &service, &flag);
                    }
                })?
        };
        Ok(MetricsServer {
            addr,
            flag,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The bound address (bind port 0 for an ephemeral one).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins the accept thread.  Idempotent.
    pub fn shutdown(&self) {
        if !self.flag.swap(true, Ordering::SeqCst) {
            // Poke the accept loop awake so it observes the flag.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        }
        if let Some(handle) = lock_or_recover(&self.accept).take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Answers one HTTP exchange: reads the request head, writes one response,
/// closes.  Malformed or slow requests are dropped without an answer.
fn serve_scrape(
    stream: TcpStream,
    service: &Arc<MrqService>,
    flag: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(SCRAPE_POLL))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    let mut ticks = 0;
    // The request line may trickle in; keep appending across timeouts with
    // a bounded budget so a stuck peer cannot pin the accept thread.
    while !request_line.ends_with('\n') {
        match reader.read_line(&mut request_line) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                ticks += 1;
                if ticks >= SCRAPE_READ_TICKS || flag.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
        if request_line.len() > 8192 {
            return Ok(());
        }
    }
    // Drain the header block (best effort — `Connection: close` semantics).
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) if line.len() > 8192 => return Ok(()),
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method == "GET" && (path == "/metrics" || path == "/") {
        ("200 OK", render_metrics(&service.stats()))
    } else {
        ("404 Not Found", "not found: scrape GET /metrics\n".into())
    };
    write!(
        writer,
        "HTTP/1.0 {status}\r\nContent-Type: {METRICS_CONTENT_TYPE}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheStats;
    use crate::pool::PoolStats;
    use crate::querystats::DatasetQueryStats;
    use crate::registry::{DatasetRegistry, DatasetSpec, DurabilityStats};
    use crate::service::{MrqService, ServiceConfig};
    use crate::subscriptions::SubscriptionStats;
    use std::io::Read;

    fn synthetic_stats() -> ServiceStats {
        ServiceStats {
            cache: CacheStats {
                hits: 3,
                misses: 2,
                evictions: 1,
                evictions_stale: 4,
                len: 5,
                capacity: 128,
            },
            pool: PoolStats {
                workers: 4,
                queue_capacity: 256,
                queue_depth: 1,
                executed: 42,
                coalesced: 7,
                timed_out: 2,
                deadline_rejected: 1,
            },
            datasets: vec!["demo".into()],
            per_dataset: vec![DatasetQueryStats {
                dataset: "demo".into(),
                queries: 10,
                cache_hits: 3,
                cpu_us: 12345,
                io_reads: 678,
                cells_tested: 90,
                lp_calls: 55,
                witness_hits: 35,
            }],
            durability: DurabilityStats {
                durable_datasets: 1,
                recovered_datasets: 1,
                wal_batches_replayed: 2,
                torn_bytes_discarded: 17,
                recovery_pages_read: 9,
                wal_appends: 5,
                wal_appended_bytes: 4096,
                checkpoints: 1,
            },
            subscriptions: SubscriptionStats {
                active: 2,
                deltas_triaged: 8,
                unaffected_skips: 5,
                partial_repairs: 2,
                full_reevals: 1,
            },
            reliability: crate::service::ReliabilityStats {
                connections_shed: 6,
                idle_disconnects: 2,
                update_dedup_hits: 3,
            },
            degraded: vec!["demo".into()],
        }
    }

    #[test]
    fn renders_every_counter_family() {
        let text = render_metrics(&synthetic_stats());
        for family in [
            "mrq_cache_hits_total 3",
            "mrq_cache_misses_total 2",
            "mrq_cache_evictions_total 1",
            "mrq_cache_evictions_stale_total 4",
            "mrq_cache_entries 5",
            "mrq_cache_capacity 128",
            "mrq_pool_workers 4",
            "mrq_pool_queue_capacity 256",
            "mrq_pool_queue_depth 1",
            "mrq_pool_jobs_executed_total 42",
            "mrq_pool_jobs_coalesced_total 7",
            "mrq_pool_jobs_timed_out_total 2",
            "mrq_pool_jobs_deadline_rejected_total 1",
            "mrq_dataset_queries_total{dataset=\"demo\"} 10",
            "mrq_dataset_cache_hits_total{dataset=\"demo\"} 3",
            "mrq_dataset_cpu_microseconds_total{dataset=\"demo\"} 12345",
            "mrq_dataset_io_reads_total{dataset=\"demo\"} 678",
            "mrq_dataset_cells_tested_total{dataset=\"demo\"} 90",
            "mrq_dataset_lp_calls_total{dataset=\"demo\"} 55",
            "mrq_dataset_witness_hits_total{dataset=\"demo\"} 35",
            "mrq_durable_datasets 1",
            "mrq_recovered_datasets_total 1",
            "mrq_wal_batches_replayed_total 2",
            "mrq_wal_torn_bytes_discarded_total 17",
            "mrq_recovery_pages_read_total 9",
            "mrq_wal_appends_total 5",
            "mrq_wal_appended_bytes_total 4096",
            "mrq_checkpoints_total 1",
            "mrq_subscriptions_active 2",
            "mrq_subscription_deltas_triaged_total 8",
            "mrq_subscription_unaffected_skips_total 5",
            "mrq_subscription_partial_repairs_total 2",
            "mrq_subscription_full_reevals_total 1",
            "mrq_connections_shed_total 6",
            "mrq_idle_disconnects_total 2",
            "mrq_update_dedup_hits_total 3",
            "mrq_dataset_degraded{dataset=\"demo\"} 1",
        ] {
            assert!(text.contains(&format!("\n{family}\n")), "missing: {family}");
        }
        // Every sample line is preceded by HELP/TYPE metadata for its family.
        for line in text.lines() {
            if let Some(name) = line.strip_suffix(|c: char| c.is_ascii_digit()) {
                let name = name.split(['{', ' ']).next().unwrap();
                assert!(
                    text.contains(&format!("# TYPE {name} ")),
                    "no TYPE for {name}"
                );
            }
        }
    }

    /// The bug this endpoint exists to avoid: u64 counters pushed through
    /// the JSON f64 path lose exactness past 2^53.  The exposition text must
    /// carry the exact integer.
    #[test]
    fn counters_past_2_pow_53_stay_integer_exact() {
        let big = (1u64 << 53) + 1; // 9007199254740993; as f64 it rounds to ...992
        let mut stats = synthetic_stats();
        stats.pool.executed = big;
        stats.durability.wal_appended_bytes = u64::MAX;
        let text = render_metrics(&stats);
        assert!(
            text.contains("mrq_pool_jobs_executed_total 9007199254740993\n"),
            "2^53+1 must not round: {text}"
        );
        assert!(text.contains(&format!("mrq_wal_appended_bytes_total {}\n", u64::MAX)));
        // Demonstrate the f64 rounding the text path avoids.
        assert_eq!((big as f64) as u64, big - 1);
    }

    #[test]
    fn dataset_labels_are_escaped() {
        let mut stats = synthetic_stats();
        stats.per_dataset[0].dataset = "we\"ird\\name\n".into();
        let text = render_metrics(&stats);
        assert!(
            text.contains("mrq_dataset_queries_total{dataset=\"we\\\"ird\\\\name\\n\"} 10"),
            "{text}"
        );
    }

    fn demo_service() -> Arc<MrqService> {
        let registry = Arc::new(DatasetRegistry::new());
        registry.register("demo", &DatasetSpec::Demo).unwrap();
        Arc::new(MrqService::new(
            registry,
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        ))
    }

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reply = String::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.read_to_string(&mut reply).unwrap();
        reply
    }

    #[test]
    fn http_scrape_roundtrip_and_404() {
        let service = demo_service();
        let server = MetricsServer::start(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let reply = http_get(server.local_addr(), "/metrics");
        assert!(reply.starts_with("HTTP/1.0 200 OK\r\n"), "{reply}");
        assert!(reply.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(reply.contains("mrq_pool_workers 2"));
        let missing = http_get(server.local_addr(), "/nope");
        assert!(
            missing.starts_with("HTTP/1.0 404 Not Found\r\n"),
            "{missing}"
        );
        server.shutdown();
        // Idempotent.
        server.shutdown();
    }

    #[test]
    fn scrape_reflects_served_queries() {
        let service = demo_service();
        let server = MetricsServer::start(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let before = http_get(server.local_addr(), "/metrics");
        assert!(before.contains("mrq_pool_jobs_executed_total 0"));
        let request = crate::service::QueryRequest::new("demo", 5);
        service.query(&request).unwrap();
        let after = http_get(server.local_addr(), "/metrics");
        assert!(after.contains("mrq_pool_jobs_executed_total 1"), "{after}");
        assert!(after.contains("mrq_dataset_queries_total{dataset=\"demo\"} 1"));
        server.shutdown();
    }
}
