//! Cumulative per-dataset query statistics.
//!
//! The result cache answers "how often did we skip work"; this module
//! answers "what did the work we did cost, per dataset".  Workers fold every
//! executed evaluation's [`mrq_core::QueryStats`] into a shared
//! [`QueryStatsBook`]; the `STATS` verb reports the totals alongside the
//! cache/pool counters, so a long-lived server exposes its workload mix
//! (which datasets are hot, how much LP work the witness cache absorbs)
//! without any per-request logging.

use crate::sync::lock_or_recover;
use mrq_core::QueryStats;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Cumulative totals for one dataset, as reported by the `STATS` verb.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatasetQueryStats {
    /// Dataset name.
    pub dataset: String,
    /// Queries evaluated (cache hits not included).
    pub queries: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Total CPU time of the evaluations, in microseconds.
    pub cpu_us: u64,
    /// Total simulated page reads.
    pub io_reads: u64,
    /// Total candidate cells decided (witness cache or LP).
    pub cells_tested: u64,
    /// Total simplex LPs solved.
    pub lp_calls: u64,
    /// Total candidates proven non-empty by a cached witness.
    pub witness_hits: u64,
}

impl DatasetQueryStats {
    fn fold(&mut self, stats: &QueryStats) {
        self.queries += 1;
        self.cpu_us += stats.cpu_time.as_micros() as u64;
        self.io_reads += stats.io_reads;
        self.cells_tested += stats.cells_tested as u64;
        self.lp_calls += stats.lp_calls as u64;
        self.witness_hits += stats.witness_hits as u64;
    }
}

/// Thread-safe accumulator of per-dataset totals.  A `BTreeMap` keeps the
/// snapshot deterministically ordered by dataset name.
#[derive(Debug, Default)]
pub struct QueryStatsBook {
    inner: Mutex<BTreeMap<String, DatasetQueryStats>>,
}

impl QueryStatsBook {
    /// An empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one executed evaluation into the dataset's totals.
    pub fn record_executed(&self, dataset: &str, stats: &QueryStats) {
        let mut book = lock_or_recover(&self.inner);
        book.entry(dataset.to_string())
            .or_insert_with(|| DatasetQueryStats {
                dataset: dataset.to_string(),
                ..DatasetQueryStats::default()
            })
            .fold(stats);
    }

    /// Counts a cache-served answer for the dataset.
    pub fn record_cache_hit(&self, dataset: &str) {
        let mut book = lock_or_recover(&self.inner);
        book.entry(dataset.to_string())
            .or_insert_with(|| DatasetQueryStats {
                dataset: dataset.to_string(),
                ..DatasetQueryStats::default()
            })
            .cache_hits += 1;
    }

    /// A snapshot of every dataset's totals, ordered by name.
    pub fn snapshot(&self) -> Vec<DatasetQueryStats> {
        lock_or_recover(&self.inner).values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn stats(cpu_us: u64, lp: usize) -> QueryStats {
        QueryStats {
            cpu_time: Duration::from_micros(cpu_us),
            io_reads: 3,
            cells_tested: lp + 2,
            lp_calls: lp,
            witness_hits: 2,
            ..QueryStats::default()
        }
    }

    #[test]
    fn folds_and_orders_by_name() {
        let book = QueryStatsBook::new();
        book.record_executed("zeta", &stats(100, 5));
        book.record_executed("alpha", &stats(50, 1));
        book.record_executed("zeta", &stats(200, 7));
        book.record_cache_hit("zeta");
        book.record_cache_hit("newcomer");
        let snap = book.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].dataset, "alpha");
        assert_eq!(snap[1].dataset, "newcomer");
        assert_eq!(snap[2].dataset, "zeta");
        assert_eq!(snap[1].queries, 0);
        assert_eq!(snap[1].cache_hits, 1);
        let zeta = &snap[2];
        assert_eq!(zeta.queries, 2);
        assert_eq!(zeta.cache_hits, 1);
        assert_eq!(zeta.cpu_us, 300);
        assert_eq!(zeta.io_reads, 6);
        assert_eq!(zeta.lp_calls, 12);
        assert_eq!(zeta.witness_hits, 4);
        assert_eq!(zeta.cells_tested, 16);
    }
}
