//! Service error type shared by the pool, the in-process service, the TCP
//! server and the client.
//!
//! Every variant carries a *retryability* classification
//! ([`ServiceError::retryable`]): transient conditions (a full queue, a shed
//! connection) are safe to retry after backing off, while semantic failures
//! (bad request, unknown dataset, degraded storage) are not — retrying them
//! would only repeat the same answer.  The wire protocol surfaces the
//! classification as a `retryable` flag plus an optional `retry_after_ms`
//! backoff hint (see `protocol::error_payload`), which `client::RetryPolicy`
//! obeys.

/// Everything that can go wrong with a service request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The named dataset is not registered.
    UnknownDataset(String),
    /// The request is malformed (focal out of range, algorithm/dims
    /// mismatch, unparseable payload, …).
    BadRequest(String),
    /// The bounded request queue is full — backpressure, try again.
    QueueFull,
    /// The request's deadline passed before an answer was produced.
    DeadlineExceeded,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The service is saturated (worker pool queue full) — retry after the
    /// hinted backoff.
    Overloaded {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The server refused the connection at accept time (connection limit
    /// reached) — retry after the hinted backoff.
    ServerBusy {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The connection sat idle holding a partial frame past the server's
    /// idle timeout and was disconnected (slow-loris protection).
    IdleTimeout,
    /// The dataset is in degraded read-only mode after a storage failure:
    /// queries keep serving the last durable version, updates are refused.
    DatasetDegraded {
        /// The degraded dataset.
        dataset: String,
        /// What failed (WAL append/fsync error text).
        reason: String,
    },
    /// An unexpected internal failure (worker panic, lost channel, I/O).
    Internal(String),
}

impl ServiceError {
    /// Whether retrying the same request (after backoff, possibly on a new
    /// connection) can succeed.  Semantic failures are permanent; capacity
    /// and timing failures are transient.
    pub fn retryable(&self) -> bool {
        match self {
            ServiceError::QueueFull
            | ServiceError::DeadlineExceeded
            | ServiceError::Overloaded { .. }
            | ServiceError::ServerBusy { .. }
            | ServiceError::IdleTimeout => true,
            ServiceError::UnknownDataset(_)
            | ServiceError::BadRequest(_)
            | ServiceError::ShuttingDown
            | ServiceError::DatasetDegraded { .. }
            | ServiceError::Internal(_) => false,
        }
    }

    /// The backoff hint carried by capacity errors, if any.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServiceError::Overloaded { retry_after_ms }
            | ServiceError::ServerBusy { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownDataset(name) => write!(f, "unknown dataset '{name}'"),
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServiceError::QueueFull => write!(f, "request queue is full"),
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded: retry after {retry_after_ms} ms")
            }
            ServiceError::ServerBusy { retry_after_ms } => {
                write!(f, "server busy: retry after {retry_after_ms} ms")
            }
            ServiceError::IdleTimeout => {
                write!(f, "idle timeout: connection held a partial frame too long")
            }
            ServiceError::DatasetDegraded { dataset, reason } => {
                write!(f, "dataset '{dataset}' degraded (read-only): {reason}")
            }
            ServiceError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            ServiceError::UnknownDataset("x".into()).to_string(),
            "unknown dataset 'x'"
        );
        assert!(ServiceError::QueueFull.to_string().contains("queue"));
        assert!(ServiceError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        assert!(ServiceError::Overloaded { retry_after_ms: 25 }
            .to_string()
            .contains("25 ms"));
        assert!(ServiceError::ServerBusy { retry_after_ms: 50 }
            .to_string()
            .contains("busy"));
        let degraded = ServiceError::DatasetDegraded {
            dataset: "d".into(),
            reason: "disk full".into(),
        };
        assert!(degraded.to_string().contains("degraded"));
        assert!(degraded.to_string().contains("disk full"));
    }

    #[test]
    fn retryability_classification() {
        assert!(ServiceError::QueueFull.retryable());
        assert!(ServiceError::DeadlineExceeded.retryable());
        assert!(ServiceError::Overloaded { retry_after_ms: 1 }.retryable());
        assert!(ServiceError::ServerBusy { retry_after_ms: 1 }.retryable());
        assert!(ServiceError::IdleTimeout.retryable());
        assert!(!ServiceError::BadRequest("x".into()).retryable());
        assert!(!ServiceError::UnknownDataset("x".into()).retryable());
        assert!(!ServiceError::ShuttingDown.retryable());
        assert!(!ServiceError::Internal("x".into()).retryable());
        assert!(!ServiceError::DatasetDegraded {
            dataset: "d".into(),
            reason: "r".into()
        }
        .retryable());
        assert_eq!(
            ServiceError::Overloaded { retry_after_ms: 40 }.retry_after_ms(),
            Some(40)
        );
        assert_eq!(ServiceError::QueueFull.retry_after_ms(), None);
    }
}
