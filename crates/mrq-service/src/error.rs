//! Service error type shared by the pool, the in-process service, the TCP
//! server and the client.

/// Everything that can go wrong with a service request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The named dataset is not registered.
    UnknownDataset(String),
    /// The request is malformed (focal out of range, algorithm/dims
    /// mismatch, unparseable payload, …).
    BadRequest(String),
    /// The bounded request queue is full — backpressure, try again.
    QueueFull,
    /// The request's deadline passed before an answer was produced.
    DeadlineExceeded,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// An unexpected internal failure (worker panic, lost channel, I/O).
    Internal(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownDataset(name) => write!(f, "unknown dataset '{name}'"),
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServiceError::QueueFull => write!(f, "request queue is full"),
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            ServiceError::UnknownDataset("x".into()).to_string(),
            "unknown dataset 'x'"
        );
        assert!(ServiceError::QueueFull.to_string().contains("queue"));
        assert!(ServiceError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
    }
}
