//! # mrq-service — a long-lived, concurrent MaxRank query service
//!
//! The algorithm crates answer *one* query per process: load data, bulk-load
//! the R\*-tree, evaluate, exit.  This crate keeps the expensive state
//! resident and streams requests through it:
//!
//! ```text
//!            ┌───────────────────────────── MrqService ─────────────────────────────┐
//! client ──► │ DatasetRegistry ──► bounded queue ──► WorkerPool ──► ResultCache │ ──► answer
//!            │  (versioned Dataset    (backpressure,    (N threads,     (LRU keyed by │
//!            │   + R*-tree snapshots   deadlines)        coalescing)     dataset/version/ │
//!            │   behind Arc)                                             focal/algo/tau) │
//!            └──────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! * [`registry`] — load/generate each named dataset once, share `Arc`
//!   snapshots; updates go through [`DatasetHandle::apply`] (copy-on-write
//!   swap, serialized per dataset, versioned).
//! * [`pool`] — fixed worker threads over a bounded queue; same-snapshot
//!   requests are coalesced through `mrq_core::evaluate_batch`; per-request
//!   deadlines; graceful drain-then-join shutdown.
//! * [`cache`] — an O(1) LRU over `(dataset, version, focal, algorithm,
//!   tau)` with hit/miss/eviction counters (the `STATS` command); the
//!   version component retires stale entries without a flush.
//! * [`service`] — the in-process composition ([`MrqService`]).
//! * [`subscriptions`] — standing queries: resident results registered via
//!   `SUBSCRIBE`, maintained under updates by `mrq_core::maintain`'s delta
//!   triage, with server-push `NOTIFY` frames on change.
//! * [`protocol`] — length-prefixed JSON-ish frames ([`protocol::Request`]).
//! * [`server`] / [`client`] — a std-only loopback TCP layer
//!   (`std::net::TcpListener` + `std::thread`; the build environment has no
//!   route to crates.io, so no async runtime is involved).
//!
//! The `maxrank-serve` and `maxrank-client` binaries in the root crate are
//! thin wrappers over [`Server`] and [`Client`].
//!
//! ## Why sharing engines across threads is sound
//!
//! Everything a query touches is immutable after registration: [`Dataset`]
//! is plain memory, the R\*-tree's only interior mutability is its relaxed
//! atomic I/O counter, and each evaluation builds its own quad-tree privately.
//! The assertions below pin that property down at compile time — if a future
//! change reintroduces a non-`Sync` cell anywhere in an engine, this crate
//! stops compiling rather than racing.

pub mod cache;
pub mod client;
pub mod error;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod querystats;
pub mod registry;
pub mod server;
pub mod service;
pub mod subscriptions;
pub(crate) mod sync;

pub use cache::{CacheKey, CacheStats, ResultCache};
pub use client::{
    Client, ClientError, Notification, QueryOptions, QueryReply, RetryPolicy, StatsReply,
    SubscriptionReply, UpdateReply,
};
pub use error::ServiceError;
pub use metrics::{render_metrics, MetricsServer};
pub use pool::{PoolConfig, PoolStats, WorkerPool};
pub use querystats::{DatasetQueryStats, QueryStatsBook};
pub use registry::{
    DatasetEntry, DatasetHandle, DatasetRegistry, DatasetSpec, DurabilityOptions, DurabilityStats,
    UpdateOutcome, DEDUP_WINDOW,
};
pub use server::{Server, ServerConfig};
pub use service::{
    MrqService, QueryAnswer, QueryRequest, ReliabilityBook, ReliabilityStats, ServiceConfig,
    ServiceStats,
};
pub use subscriptions::{
    NotifyEvent, NotifyKind, NotifyMailbox, Subscription, SubscriptionBook, SubscriptionStats,
};

use mrq_data::Dataset;

/// Compile-time `Send + Sync` audit of every type the service shares across
/// threads (see the crate docs).  `MaxRankQuery` borrows a dataset and an
/// index; with `'static` borrows it must itself be shareable.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Dataset>();
    assert_send_sync::<mrq_index::RStarTree>();
    assert_send_sync::<mrq_index::IoStats>();
    assert_send_sync::<mrq_core::MaxRankQuery<'static>>();
    assert_send_sync::<mrq_core::MaxRankConfig>();
    assert_send_sync::<mrq_core::MaxRankResult>();
    assert_send_sync::<mrq_quadtree::HalfSpaceQuadTree>();
    assert_send_sync::<DatasetEntry>();
    assert_send_sync::<DatasetHandle>();
    assert_send_sync::<DatasetRegistry>();
    assert_send_sync::<ResultCache>();
    assert_send_sync::<WorkerPool>();
    assert_send_sync::<MrqService>();
    assert_send_sync::<Server>();
    assert_send_sync::<MetricsServer>();
    assert_send_sync::<NotifyMailbox>();
    assert_send_sync::<Subscription>();
    assert_send_sync::<SubscriptionBook>();
    assert_send_sync::<ReliabilityBook>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// The crate-level data-flow claim, end to end and in process: register
    /// once, query through the pool, hit the cache on the second round.
    #[test]
    fn registry_pool_cache_compose() {
        let registry = Arc::new(DatasetRegistry::new());
        registry.register("demo", &DatasetSpec::Demo).unwrap();
        let service = MrqService::new(registry, ServiceConfig::default());
        let cold = service.query(&QueryRequest::new("demo", 5)).unwrap();
        let warm = service.query(&QueryRequest::new("demo", 5)).unwrap();
        assert_eq!(cold.result.k_star, 3);
        assert!(!cold.cached);
        assert!(warm.cached);
        service.shutdown();
    }
}
