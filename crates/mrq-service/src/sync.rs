//! The crate-wide lock-poisoning policy.
//!
//! A `std::sync::Mutex`/`RwLock` is *poisoned* when a thread panics while
//! holding it.  The question is what the **next** thread should do.  Before
//! this module existed every lock site said `.expect("… lock poisoned")`,
//! which turns one panicking request into a cascade: each subsequent thread
//! touching the lock panics too, until the whole server is wedged.
//!
//! The policy, applied everywhere in this crate:
//!
//! * **Recover** ([`lock_or_recover`] and friends) when the protected state
//!   is *provably consistent at every panic point* — i.e. every critical
//!   section either (a) performs a single atomic assignment (snapshot swap,
//!   queue push/pop of an owned value), or (b) only reads.  A panic inside
//!   such a section cannot leave the invariant half-updated, so the data
//!   under a poisoned lock is still valid and serving must continue.  This
//!   covers the connection-handle list, notify mailboxes, the subscription
//!   book and lists, the registry map, snapshot cells, the result cache and
//!   the pool queue (jobs are pushed/popped whole; worker evaluation runs
//!   outside the lock under `catch_unwind`).
//!
//! * **Fail stop** (keep `.expect`) when a panic *can* strand a multi-step
//!   invariant.  The one such place is the durable `DatasetStore` mutex: an
//!   append updates the file *and* the in-memory `wal_bytes` offset in
//!   separate steps, so a panic between them leaves bookkeeping that
//!   disagrees with the disk.  Serving updates from that state could corrupt
//!   the log; crashing and re-running recovery (which re-derives state from
//!   the file alone) is strictly safer.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks `m`, recovering the guard if a previous holder panicked (see the
/// module docs for when this is sound).
pub fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks `l`, recovering the guard if a previous writer panicked.
pub fn read_or_recover<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `l`, recovering the guard if a previous holder panicked.
pub fn write_or_recover<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn poisoned_mutex_recovers_with_state_intact() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_or_recover(&m), 7);
        *lock_or_recover(&m) = 8;
        assert_eq!(*lock_or_recover(&m), 8);
    }

    #[test]
    fn poisoned_rwlock_recovers_for_readers_and_writers() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(l.is_poisoned());
        assert_eq!(read_or_recover(&l).len(), 3);
        write_or_recover(&l).push(4);
        assert_eq!(read_or_recover(&l).len(), 4);
    }
}
