//! The result cache: an LRU map from `(dataset, version, focal, algorithm,
//! tau)` to a shared [`MaxRankResult`], with hit/miss/eviction counters for
//! the `STATS` command.
//!
//! The **dataset version** in the key is what keeps caching sound under
//! updates: an `UPDATE` bumps the dataset's version, so every later query
//! keys to fresh entries and a stale answer can never be served — without
//! any global flush.  Entries computed at older versions simply stop being
//! requested and age out through the LRU policy.
//!
//! MaxRank evaluations are deterministic functions of the key — the service
//! always runs with the default engine tuning (`pair_pruning = true`, default
//! quad-tree configuration), and `Algorithm::Auto` is resolved to the
//! concrete algorithm *before* keying — so a cached answer is byte-identical
//! to a fresh one (`tests/cache_props.rs` proves this property).  Values are
//! `Arc`s: a hit never copies the region list.
//!
//! The LRU itself is a classic intrusive doubly-linked list threaded through
//! a slab, with a `HashMap` from key to slab slot: `get`, `insert` and
//! eviction are all O(1).  No `unsafe`, no external crates.
//!
//! Stale purging is O(purged), not O(capacity): alongside the LRU the cache
//! keeps a secondary index `dataset → version → {(focal, algorithm, tau)}`,
//! so [`ResultCache::purge_stale`] splits off exactly the stale generations
//! of one dataset instead of walking every resident entry under the mutex on
//! each update batch.

use crate::sync::lock_or_recover;
use mrq_core::{Algorithm, MaxRankResult};
use mrq_data::RecordId;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::Hash;
use std::sync::{Arc, Mutex};

/// Cache key of one service answer.
///
/// `algorithm` must be pre-resolved (never [`Algorithm::Auto`]) so that
/// `auto` requests and explicit requests for the same concrete algorithm
/// share entries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Registered dataset name.
    pub dataset: String,
    /// Dataset version the answer was computed at (see
    /// [`DatasetEntry::version`](crate::registry::DatasetEntry::version)).
    pub version: u64,
    /// Focal record id.
    pub focal: RecordId,
    /// Concrete (resolved) algorithm.
    pub algorithm: Algorithm,
    /// iMaxRank slack.
    pub tau: usize,
}

/// Counter snapshot reported by `STATS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries purged because their dataset moved past their version (they
    /// could never be hit again and were only occupying LRU capacity).
    pub evictions_stale: u64,
    /// Current number of cached entries.
    pub len: usize,
    /// Maximum number of entries (0 = caching disabled).
    pub capacity: usize,
}

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A minimal O(1) LRU map (not thread safe; [`ResultCache`] wraps it in a
/// mutex).  Kept generic so the unit tests can exercise it with small keys.
struct Lru<K: Eq + Hash + Clone, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used.
    tail: usize,
    capacity: usize,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            evictions: 0,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Unlinks slot `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    /// Links slot `i` at the head (most recently used).
    fn link_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &K) -> Option<&V> {
        let i = *self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
        Some(&self.slots[i].value)
    }

    /// Inserts or refreshes `key`, returning the key evicted to make room
    /// (if any) so callers maintaining secondary indexes stay consistent.
    fn insert(&mut self, key: K, value: V) -> Option<K> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.link_front(i);
            }
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let lru = self.tail;
            self.unlink(lru);
            evicted = self.map.remove_entry(&self.slots[lru].key).map(|(k, _)| k);
            self.free.push(lru);
            self.evictions += 1;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.link_front(i);
        evicted
    }

    /// Removes `key` if resident, in O(1).  Returns whether it was present.
    fn remove(&mut self, key: &K) -> bool {
        let Some(i) = self.map.remove(key) else {
            return false;
        };
        self.unlink(i);
        self.free.push(i);
        true
    }

    /// Keys from most to least recently used (tests only).
    #[cfg(test)]
    fn keys_by_recency(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            out.push(self.slots[i].key.clone());
            i = self.slots[i].next;
        }
        out
    }
}

/// The thread-safe LRU result cache used by the worker pool.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<CacheInner>,
}

/// Secondary index over the resident keys: `dataset → version → the rest of
/// the key`.  The `BTreeMap` keeps versions ordered so a purge can split off
/// exactly the generations below the current one.
type StaleIndex = HashMap<String, BTreeMap<u64, HashSet<(RecordId, Algorithm, usize)>>>;

fn index_add(index: &mut StaleIndex, key: &CacheKey) {
    index
        .entry(key.dataset.clone())
        .or_default()
        .entry(key.version)
        .or_default()
        .insert((key.focal, key.algorithm, key.tau));
}

fn index_remove(index: &mut StaleIndex, key: &CacheKey) {
    let Some(versions) = index.get_mut(&key.dataset) else {
        return;
    };
    if let Some(keys) = versions.get_mut(&key.version) {
        keys.remove(&(key.focal, key.algorithm, key.tau));
        if keys.is_empty() {
            versions.remove(&key.version);
        }
    }
    if versions.is_empty() {
        index.remove(&key.dataset);
    }
}

struct CacheInner {
    lru: Lru<CacheKey, Arc<MaxRankResult>>,
    index: StaleIndex,
    hits: u64,
    misses: u64,
    evictions_stale: u64,
}

impl std::fmt::Debug for CacheInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheInner")
            .field("len", &self.lru.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` answers (0 disables it).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                lru: Lru::new(capacity),
                index: StaleIndex::new(),
                hits: 0,
                misses: 0,
                evictions_stale: 0,
            }),
        }
    }

    /// Looks up a key, counting a hit or a miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<MaxRankResult>> {
        let mut inner = lock_or_recover(&self.inner);
        match inner.lru.get(key).cloned() {
            Some(v) => {
                inner.hits += 1;
                Some(v)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores an answer (no-op when the cache is disabled).
    pub fn insert(&self, key: CacheKey, value: Arc<MaxRankResult>) {
        let mut inner = lock_or_recover(&self.inner);
        let inner = &mut *inner;
        if inner.lru.capacity == 0 {
            return;
        }
        if let Some(evicted) = inner.lru.insert(key.clone(), value) {
            index_remove(&mut inner.index, &evicted);
        }
        index_add(&mut inner.index, &key);
    }

    /// Proactively drops every entry of `dataset` computed before
    /// `current_version`.  Version-keyed lookups already make such entries
    /// unservable — this merely stops them from occupying LRU capacity that
    /// live entries could use.  Returns the number of entries purged.
    ///
    /// Cost is proportional to the number of purged entries (plus one
    /// dataset-index lookup), not to the cache capacity: the stale
    /// generations are split off the per-dataset version map and only their
    /// keys are unlinked from the LRU.
    pub fn purge_stale(&self, dataset: &str, current_version: u64) -> u64 {
        let mut inner = lock_or_recover(&self.inner);
        let inner = &mut *inner;
        let Some(versions) = inner.index.get_mut(dataset) else {
            return 0;
        };
        // Everything at `current_version` and above stays; what remains in
        // `stale` is exactly the set of entries to drop.
        let live = versions.split_off(&current_version);
        let stale = std::mem::replace(versions, live);
        if versions.is_empty() {
            inner.index.remove(dataset);
        }
        let mut purged = 0u64;
        for (version, keys) in stale {
            for (focal, algorithm, tau) in keys {
                let key = CacheKey {
                    dataset: dataset.to_string(),
                    version,
                    focal,
                    algorithm,
                    tau,
                };
                let removed = inner.lru.remove(&key);
                debug_assert!(removed, "stale index out of sync with the LRU");
                purged += u64::from(removed);
            }
        }
        inner.evictions_stale += purged;
        purged
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = lock_or_recover(&self.inner);
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.lru.evictions,
            evictions_stale: inner.evictions_stale,
            len: inner.lru.len(),
            capacity: inner.lru.capacity,
        }
    }

    /// Resident keys, most recently used first (tests only).
    #[cfg(test)]
    fn resident_keys(&self) -> Vec<CacheKey> {
        lock_or_recover(&self.inner).lru.keys_by_recency()
    }

    /// Checks that the stale index describes exactly the resident keys
    /// (tests only).
    #[cfg(test)]
    fn assert_index_consistent(&self) {
        let inner = lock_or_recover(&self.inner);
        let mut indexed = 0usize;
        for (dataset, versions) in &inner.index {
            for (version, keys) in versions {
                assert!(!keys.is_empty(), "empty version set left in the index");
                for &(focal, algorithm, tau) in keys {
                    let key = CacheKey {
                        dataset: dataset.clone(),
                        version: *version,
                        focal,
                        algorithm,
                        tau,
                    };
                    assert!(
                        inner.lru.map.contains_key(&key),
                        "indexed key {key:?} is not resident"
                    );
                    indexed += 1;
                }
            }
        }
        assert_eq!(indexed, inner.lru.len(), "index misses resident keys");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru: Lru<u32, u32> = Lru::new(3);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.insert(3, 30);
        assert_eq!(lru.keys_by_recency(), vec![3, 2, 1]);
        // Touch 1 so 2 becomes the LRU.
        assert_eq!(lru.get(&1), Some(&10));
        lru.insert(4, 40);
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.keys_by_recency(), vec![4, 1, 3]);
        assert_eq!(lru.evictions, 1);
    }

    #[test]
    fn lru_update_existing_key() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.insert(1, 11);
        assert_eq!(lru.get(&1), Some(&11));
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.evictions, 0);
        // Slot reuse after eviction.
        lru.insert(3, 30);
        lru.insert(4, 40);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.evictions, 2);
        assert_eq!(lru.keys_by_recency(), vec![4, 3]);
    }

    #[test]
    fn lru_capacity_one_and_zero() {
        let mut one: Lru<u32, u32> = Lru::new(1);
        one.insert(1, 10);
        one.insert(2, 20);
        assert_eq!(one.get(&1), None);
        assert_eq!(one.get(&2), Some(&20));
        assert_eq!(one.evictions, 1);

        let mut zero: Lru<u32, u32> = Lru::new(0);
        zero.insert(1, 10);
        assert_eq!(zero.get(&1), None);
        assert_eq!(zero.len(), 0);
    }

    fn dummy_result() -> Arc<MaxRankResult> {
        Arc::new(MaxRankResult {
            dims: 2,
            k_star: 3,
            tau: 0,
            regions: Vec::new(),
            stats: Default::default(),
        })
    }

    fn key(focal: RecordId) -> CacheKey {
        CacheKey {
            dataset: "demo".into(),
            version: 0,
            focal,
            algorithm: Algorithm::AdvancedApproach2D,
            tau: 0,
        }
    }

    #[test]
    fn version_distinguishes_keys() {
        let cache = ResultCache::new(8);
        cache.insert(key(0), dummy_result());
        let stale = CacheKey {
            version: 1,
            ..key(0)
        };
        assert!(
            cache.get(&stale).is_none(),
            "a bumped version must never see the old entry"
        );
        assert!(cache.get(&key(0)).is_some());
    }

    #[test]
    fn result_cache_counts_hits_misses_evictions() {
        let cache = ResultCache::new(2);
        assert!(cache.get(&key(0)).is_none());
        cache.insert(key(0), dummy_result());
        assert!(cache.get(&key(0)).is_some());
        cache.insert(key(1), dummy_result());
        cache.insert(key(2), dummy_result());
        assert!(cache.get(&key(1)).is_some());
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 2);
        assert_eq!(s.capacity, 2);
    }

    #[test]
    fn purge_stale_drops_only_older_versions_of_the_dataset() {
        let cache = ResultCache::new(8);
        cache.insert(key(0), dummy_result()); // demo v0
        cache.insert(
            CacheKey {
                version: 2,
                ..key(1)
            },
            dummy_result(),
        ); // demo v2
        cache.insert(
            CacheKey {
                dataset: "other".into(),
                ..key(2)
            },
            dummy_result(),
        ); // other v0
        assert_eq!(cache.purge_stale("demo", 2), 1);
        let s = cache.stats();
        assert_eq!(s.evictions_stale, 1);
        assert_eq!(s.evictions, 0, "stale purges are not capacity evictions");
        assert_eq!(s.len, 2);
        assert!(cache.get(&key(0)).is_none());
        assert!(cache
            .get(&CacheKey {
                version: 2,
                ..key(1)
            })
            .is_some());
        assert!(cache
            .get(&CacheKey {
                dataset: "other".into(),
                ..key(2)
            })
            .is_some());
        // Purged slots are reusable: the cache keeps working at capacity.
        for focal in 10..30 {
            cache.insert(key(focal), dummy_result());
        }
        assert_eq!(cache.stats().len, 8);
    }

    #[test]
    fn purge_stale_is_a_noop_without_matches() {
        let cache = ResultCache::new(4);
        cache.insert(key(0), dummy_result());
        assert_eq!(cache.purge_stale("demo", 0), 0);
        assert_eq!(cache.purge_stale("absent", 9), 0);
        assert_eq!(cache.stats().evictions_stale, 0);
        assert!(cache.get(&key(0)).is_some());
    }

    /// The indexed purge must count exactly what the old O(capacity) filter
    /// walk (`dataset == d && version < v` over every resident key) counted:
    /// a deterministic mixed workload recomputes the naive answer before
    /// each purge and checks both the return value and `evictions_stale`.
    #[test]
    fn purge_stale_counters_match_the_naive_full_walk() {
        let cache = ResultCache::new(16);
        let datasets = ["a", "b", "c"];
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut step = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut expected_stale = 0u64;
        for round in 0u64..200 {
            for _ in 0..5 {
                let k = CacheKey {
                    dataset: datasets[(step() % 3) as usize].into(),
                    version: step() % 4 + round / 50,
                    focal: (step() % 32) as RecordId,
                    algorithm: Algorithm::AdvancedApproach2D,
                    tau: (step() % 2) as usize,
                };
                cache.insert(k, dummy_result());
            }
            if step() % 3 == 0 {
                let dataset = datasets[(step() % 3) as usize];
                let current = step() % 5 + round / 50;
                let naive = cache
                    .resident_keys()
                    .iter()
                    .filter(|k| k.dataset == dataset && k.version < current)
                    .count() as u64;
                assert_eq!(cache.purge_stale(dataset, current), naive);
                expected_stale += naive;
                assert_eq!(cache.stats().evictions_stale, expected_stale);
                cache.assert_index_consistent();
            }
        }
        assert!(expected_stale > 0, "the workload never purged anything");
        let s = cache.stats();
        assert_eq!(s.len, cache.resident_keys().len());
    }

    /// Capacity evictions must drop their index entries too, so a later
    /// purge neither double-counts them nor trips the consistency check.
    #[test]
    fn capacity_evicted_entries_do_not_count_as_stale() {
        let cache = ResultCache::new(2);
        cache.insert(key(0), dummy_result());
        cache.insert(key(1), dummy_result());
        cache.insert(key(2), dummy_result()); // evicts key(0)
        cache.assert_index_consistent();
        assert_eq!(cache.purge_stale("demo", 1), 2, "only the resident pair");
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.evictions_stale, 2);
        assert_eq!(s.len, 0);
        cache.assert_index_consistent();
        // Re-inserting the same key after a purge works and re-indexes it.
        cache.insert(key(0), dummy_result());
        assert!(cache.get(&key(0)).is_some());
        cache.assert_index_consistent();
    }

    #[test]
    fn result_cache_shared_across_threads() {
        let cache = Arc::new(ResultCache::new(64));
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..50 {
                        let k = key(t * 50 + i);
                        cache.insert(k.clone(), dummy_result());
                        assert!(cache.get(&k).is_some());
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits, 200);
        assert_eq!(s.len, 64);
        assert_eq!(s.evictions, 200 - 64);
    }
}
