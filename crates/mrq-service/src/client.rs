//! A small blocking client for the loopback protocol, used by the
//! `maxrank-client` binary, the integration tests and the CI smoke check.

use crate::cache::CacheStats;
use crate::pool::PoolStats;
use crate::protocol::json::Json;
use crate::protocol::{write_frame, Request, MAX_FRAME_BYTES, MAX_HEADER_BYTES};
use crate::querystats::DatasetQueryStats;
use crate::registry::DurabilityStats;
use crate::service::ReliabilityStats;
use crate::subscriptions::SubscriptionStats;
use mrq_core::Algorithm;
use mrq_data::RecordId;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server sent something the client cannot make sense of.
    Protocol(String),
    /// The server answered with an error frame.
    Server {
        /// The server's error text.
        message: String,
        /// Whether the server flagged the error as safe to retry.
        retryable: bool,
        /// Server-suggested minimum backoff before retrying, if any.
        retry_after_ms: Option<u64>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { message, .. } => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Options of one `query` call beyond dataset + focal.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOptions {
    /// Requested algorithm.
    pub algorithm: Algorithm,
    /// iMaxRank slack.
    pub tau: usize,
    /// Per-request deadline.
    pub timeout: Option<Duration>,
    /// Bypass the server's result cache.
    pub no_cache: bool,
    /// Cap on the number of regions returned (None = all).
    pub max_regions: Option<usize>,
    /// Threads for the server-side cell enumeration of this request (0 and 1
    /// both mean sequential; the server clamps the value).
    pub threads: usize,
}

/// A decoded `query` answer.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Best attainable rank.
    pub k_star: usize,
    /// iMaxRank slack the query ran with.
    pub tau: usize,
    /// Concrete algorithm that produced the answer.
    pub algorithm: String,
    /// Total number of result regions.
    pub region_count: usize,
    /// Whether the answer came from the server's result cache.
    pub cached: bool,
    /// Dataset version the answer was computed at.
    pub version: u64,
    /// Simulated page reads of the evaluation.
    pub io_reads: u64,
    /// CPU time of the evaluation, in microseconds.
    pub cpu_us: u64,
    /// Per-returned-region order (rank).
    pub orders: Vec<usize>,
    /// Per-returned-region representative preference vector.
    pub witnesses: Vec<Vec<f64>>,
}

/// A decoded `update` acknowledgement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateReply {
    /// Dataset version after the batch.
    pub version: u64,
    /// Live records after the batch.
    pub records: usize,
    /// Ids assigned to the inserted rows, in input order.
    pub inserted: Vec<RecordId>,
    /// Number of deleted records.
    pub deleted: usize,
}

/// A decoded `stats` answer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsReply {
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Worker-pool counters.
    pub pool: PoolStats,
    /// Registered dataset names.
    pub datasets: Vec<String>,
    /// Cumulative per-dataset query statistics (ordered by dataset name;
    /// absent entries mean the dataset was never queried).
    pub per_dataset: Vec<DatasetQueryStats>,
    /// Durability counters (all zero against a server without `--data-dir`).
    pub durability: DurabilityStats,
    /// Standing-query counters (all zero against a server without the
    /// subscription subsystem).
    pub subscriptions: SubscriptionStats,
    /// Overload/retry counters (all zero against a pre-robustness server).
    pub reliability: ReliabilityStats,
    /// Names of datasets currently in degraded (read-only) mode.
    pub degraded: Vec<String>,
}

/// Retry behaviour of a [`Client`]: capped exponential backoff with
/// deterministic jitter, reconnecting on broken connections.
///
/// A retry fires only when the failure is *known safe* to repeat:
///
/// * server errors the server itself flagged `retryable` (`queue full`,
///   `overloaded`, `server busy`, `idle timeout`, deadline);
/// * transport failures (connection refused/reset/closed) — for reads
///   always, for `UPDATE` only when the call carries a `request_id`, so the
///   server's dedup window turns the resend into an exactly-once replay.
///
/// Non-retryable server errors (bad request, unknown dataset, degraded
/// dataset) and `UNSUBSCRIBE`/`SHUTDOWN` are never retried.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (so `max_retries: 3` means at most
    /// four attempts in total).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Upper bound on the backoff, after which it stops growing.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter stream (vary per client so a herd
    /// of retrying clients does not thunder in lockstep).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 5,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// A decoded subscription result snapshot: the `subscribe` acknowledgement,
/// and the body of every change `NOTIFY`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriptionReply {
    /// Server-assigned subscription id.
    pub subscription: u64,
    /// Dataset the subscription watches.
    pub dataset: String,
    /// Focal record id.
    pub focal: RecordId,
    /// Dataset version the carried result is exact for.
    pub version: u64,
    /// Best attainable rank at that version.
    pub k_star: usize,
    /// iMaxRank slack the subscription runs with.
    pub tau: usize,
    /// Concrete algorithm maintaining the subscription.
    pub algorithm: String,
    /// Number of result regions.
    pub region_count: usize,
    /// Per-region order (rank).
    pub orders: Vec<usize>,
    /// Per-region representative preference vector.
    pub witnesses: Vec<Vec<f64>>,
}

/// One decoded server-push `NOTIFY` frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Notification {
    /// The maintained result changed; the payload carries the new snapshot.
    Changed(SubscriptionReply),
    /// The server ended the subscription (e.g. its focal was deleted).
    Cancelled {
        /// Subscription id that ended.
        subscription: u64,
        /// Dataset it watched.
        dataset: String,
        /// Focal record id.
        focal: RecordId,
        /// Version at which it ended.
        version: u64,
        /// Server-side explanation.
        reason: String,
    },
}

/// Poll granularity of deadline-bounded reads ([`Client::wait_notify`]).
const CLIENT_POLL: Duration = Duration::from_millis(100);

/// A blocking protocol client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The peer address, kept for reconnects under a [`RetryPolicy`].
    addr: SocketAddr,
    /// Partial frame-header bytes surviving a read timeout, so a deadline
    /// expiring mid-prefix never corrupts the stream position.
    header: Vec<u8>,
    /// `NOTIFY` frames that arrived while waiting for a response, in order.
    pending: VecDeque<Notification>,
    /// Retry behaviour; `None` (the default) fails fast on every error.
    retry: Option<RetryPolicy>,
    /// Jitter PRNG state (xorshift64), seeded from the policy.
    jitter: u64,
    /// How many retries this client has performed (for tests and load
    /// tooling; the initial attempt of each call does not count).
    retries: u64,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            addr,
            header: Vec::new(),
            pending: VecDeque::new(),
            retry: None,
            jitter: 0,
            retries: 0,
        })
    }

    /// Connects with a [`RetryPolicy`] installed from the start.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
    ) -> std::io::Result<Client> {
        let mut client = Self::connect(addr)?;
        client.set_retry_policy(Some(policy));
        Ok(client)
    }

    /// Installs (or removes, with `None`) the retry policy.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        self.jitter = policy.map(|p| p.seed | 1).unwrap_or(0);
        self.retry = policy;
    }

    /// How many retries this client has performed so far.
    pub fn retries_performed(&self) -> u64 {
        self.retries
    }

    /// Tears the connection down and dials the same address again.  Pending
    /// notifications are dropped: subscriptions are connection-bound, so
    /// whatever was queued belongs to a subscription that no longer exists.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        self.writer = stream.try_clone()?;
        self.reader = BufReader::new(stream);
        self.header.clear();
        self.pending.clear();
        Ok(())
    }

    /// Next value of the deterministic jitter stream.
    fn next_jitter(&mut self) -> u64 {
        let mut x = self.jitter.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter = x;
        x
    }

    /// Backoff before retry number `attempt` (0-based): capped exponential
    /// with half-range jitter, floored at the server's `retry_after_ms`
    /// hint when one was given.
    fn backoff(&mut self, policy: &RetryPolicy, attempt: u32, hint: Option<u64>) -> Duration {
        let exp = policy
            .base_backoff
            .saturating_mul(2u32.saturating_pow(attempt))
            .min(policy.max_backoff);
        let half = (exp.as_millis() as u64 / 2).max(1);
        let jittered = Duration::from_millis(half + self.next_jitter() % half);
        match hint {
            Some(ms) => jittered.max(Duration::from_millis(ms)),
            None => jittered,
        }
    }

    /// Runs `roundtrip` under the retry policy.  `idempotent` marks calls
    /// that are safe to repeat (reads, and updates carrying a `request_id`);
    /// everything else fails fast exactly as without a policy.
    fn exchange(&mut self, request: &Request, idempotent: bool) -> Result<Json, ClientError> {
        let Some(policy) = self.retry else {
            return self.roundtrip(request);
        };
        if !idempotent {
            return self.roundtrip(request);
        }
        let mut attempt = 0u32;
        loop {
            let err = match self.roundtrip(request) {
                Ok(value) => return Ok(value),
                Err(err) => err,
            };
            // Transport failures leave the stream in an unknown state; the
            // server also closes the connection after a `server busy` shed,
            // so both paths need a fresh dial before the next attempt.
            let (retryable, transport, hint) = match &err {
                ClientError::Io(_) => (true, true, None),
                ClientError::Protocol(msg) => (msg == "server closed the connection", true, None),
                ClientError::Server {
                    retryable,
                    message,
                    retry_after_ms,
                } => (
                    *retryable,
                    message.starts_with("server busy"),
                    *retry_after_ms,
                ),
            };
            if !retryable || attempt >= policy.max_retries {
                return Err(err);
            }
            std::thread::sleep(self.backoff(&policy, attempt, hint));
            if transport {
                // A failed reconnect consumes the attempt; the next loop
                // iteration's roundtrip will surface the dead stream again.
                let _ = self.reconnect();
            }
            attempt += 1;
            self.retries += 1;
        }
    }

    /// Reads one frame.  With a deadline, returns `Ok(None)` if no frame has
    /// *started* arriving by then; a frame whose first byte arrived in time
    /// is always read to completion (the server writes frames promptly and
    /// atomically, so this never blocks long).
    fn poll_frame(&mut self, deadline: Option<Instant>) -> Result<Option<String>, ClientError> {
        while self.header.last() != Some(&b'\n') {
            if self.header.len() >= MAX_HEADER_BYTES {
                return Err(ClientError::Protocol("frame length prefix too long".into()));
            }
            let timeout = match deadline {
                // Once the prefix started, finish the frame regardless.
                _ if !self.header.is_empty() => None,
                None => None,
                Some(deadline) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Ok(None);
                    }
                    Some(remaining.min(CLIENT_POLL))
                }
            };
            self.reader.get_ref().set_read_timeout(timeout)?;
            let budget = (MAX_HEADER_BYTES - self.header.len()) as u64;
            match (&mut self.reader)
                .take(budget)
                .read_until(b'\n', &mut self.header)
            {
                Ok(0) => return Err(ClientError::Protocol("server closed the connection".into())),
                Ok(_) => {} // loop re-checks for the delimiter
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {} // loop re-checks the deadline
                Err(e) => return Err(e.into()),
            }
        }
        self.reader.get_ref().set_read_timeout(None)?;
        let text = std::str::from_utf8(&self.header)
            .map_err(|_| ClientError::Protocol("frame length prefix is not UTF-8".into()))?
            .trim();
        let len: usize = text
            .parse()
            .map_err(|_| ClientError::Protocol(format!("bad frame length prefix '{text}'")))?;
        if len > MAX_FRAME_BYTES {
            return Err(ClientError::Protocol(format!(
                "frame of {len} bytes exceeds limit"
            )));
        }
        self.header.clear();
        let mut payload = vec![0u8; len];
        self.reader.read_exact(&mut payload)?;
        String::from_utf8(payload)
            .map(Some)
            .map_err(|_| ClientError::Protocol("frame payload is not UTF-8".into()))
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Json, ClientError> {
        write_frame(&mut self.writer, &request.encode())?;
        loop {
            let payload = self
                .poll_frame(None)?
                .expect("a deadline-free poll always yields a frame");
            let value = crate::protocol::json::parse(&payload).map_err(ClientError::Protocol)?;
            // A NOTIFY may slip in ahead of the response; queue it for the
            // next `wait_notify` and keep reading.
            if value.get("notify").and_then(Json::as_bool) == Some(true) {
                let notification = Self::parse_notification(&value)?;
                self.pending.push_back(notification);
                continue;
            }
            return match value.get("ok").and_then(Json::as_bool) {
                Some(true) => Ok(value),
                Some(false) => Err(ClientError::Server {
                    message: value
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("unspecified error")
                        .to_string(),
                    retryable: value
                        .get("retryable")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                    retry_after_ms: value
                        .get("retry_after_ms")
                        .and_then(Json::as_usize)
                        .map(|ms| ms as u64),
                }),
                None => Err(ClientError::Protocol("response lacks 'ok'".into())),
            };
        }
    }

    /// Runs a MaxRank query with default options.
    pub fn query(&mut self, dataset: &str, focal: RecordId) -> Result<QueryReply, ClientError> {
        self.query_with(dataset, focal, QueryOptions::default())
    }

    /// Runs a MaxRank / iMaxRank query.
    pub fn query_with(
        &mut self,
        dataset: &str,
        focal: RecordId,
        options: QueryOptions,
    ) -> Result<QueryReply, ClientError> {
        let request = Request::Query {
            dataset: dataset.to_string(),
            focal,
            algorithm: options.algorithm,
            tau: options.tau,
            timeout_ms: options.timeout.map(|t| t.as_millis() as u64),
            no_cache: options.no_cache,
            max_regions: options.max_regions,
            threads: options.threads.max(1),
        };
        let value = self.exchange(&request, true)?;
        let field_usize = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| ClientError::Protocol(format!("missing numeric '{key}'")))
        };
        let orders = Self::parse_orders(&value)?;
        let witnesses = Self::parse_witnesses(&value)?;
        Ok(QueryReply {
            k_star: field_usize("k_star")?,
            tau: field_usize("tau")?,
            algorithm: value
                .get("algorithm")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            region_count: field_usize("region_count")?,
            cached: value
                .get("cached")
                .and_then(Json::as_bool)
                .ok_or_else(|| ClientError::Protocol("missing 'cached'".into()))?,
            version: field_usize("version")? as u64,
            io_reads: field_usize("io_reads")? as u64,
            cpu_us: field_usize("cpu_us")? as u64,
            orders,
            witnesses,
        })
    }

    fn parse_orders(value: &Json) -> Result<Vec<usize>, ClientError> {
        value
            .get("orders")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing 'orders'".into()))?
            .iter()
            .map(|v| {
                v.as_usize()
                    .ok_or_else(|| ClientError::Protocol("non-integer order".into()))
            })
            .collect()
    }

    fn parse_witnesses(value: &Json) -> Result<Vec<Vec<f64>>, ClientError> {
        value
            .get("witnesses")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing 'witnesses'".into()))?
            .iter()
            .map(|w| {
                w.as_array()
                    .ok_or_else(|| ClientError::Protocol("non-array witness".into()))?
                    .iter()
                    .map(|x| {
                        x.as_f64()
                            .ok_or_else(|| ClientError::Protocol("non-numeric weight".into()))
                    })
                    .collect::<Result<Vec<f64>, _>>()
            })
            .collect()
    }

    /// Decodes the shared subscription fields of a `subscribe` ack or a
    /// change `NOTIFY`.
    fn parse_subscription_reply(value: &Json) -> Result<SubscriptionReply, ClientError> {
        let field_usize = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| ClientError::Protocol(format!("missing numeric '{key}'")))
        };
        Ok(SubscriptionReply {
            subscription: field_usize("subscription")? as u64,
            dataset: value
                .get("dataset")
                .and_then(Json::as_str)
                .ok_or_else(|| ClientError::Protocol("missing 'dataset'".into()))?
                .to_string(),
            focal: field_usize("focal")? as RecordId,
            version: field_usize("version")? as u64,
            k_star: field_usize("k_star")?,
            tau: field_usize("tau")?,
            algorithm: value
                .get("algorithm")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            region_count: field_usize("region_count")?,
            orders: Self::parse_orders(value)?,
            witnesses: Self::parse_witnesses(value)?,
        })
    }

    fn parse_notification(value: &Json) -> Result<Notification, ClientError> {
        if value.get("cancelled").and_then(Json::as_bool) == Some(true) {
            let field_usize = |key: &str| {
                value
                    .get(key)
                    .and_then(Json::as_usize)
                    .ok_or_else(|| ClientError::Protocol(format!("missing numeric '{key}'")))
            };
            return Ok(Notification::Cancelled {
                subscription: field_usize("subscription")? as u64,
                dataset: value
                    .get("dataset")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                focal: field_usize("focal")? as RecordId,
                version: field_usize("version")? as u64,
                reason: value
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified")
                    .to_string(),
            });
        }
        Self::parse_subscription_reply(value).map(Notification::Changed)
    }

    /// Registers a standing query.  The acknowledgement carries the initial
    /// result; afterwards the server pushes a `NOTIFY` whenever an update
    /// changes it — collect them with [`Client::wait_notify`].
    pub fn subscribe(
        &mut self,
        dataset: &str,
        focal: RecordId,
        algorithm: Algorithm,
        tau: usize,
    ) -> Result<SubscriptionReply, ClientError> {
        let request = Request::Subscribe {
            dataset: dataset.to_string(),
            focal,
            algorithm,
            tau,
        };
        // Safe to retry: if the connection died, whatever subscription the
        // lost attempt registered died with it.
        let value = self.exchange(&request, true)?;
        Self::parse_subscription_reply(&value)
    }

    /// Cancels a standing query by id.
    pub fn unsubscribe(&mut self, subscription: u64) -> Result<(), ClientError> {
        self.roundtrip(&Request::Unsubscribe { subscription })
            .map(|_| ())
    }

    /// Waits for the next server-push notification.  Returns `Ok(None)` if
    /// `timeout` elapses first; with `None`, blocks until one arrives (or
    /// the connection drops).
    pub fn wait_notify(
        &mut self,
        timeout: Option<Duration>,
    ) -> Result<Option<Notification>, ClientError> {
        if let Some(notification) = self.pending.pop_front() {
            return Ok(Some(notification));
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        let Some(payload) = self.poll_frame(deadline)? else {
            return Ok(None);
        };
        let value = crate::protocol::json::parse(&payload).map_err(ClientError::Protocol)?;
        if value.get("notify").and_then(Json::as_bool) == Some(true) {
            return Self::parse_notification(&value).map(Some);
        }
        Err(ClientError::Protocol(
            "unexpected non-notify frame outside an exchange".into(),
        ))
    }

    /// Applies an update batch to a dataset: `inserts` rows (each matching
    /// the dataset dimensionality) followed by `deletes` record ids.  The
    /// server applies the batch atomically; the reply carries the new
    /// dataset version and the ids assigned to the inserted rows.
    pub fn update(
        &mut self,
        dataset: &str,
        inserts: &[Vec<f64>],
        deletes: &[RecordId],
    ) -> Result<UpdateReply, ClientError> {
        self.update_with_id(dataset, inserts, deletes, None)
    }

    /// Like [`Client::update`], with a client-generated `request_id`.  The
    /// server keeps a per-dataset dedup window of recent ids, so resending
    /// the same id (e.g. after a broken connection mid-acknowledgement)
    /// replays the original receipt instead of applying the batch twice —
    /// which is also what makes an id-carrying update safe to retry under a
    /// [`RetryPolicy`].
    pub fn update_with_id(
        &mut self,
        dataset: &str,
        inserts: &[Vec<f64>],
        deletes: &[RecordId],
        request_id: Option<&str>,
    ) -> Result<UpdateReply, ClientError> {
        let request = Request::Update {
            dataset: dataset.to_string(),
            request_id: request_id.map(str::to_string),
            inserts: inserts.to_vec(),
            deletes: deletes.to_vec(),
        };
        let value = self.exchange(&request, request_id.is_some())?;
        let field_usize = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| ClientError::Protocol(format!("missing numeric '{key}'")))
        };
        let inserted = value
            .get("inserted")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing 'inserted'".into()))?
            .iter()
            .map(|v| {
                v.as_usize()
                    .filter(|&id| id <= RecordId::MAX as usize)
                    .map(|id| id as RecordId)
                    .ok_or_else(|| ClientError::Protocol("non-integer inserted id".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(UpdateReply {
            version: field_usize("version")? as u64,
            records: field_usize("records")?,
            inserted,
            deleted: field_usize("deleted")?,
        })
    }

    /// Fetches the server's counters.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        let value = self.exchange(&Request::Stats, true)?;
        let section = |name: &str| {
            value
                .get(name)
                .cloned()
                .ok_or_else(|| ClientError::Protocol(format!("missing '{name}'")))
        };
        let num = |obj: &Json, key: &str| {
            obj.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| ClientError::Protocol(format!("missing numeric '{key}'")))
        };
        let cache = section("cache")?;
        let pool = section("pool")?;
        // `query_stats` was added in PR 5; tolerate servers without it.
        let per_dataset = value
            .get("query_stats")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|d| {
                Ok(DatasetQueryStats {
                    dataset: d
                        .get("dataset")
                        .and_then(Json::as_str)
                        .ok_or_else(|| {
                            ClientError::Protocol("query_stats entry without dataset".into())
                        })?
                        .to_string(),
                    queries: num(d, "queries")? as u64,
                    cache_hits: num(d, "cache_hits")? as u64,
                    cpu_us: num(d, "cpu_us")? as u64,
                    io_reads: num(d, "io_reads")? as u64,
                    cells_tested: num(d, "cells_tested")? as u64,
                    lp_calls: num(d, "lp_calls")? as u64,
                    witness_hits: num(d, "witness_hits")? as u64,
                })
            })
            .collect::<Result<Vec<_>, ClientError>>()?;
        // `durability` was added in PR 6; tolerate servers without it.
        let durability = value
            .get("durability")
            .map(|d| {
                let field = |key: &str| num(d, key).map(|v| v as u64);
                Ok::<_, ClientError>(DurabilityStats {
                    durable_datasets: field("durable_datasets")?,
                    recovered_datasets: field("recovered_datasets")?,
                    wal_batches_replayed: field("wal_batches_replayed")?,
                    torn_bytes_discarded: field("torn_bytes_discarded")?,
                    recovery_pages_read: field("recovery_pages_read")?,
                    wal_appends: field("wal_appends")?,
                    wal_appended_bytes: field("wal_appended_bytes")?,
                    checkpoints: field("checkpoints")?,
                })
            })
            .transpose()?
            .unwrap_or_default();
        // `subscriptions` arrived with the subscription subsystem; tolerate
        // servers without it (same convention as `durability`).
        let subscriptions = value
            .get("subscriptions")
            .map(|s| {
                let field = |key: &str| num(s, key).map(|v| v as u64);
                Ok::<_, ClientError>(SubscriptionStats {
                    active: field("active")?,
                    deltas_triaged: field("deltas_triaged")?,
                    unaffected_skips: field("unaffected_skips")?,
                    partial_repairs: field("partial_repairs")?,
                    full_reevals: field("full_reevals")?,
                })
            })
            .transpose()?
            .unwrap_or_default();
        // `reliability` and `degraded` arrived with the robustness layer;
        // tolerate servers without them.
        let reliability = value
            .get("reliability")
            .map(|r| {
                let field = |key: &str| num(r, key).map(|v| v as u64);
                Ok::<_, ClientError>(ReliabilityStats {
                    connections_shed: field("connections_shed")?,
                    idle_disconnects: field("idle_disconnects")?,
                    update_dedup_hits: field("update_dedup_hits")?,
                })
            })
            .transpose()?
            .unwrap_or_default();
        let degraded = value
            .get("degraded")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect();
        Ok(StatsReply {
            cache: CacheStats {
                hits: num(&cache, "hits")? as u64,
                misses: num(&cache, "misses")? as u64,
                evictions: num(&cache, "evictions")? as u64,
                // `evictions_stale` arrived with the subscription subsystem;
                // tolerate servers without it.
                evictions_stale: cache
                    .get("evictions_stale")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0) as u64,
                len: num(&cache, "len")? as usize,
                capacity: num(&cache, "capacity")? as usize,
            },
            pool: PoolStats {
                workers: num(&pool, "workers")? as usize,
                queue_capacity: num(&pool, "queue_capacity")? as usize,
                queue_depth: num(&pool, "queue_depth")? as usize,
                executed: num(&pool, "executed")? as u64,
                coalesced: num(&pool, "coalesced")? as u64,
                timed_out: num(&pool, "timed_out")? as u64,
                // `deadline_rejected` arrived with the observability layer;
                // tolerate servers without it.
                deadline_rejected: pool
                    .get("deadline_rejected")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0) as u64,
            },
            datasets: value
                .get("datasets")
                .and_then(Json::as_array)
                .unwrap_or(&[])
                .iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect(),
            per_dataset,
            durability,
            subscriptions,
            reliability,
            degraded,
        })
    }

    /// Fetches the Prometheus exposition text (the `metrics` verb).  The
    /// text travels as a JSON string, so counter values stay integer-exact.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let value = self.exchange(&Request::Metrics, true)?;
        value
            .get("metrics")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("missing 'metrics'".into()))
    }

    /// Lists registered datasets as `(name, live records, dims)`.
    pub fn list(&mut self) -> Result<Vec<(String, usize, usize)>, ClientError> {
        let value = self.exchange(&Request::List, true)?;
        value
            .get("datasets")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing 'datasets'".into()))?
            .iter()
            .map(|d| {
                let name = d
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ClientError::Protocol("dataset without name".into()))?;
                let records = d.get("records").and_then(Json::as_usize).unwrap_or(0);
                let dims = d.get("dims").and_then(Json::as_usize).unwrap_or(0);
                Ok((name.to_string(), records, dims))
            })
            .collect()
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.exchange(&Request::Ping, true).map(|_| ())
    }

    /// Asks the server to shut down gracefully.  Never retried: a broken
    /// connection here most likely means the shutdown landed.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.roundtrip(&Request::Shutdown).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{DatasetRegistry, DatasetSpec};
    use crate::server::Server;
    use crate::service::{MrqService, ServiceConfig};
    use std::sync::Arc;

    fn demo_server() -> Server {
        let registry = Arc::new(DatasetRegistry::new());
        registry.register("demo", &DatasetSpec::Demo).unwrap();
        let service = Arc::new(MrqService::new(
            registry,
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        ));
        Server::start(service, "127.0.0.1:0").unwrap()
    }

    #[test]
    fn client_query_stats_list_ping() {
        let server = demo_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.ping().unwrap();

        let reply = client.query("demo", 5).unwrap();
        assert_eq!(reply.k_star, 3);
        assert_eq!(reply.region_count, 2);
        assert_eq!(reply.orders.len(), 2);
        assert_eq!(reply.algorithm, "aa2d");
        assert!(!reply.cached);
        // Witnesses are full-dimensional permissible vectors.
        for w in &reply.witnesses {
            assert_eq!(w.len(), 2);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }

        let again = client.query("demo", 5).unwrap();
        assert!(again.cached);
        assert_eq!(again.k_star, 3);

        let stats = client.stats().unwrap();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.datasets, vec!["demo".to_string()]);
        assert_eq!(stats.pool.workers, 2);
        // Per-dataset totals round-trip through the wire format.
        assert_eq!(stats.per_dataset.len(), 1);
        let demo = &stats.per_dataset[0];
        assert_eq!(demo.dataset, "demo");
        assert_eq!(demo.queries, 1);
        assert_eq!(demo.cache_hits, 1);
        assert!(demo.io_reads > 0);

        assert_eq!(client.list().unwrap(), vec![("demo".to_string(), 6, 2)]);

        // Errors surface as ClientError::Server.
        let err = client.query("demo", 99).unwrap_err();
        assert!(matches!(err, ClientError::Server { .. }), "{err}");
        server.shutdown();
    }

    #[test]
    fn client_max_regions_caps_payload_not_count() {
        let server = demo_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let reply = client
            .query_with(
                "demo",
                5,
                QueryOptions {
                    max_regions: Some(1),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        assert_eq!(reply.region_count, 2);
        assert_eq!(reply.orders.len(), 1);
        assert_eq!(reply.witnesses.len(), 1);
        server.shutdown();
    }

    #[test]
    fn client_update_round_trip() {
        let server = demo_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let before = client.query("demo", 5).unwrap();
        assert_eq!(before.version, 0);
        assert_eq!(before.k_star, 3);

        let reply = client.update("demo", &[vec![0.95, 0.95]], &[0]).unwrap();
        assert_eq!(
            reply,
            UpdateReply {
                version: 2,
                records: 6,
                inserted: vec![6],
                deleted: 1,
            }
        );

        // A follow-up query runs at the new version (r1 was deleted, but the
        // new record dominates the focal, so k* stays 3), uncached.
        let after = client.query("demo", 5).unwrap();
        assert_eq!(after.version, 2);
        assert!(!after.cached);

        // LIST reports the live record count (6: one slot of 7 is a
        // tombstone), consistent with the update reply.
        assert_eq!(client.list().unwrap(), vec![("demo".to_string(), 6, 2)]);

        // Errors surface as server errors, and the dataset is untouched.
        let err = client.update("demo", &[], &[0]).unwrap_err();
        assert!(matches!(err, ClientError::Server { .. }), "{err}");
        let err = client.update("demo", &[vec![0.1]], &[]).unwrap_err();
        assert!(matches!(err, ClientError::Server { .. }), "{err}");
        assert_eq!(client.query("demo", 5).unwrap().version, 2);

        // Querying the deleted focal yields a friendly server error.
        let err = client.query("demo", 0).unwrap_err();
        match err {
            ClientError::Server { message, .. } => {
                assert!(message.contains("deleted"), "{message}")
            }
            other => panic!("expected server error, got {other}"),
        }
        server.shutdown();
    }

    #[test]
    fn client_subscribe_notify_round_trip() {
        let server = demo_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let ack = client.subscribe("demo", 5, Algorithm::Auto, 0).unwrap();
        assert_eq!(ack.k_star, 3);
        assert_eq!(ack.version, 0);
        assert_eq!(ack.algorithm, "aa2d");
        assert_eq!(ack.orders.len(), ack.region_count);

        // An unaffected update produces no NOTIFY — the wait times out.
        let mut updater = Client::connect(server.local_addr()).unwrap();
        updater.update("demo", &[vec![0.05, 0.05]], &[]).unwrap();
        assert_eq!(
            client
                .wait_notify(Some(Duration::from_millis(600)))
                .unwrap(),
            None
        );
        let stats = updater.stats().unwrap();
        assert_eq!(stats.subscriptions.active, 1);
        assert_eq!(stats.subscriptions.unaffected_skips, 1);
        assert!(stats.cache.evictions_stale <= stats.cache.evictions + 1);

        // A dominating insert must push a change with the new version.
        updater.update("demo", &[vec![0.95, 0.95]], &[]).unwrap();
        let notification = client
            .wait_notify(Some(Duration::from_secs(5)))
            .unwrap()
            .expect("a change NOTIFY");
        match notification {
            Notification::Changed(reply) => {
                assert_eq!(reply.subscription, ack.subscription);
                assert_eq!(reply.version, 2);
                assert_eq!(reply.k_star, 4);
                assert_eq!(reply.orders.len(), reply.region_count);
            }
            other => panic!("expected change, got {other:?}"),
        }

        // Deleting the focal cancels the subscription.
        updater.update("demo", &[], &[5]).unwrap();
        let notification = client
            .wait_notify(Some(Duration::from_secs(5)))
            .unwrap()
            .expect("a cancellation NOTIFY");
        match notification {
            Notification::Cancelled {
                reason, version, ..
            } => {
                assert!(reason.contains("deleted"), "{reason}");
                assert_eq!(version, 3);
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
        assert_eq!(updater.stats().unwrap().subscriptions.active, 0);

        // The connection still answers ordinary requests afterwards.
        client.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn client_unsubscribe_round_trip() {
        let server = demo_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let ack = client.subscribe("demo", 5, Algorithm::Auto, 1).unwrap();
        client.unsubscribe(ack.subscription).unwrap();
        // A second unsubscribe of the same id is a server error.
        let err = client.unsubscribe(ack.subscription).unwrap_err();
        match err {
            ClientError::Server { message, .. } => {
                assert!(message.contains("unknown subscription"), "{message}")
            }
            other => panic!("expected server error, got {other}"),
        }
        // No NOTIFY arrives for an affecting update once unsubscribed.
        client.update("demo", &[vec![0.95, 0.95]], &[]).unwrap();
        assert_eq!(
            client
                .wait_notify(Some(Duration::from_millis(600)))
                .unwrap(),
            None
        );
        server.shutdown();
    }

    #[test]
    fn stats_parsing_tolerates_absent_subscription_fields() {
        // A stats payload from a pre-subscription server: no `subscriptions`
        // object, no `evictions_stale` counter.  `Client::stats` must parse
        // it with the new fields defaulted to zero, not error.
        let payload = "{\"ok\":true,\
            \"cache\":{\"hits\":1,\"misses\":2,\"evictions\":0,\"len\":1,\"capacity\":8},\
            \"pool\":{\"workers\":2,\"queue_capacity\":16,\"queue_depth\":0,\
                      \"executed\":3,\"coalesced\":0,\"timed_out\":0},\
            \"datasets\":[\"demo\"]}";
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload = payload.to_string();
        let fake = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
            crate::protocol::read_frame(&mut reader).unwrap();
            let mut writer = stream;
            crate::protocol::write_frame(&mut writer, &payload).unwrap();
        });
        let mut client = Client::connect(addr).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.evictions_stale, 0);
        assert_eq!(stats.subscriptions, SubscriptionStats::default());
        assert_eq!(
            stats.durability,
            crate::registry::DurabilityStats::default()
        );
        fake.join().unwrap();
    }

    #[test]
    fn update_with_request_id_is_exactly_once() {
        let server = demo_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let first = client
            .update_with_id("demo", &[vec![0.9, 0.9]], &[], Some("op-1"))
            .unwrap();
        // The "retry": same id, same connection — the server must replay the
        // receipt, not apply the batch again.
        let second = client
            .update_with_id("demo", &[vec![0.9, 0.9]], &[], Some("op-1"))
            .unwrap();
        assert_eq!(first, second);
        assert_eq!(client.query("demo", 5).unwrap().version, first.version);
        let stats = client.stats().unwrap();
        assert_eq!(stats.reliability.update_dedup_hits, 1);
        server.shutdown();
    }

    #[test]
    fn retrying_client_rides_out_server_busy_sheds() {
        let registry = Arc::new(DatasetRegistry::new());
        registry.register("demo", &DatasetSpec::Demo).unwrap();
        let service = Arc::new(MrqService::new(
            registry,
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        ));
        let server = Server::start_with(
            service,
            "127.0.0.1:0",
            crate::server::ServerConfig {
                max_connections: 1,
                ..crate::server::ServerConfig::default()
            },
        )
        .unwrap();
        // One connection hogs the single slot…
        let mut holder = Client::connect(server.local_addr()).unwrap();
        holder.ping().unwrap();
        // …and releases it shortly, while the retrying client backs off.
        let release = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            drop(holder);
        });
        let mut client = Client::connect_with_retry(
            server.local_addr(),
            RetryPolicy {
                max_retries: 20,
                base_backoff: Duration::from_millis(25),
                max_backoff: Duration::from_millis(200),
                seed: 7,
            },
        )
        .unwrap();
        client.ping().expect("retries must outlast the busy spell");
        assert!(client.retries_performed() >= 1);
        assert!(
            server.service().stats().reliability.connections_shed >= 1,
            "the busy spell must have shed at least one attempt"
        );
        release.join().unwrap();
        server.shutdown();
    }

    #[test]
    fn non_retryable_errors_fail_fast_even_with_policy() {
        let server = demo_server();
        let mut client = Client::connect_with_retry(
            server.local_addr(),
            RetryPolicy {
                max_retries: 5,
                base_backoff: Duration::from_millis(5),
                max_backoff: Duration::from_millis(10),
                seed: 3,
            },
        )
        .unwrap();
        let err = client.query("demo", 99).unwrap_err();
        assert!(
            matches!(
                err,
                ClientError::Server {
                    retryable: false,
                    ..
                }
            ),
            "{err}"
        );
        assert_eq!(client.retries_performed(), 0);
        server.shutdown();
    }

    #[test]
    fn client_shutdown_round_trip() {
        let server = demo_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.shutdown_server().unwrap();
        server.wait();
    }
}
