//! A small blocking client for the loopback protocol, used by the
//! `maxrank-client` binary, the integration tests and the CI smoke check.

use crate::cache::CacheStats;
use crate::pool::PoolStats;
use crate::protocol::json::Json;
use crate::protocol::{read_frame, write_frame, Request};
use crate::querystats::DatasetQueryStats;
use crate::registry::DurabilityStats;
use mrq_core::Algorithm;
use mrq_data::RecordId;
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server sent something the client cannot make sense of.
    Protocol(String),
    /// The server answered with an error frame.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Options of one `query` call beyond dataset + focal.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOptions {
    /// Requested algorithm.
    pub algorithm: Algorithm,
    /// iMaxRank slack.
    pub tau: usize,
    /// Per-request deadline.
    pub timeout: Option<Duration>,
    /// Bypass the server's result cache.
    pub no_cache: bool,
    /// Cap on the number of regions returned (None = all).
    pub max_regions: Option<usize>,
    /// Threads for the server-side cell enumeration of this request (0 and 1
    /// both mean sequential; the server clamps the value).
    pub threads: usize,
}

/// A decoded `query` answer.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Best attainable rank.
    pub k_star: usize,
    /// iMaxRank slack the query ran with.
    pub tau: usize,
    /// Concrete algorithm that produced the answer.
    pub algorithm: String,
    /// Total number of result regions.
    pub region_count: usize,
    /// Whether the answer came from the server's result cache.
    pub cached: bool,
    /// Dataset version the answer was computed at.
    pub version: u64,
    /// Simulated page reads of the evaluation.
    pub io_reads: u64,
    /// CPU time of the evaluation, in microseconds.
    pub cpu_us: u64,
    /// Per-returned-region order (rank).
    pub orders: Vec<usize>,
    /// Per-returned-region representative preference vector.
    pub witnesses: Vec<Vec<f64>>,
}

/// A decoded `update` acknowledgement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateReply {
    /// Dataset version after the batch.
    pub version: u64,
    /// Live records after the batch.
    pub records: usize,
    /// Ids assigned to the inserted rows, in input order.
    pub inserted: Vec<RecordId>,
    /// Number of deleted records.
    pub deleted: usize,
}

/// A decoded `stats` answer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsReply {
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Worker-pool counters.
    pub pool: PoolStats,
    /// Registered dataset names.
    pub datasets: Vec<String>,
    /// Cumulative per-dataset query statistics (ordered by dataset name;
    /// absent entries mean the dataset was never queried).
    pub per_dataset: Vec<DatasetQueryStats>,
    /// Durability counters (all zero against a server without `--data-dir`).
    pub durability: DurabilityStats,
}

/// A blocking protocol client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Json, ClientError> {
        write_frame(&mut self.writer, &request.encode())?;
        let payload = read_frame(&mut self.reader)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
        let value = crate::protocol::json::parse(&payload).map_err(ClientError::Protocol)?;
        match value.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(value),
            Some(false) => Err(ClientError::Server(
                value
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified error")
                    .to_string(),
            )),
            None => Err(ClientError::Protocol("response lacks 'ok'".into())),
        }
    }

    /// Runs a MaxRank query with default options.
    pub fn query(&mut self, dataset: &str, focal: RecordId) -> Result<QueryReply, ClientError> {
        self.query_with(dataset, focal, QueryOptions::default())
    }

    /// Runs a MaxRank / iMaxRank query.
    pub fn query_with(
        &mut self,
        dataset: &str,
        focal: RecordId,
        options: QueryOptions,
    ) -> Result<QueryReply, ClientError> {
        let request = Request::Query {
            dataset: dataset.to_string(),
            focal,
            algorithm: options.algorithm,
            tau: options.tau,
            timeout_ms: options.timeout.map(|t| t.as_millis() as u64),
            no_cache: options.no_cache,
            max_regions: options.max_regions,
            threads: options.threads.max(1),
        };
        let value = self.roundtrip(&request)?;
        let field_usize = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| ClientError::Protocol(format!("missing numeric '{key}'")))
        };
        let orders = value
            .get("orders")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing 'orders'".into()))?
            .iter()
            .map(|v| {
                v.as_usize()
                    .ok_or_else(|| ClientError::Protocol("non-integer order".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let witnesses = value
            .get("witnesses")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing 'witnesses'".into()))?
            .iter()
            .map(|w| {
                w.as_array()
                    .ok_or_else(|| ClientError::Protocol("non-array witness".into()))?
                    .iter()
                    .map(|x| {
                        x.as_f64()
                            .ok_or_else(|| ClientError::Protocol("non-numeric weight".into()))
                    })
                    .collect::<Result<Vec<f64>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(QueryReply {
            k_star: field_usize("k_star")?,
            tau: field_usize("tau")?,
            algorithm: value
                .get("algorithm")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            region_count: field_usize("region_count")?,
            cached: value
                .get("cached")
                .and_then(Json::as_bool)
                .ok_or_else(|| ClientError::Protocol("missing 'cached'".into()))?,
            version: field_usize("version")? as u64,
            io_reads: field_usize("io_reads")? as u64,
            cpu_us: field_usize("cpu_us")? as u64,
            orders,
            witnesses,
        })
    }

    /// Applies an update batch to a dataset: `inserts` rows (each matching
    /// the dataset dimensionality) followed by `deletes` record ids.  The
    /// server applies the batch atomically; the reply carries the new
    /// dataset version and the ids assigned to the inserted rows.
    pub fn update(
        &mut self,
        dataset: &str,
        inserts: &[Vec<f64>],
        deletes: &[RecordId],
    ) -> Result<UpdateReply, ClientError> {
        let request = Request::Update {
            dataset: dataset.to_string(),
            inserts: inserts.to_vec(),
            deletes: deletes.to_vec(),
        };
        let value = self.roundtrip(&request)?;
        let field_usize = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| ClientError::Protocol(format!("missing numeric '{key}'")))
        };
        let inserted = value
            .get("inserted")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing 'inserted'".into()))?
            .iter()
            .map(|v| {
                v.as_usize()
                    .filter(|&id| id <= RecordId::MAX as usize)
                    .map(|id| id as RecordId)
                    .ok_or_else(|| ClientError::Protocol("non-integer inserted id".into()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(UpdateReply {
            version: field_usize("version")? as u64,
            records: field_usize("records")?,
            inserted,
            deleted: field_usize("deleted")?,
        })
    }

    /// Fetches the server's counters.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        let value = self.roundtrip(&Request::Stats)?;
        let section = |name: &str| {
            value
                .get(name)
                .cloned()
                .ok_or_else(|| ClientError::Protocol(format!("missing '{name}'")))
        };
        let num = |obj: &Json, key: &str| {
            obj.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| ClientError::Protocol(format!("missing numeric '{key}'")))
        };
        let cache = section("cache")?;
        let pool = section("pool")?;
        // `query_stats` was added in PR 5; tolerate servers without it.
        let per_dataset = value
            .get("query_stats")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|d| {
                Ok(DatasetQueryStats {
                    dataset: d
                        .get("dataset")
                        .and_then(Json::as_str)
                        .ok_or_else(|| {
                            ClientError::Protocol("query_stats entry without dataset".into())
                        })?
                        .to_string(),
                    queries: num(d, "queries")? as u64,
                    cache_hits: num(d, "cache_hits")? as u64,
                    cpu_us: num(d, "cpu_us")? as u64,
                    io_reads: num(d, "io_reads")? as u64,
                    cells_tested: num(d, "cells_tested")? as u64,
                    lp_calls: num(d, "lp_calls")? as u64,
                    witness_hits: num(d, "witness_hits")? as u64,
                })
            })
            .collect::<Result<Vec<_>, ClientError>>()?;
        // `durability` was added in PR 6; tolerate servers without it.
        let durability = value
            .get("durability")
            .map(|d| {
                let field = |key: &str| num(d, key).map(|v| v as u64);
                Ok::<_, ClientError>(DurabilityStats {
                    durable_datasets: field("durable_datasets")?,
                    recovered_datasets: field("recovered_datasets")?,
                    wal_batches_replayed: field("wal_batches_replayed")?,
                    torn_bytes_discarded: field("torn_bytes_discarded")?,
                    recovery_pages_read: field("recovery_pages_read")?,
                    wal_appends: field("wal_appends")?,
                    wal_appended_bytes: field("wal_appended_bytes")?,
                    checkpoints: field("checkpoints")?,
                })
            })
            .transpose()?
            .unwrap_or_default();
        Ok(StatsReply {
            cache: CacheStats {
                hits: num(&cache, "hits")? as u64,
                misses: num(&cache, "misses")? as u64,
                evictions: num(&cache, "evictions")? as u64,
                len: num(&cache, "len")? as usize,
                capacity: num(&cache, "capacity")? as usize,
            },
            pool: PoolStats {
                workers: num(&pool, "workers")? as usize,
                queue_capacity: num(&pool, "queue_capacity")? as usize,
                queue_depth: num(&pool, "queue_depth")? as usize,
                executed: num(&pool, "executed")? as u64,
                coalesced: num(&pool, "coalesced")? as u64,
                timed_out: num(&pool, "timed_out")? as u64,
            },
            datasets: value
                .get("datasets")
                .and_then(Json::as_array)
                .unwrap_or(&[])
                .iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect(),
            per_dataset,
            durability,
        })
    }

    /// Lists registered datasets as `(name, live records, dims)`.
    pub fn list(&mut self) -> Result<Vec<(String, usize, usize)>, ClientError> {
        let value = self.roundtrip(&Request::List)?;
        value
            .get("datasets")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing 'datasets'".into()))?
            .iter()
            .map(|d| {
                let name = d
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ClientError::Protocol("dataset without name".into()))?;
                let records = d.get("records").and_then(Json::as_usize).unwrap_or(0);
                let dims = d.get("dims").and_then(Json::as_usize).unwrap_or(0);
                Ok((name.to_string(), records, dims))
            })
            .collect()
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.roundtrip(&Request::Ping).map(|_| ())
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.roundtrip(&Request::Shutdown).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{DatasetRegistry, DatasetSpec};
    use crate::server::Server;
    use crate::service::{MrqService, ServiceConfig};
    use std::sync::Arc;

    fn demo_server() -> Server {
        let registry = Arc::new(DatasetRegistry::new());
        registry.register("demo", &DatasetSpec::Demo).unwrap();
        let service = Arc::new(MrqService::new(
            registry,
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        ));
        Server::start(service, "127.0.0.1:0").unwrap()
    }

    #[test]
    fn client_query_stats_list_ping() {
        let server = demo_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.ping().unwrap();

        let reply = client.query("demo", 5).unwrap();
        assert_eq!(reply.k_star, 3);
        assert_eq!(reply.region_count, 2);
        assert_eq!(reply.orders.len(), 2);
        assert_eq!(reply.algorithm, "aa2d");
        assert!(!reply.cached);
        // Witnesses are full-dimensional permissible vectors.
        for w in &reply.witnesses {
            assert_eq!(w.len(), 2);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }

        let again = client.query("demo", 5).unwrap();
        assert!(again.cached);
        assert_eq!(again.k_star, 3);

        let stats = client.stats().unwrap();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.datasets, vec!["demo".to_string()]);
        assert_eq!(stats.pool.workers, 2);
        // Per-dataset totals round-trip through the wire format.
        assert_eq!(stats.per_dataset.len(), 1);
        let demo = &stats.per_dataset[0];
        assert_eq!(demo.dataset, "demo");
        assert_eq!(demo.queries, 1);
        assert_eq!(demo.cache_hits, 1);
        assert!(demo.io_reads > 0);

        assert_eq!(client.list().unwrap(), vec![("demo".to_string(), 6, 2)]);

        // Errors surface as ClientError::Server.
        let err = client.query("demo", 99).unwrap_err();
        assert!(matches!(err, ClientError::Server(_)), "{err}");
        server.shutdown();
    }

    #[test]
    fn client_max_regions_caps_payload_not_count() {
        let server = demo_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let reply = client
            .query_with(
                "demo",
                5,
                QueryOptions {
                    max_regions: Some(1),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
        assert_eq!(reply.region_count, 2);
        assert_eq!(reply.orders.len(), 1);
        assert_eq!(reply.witnesses.len(), 1);
        server.shutdown();
    }

    #[test]
    fn client_update_round_trip() {
        let server = demo_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let before = client.query("demo", 5).unwrap();
        assert_eq!(before.version, 0);
        assert_eq!(before.k_star, 3);

        let reply = client.update("demo", &[vec![0.95, 0.95]], &[0]).unwrap();
        assert_eq!(
            reply,
            UpdateReply {
                version: 2,
                records: 6,
                inserted: vec![6],
                deleted: 1,
            }
        );

        // A follow-up query runs at the new version (r1 was deleted, but the
        // new record dominates the focal, so k* stays 3), uncached.
        let after = client.query("demo", 5).unwrap();
        assert_eq!(after.version, 2);
        assert!(!after.cached);

        // LIST reports the live record count (6: one slot of 7 is a
        // tombstone), consistent with the update reply.
        assert_eq!(client.list().unwrap(), vec![("demo".to_string(), 6, 2)]);

        // Errors surface as server errors, and the dataset is untouched.
        let err = client.update("demo", &[], &[0]).unwrap_err();
        assert!(matches!(err, ClientError::Server(_)), "{err}");
        let err = client.update("demo", &[vec![0.1]], &[]).unwrap_err();
        assert!(matches!(err, ClientError::Server(_)), "{err}");
        assert_eq!(client.query("demo", 5).unwrap().version, 2);

        // Querying the deleted focal yields a friendly server error.
        let err = client.query("demo", 0).unwrap_err();
        match err {
            ClientError::Server(msg) => assert!(msg.contains("deleted"), "{msg}"),
            other => panic!("expected server error, got {other}"),
        }
        server.shutdown();
    }

    #[test]
    fn client_shutdown_round_trip() {
        let server = demo_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.shutdown_server().unwrap();
        server.wait();
    }
}
