//! The dataset registry: load or generate each named dataset **once**, build
//! its R\*-tree index once, and hand out `Arc` handles that every worker
//! thread (and every request) shares.
//!
//! This is the piece that turns the one-shot CLI shape ("load CSV, build
//! tree, answer one query, exit") into a serving shape: index construction is
//! amortised over the lifetime of the process.
//!
//! # Snapshots and versions
//!
//! A registered name resolves to a [`DatasetHandle`], which owns the
//! *current* immutable snapshot ([`DatasetEntry`]: dataset + index + the
//! dataset's version).  Queries take an `Arc` of the snapshot and keep using
//! it for their whole lifetime, so a concurrent update never moves data out
//! from under an evaluation.  [`DatasetHandle::apply`] is copy-on-write: it
//! clones the snapshot, applies the batch through `Dataset::apply` and the
//! R\*-tree's incremental `insert`/`delete`, and atomically swaps the handle
//! to the new snapshot.  Updates to one dataset are serialized by a
//! per-handle mutex; queries are never blocked (they read the previous
//! snapshot until the swap).  A batch is atomic: if any update in it is
//! rejected the swap does not happen and the visible snapshot is unchanged.
//!
//! # Durability
//!
//! [`DatasetRegistry::register_durable`] backs a dataset with an on-disk
//! store (`mrq_data::storage`): a binary snapshot plus a write-ahead log.
//! [`DatasetHandle::apply`] then appends each batch to the WAL (fsynced)
//! *before* swapping the new snapshot in, so a batch is committed exactly
//! when it is durable; when the log outgrows
//! [`DurabilityOptions::checkpoint_wal_bytes`] the snapshot is rewritten and
//! the log truncated.  On restart the registry recovers the dataset from
//! disk (snapshot load + idempotent WAL replay with torn-tail detection)
//! and reports what it did through [`RecoveryReport`] and the cumulative
//! [`DurabilityStats`].

use crate::sync::{lock_or_recover, read_or_recover, write_or_recover};
use mrq_core::MaxRankQuery;
use mrq_data::io::read_csv;
use mrq_data::storage::{DatasetStore, RecoveryReport, WalBatch, WalOp};
use mrq_data::{synthetic, Dataset, Distribution, RealDataset, RecordId, Update, UpdateError};
use mrq_index::RStarTree;
use rand::{rngs::StdRng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// How many `(request_id → receipt)` pairs each dataset remembers for
/// exactly-once UPDATE retries (see [`DatasetHandle::apply_with_id`]).  Old
/// entries fall out FIFO; a retry arriving after its receipt was evicted is
/// re-applied, so clients should keep retry horizons well under the window.
pub const DEDUP_WINDOW: usize = 128;

/// One immutable snapshot of a dataset: records, index, version.
#[derive(Debug)]
pub struct DatasetEntry {
    name: String,
    data: Dataset,
    tree: RStarTree,
}

impl DatasetEntry {
    /// Builds an entry by bulk-loading the R\*-tree over `data`.
    pub fn build(name: impl Into<String>, data: Dataset) -> Self {
        let tree = RStarTree::bulk_load(&data);
        Self {
            name: name.into(),
            data,
            tree,
        }
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The shared R\*-tree index.
    pub fn tree(&self) -> &RStarTree {
        &self.tree
    }

    /// The dataset version this snapshot was taken at (see
    /// [`mrq_data::Dataset::version`]).  Result-cache keys carry it so a
    /// cached answer can never outlive the data it was computed from.
    pub fn version(&self) -> u64 {
        self.data.version()
    }

    /// A query engine borrowing this entry's dataset and index.
    pub fn engine(&self) -> MaxRankQuery<'_> {
        MaxRankQuery::new(&self.data, &self.tree)
    }
}

/// Receipt of one applied update batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Dataset version after the batch.
    pub version: u64,
    /// Ids assigned to the batch's insertions, in input order.
    pub inserted: Vec<RecordId>,
    /// Number of records deleted by the batch.
    pub deleted: usize,
    /// Live records after the batch.
    pub records: usize,
}

/// Durable-registration knobs (see [`DatasetRegistry::register_durable`]).
#[derive(Debug, Clone, Copy)]
pub struct DurabilityOptions {
    /// When the WAL grows past this many bytes, the next applied batch
    /// triggers a checkpoint (snapshot rewrite + log truncation).
    pub checkpoint_wal_bytes: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        Self {
            checkpoint_wal_bytes: 4 * 1024 * 1024,
        }
    }
}

/// Cumulative durability counters, shared by every durable dataset of one
/// registry.  All counters are **real** file I/O — bytes genuinely written
/// to or read from disk — in contrast to the simulated per-query `io_reads`
/// cost model (see `mrq_data::storage` and `mrq_index::IoStats` docs).
#[derive(Debug, Default)]
struct DurabilityBook {
    durable_datasets: AtomicU64,
    recovered_datasets: AtomicU64,
    wal_batches_replayed: AtomicU64,
    torn_bytes_discarded: AtomicU64,
    recovery_pages_read: AtomicU64,
    wal_appends: AtomicU64,
    wal_appended_bytes: AtomicU64,
    checkpoints: AtomicU64,
}

impl DurabilityBook {
    fn record_recovery(&self, report: &RecoveryReport) {
        self.recovered_datasets.fetch_add(1, Ordering::Relaxed);
        self.wal_batches_replayed
            .fetch_add(report.batches_replayed, Ordering::Relaxed);
        self.torn_bytes_discarded
            .fetch_add(report.torn_bytes_discarded, Ordering::Relaxed);
        self.recovery_pages_read
            .fetch_add(report.pages_read, Ordering::Relaxed);
    }

    fn snapshot(&self) -> DurabilityStats {
        DurabilityStats {
            durable_datasets: self.durable_datasets.load(Ordering::Relaxed),
            recovered_datasets: self.recovered_datasets.load(Ordering::Relaxed),
            wal_batches_replayed: self.wal_batches_replayed.load(Ordering::Relaxed),
            torn_bytes_discarded: self.torn_bytes_discarded.load(Ordering::Relaxed),
            recovery_pages_read: self.recovery_pages_read.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_appended_bytes: self.wal_appended_bytes.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time durability counters, surfaced through `STATS` (see
/// [`DatasetRegistry::durability_stats`]).  All zeros when no dataset was
/// registered durably.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Datasets currently backed by an on-disk store.
    pub durable_datasets: u64,
    /// Datasets recovered from an existing store at registration time.
    pub recovered_datasets: u64,
    /// WAL batches replayed across all recoveries.
    pub wal_batches_replayed: u64,
    /// Torn WAL tail bytes discarded across all recoveries.
    pub torn_bytes_discarded: u64,
    /// Real 4 KiB pages read from disk during recovery (actual file reads,
    /// *not* the paper's simulated page-access model).
    pub recovery_pages_read: u64,
    /// Update batches appended (and fsynced) to write-ahead logs.
    pub wal_appends: u64,
    /// Bytes appended to write-ahead logs.
    pub wal_appended_bytes: u64,
    /// Checkpoints taken (snapshot rewrite + WAL truncation).
    pub checkpoints: u64,
}

/// The storage side of a durable handle: the open store plus the
/// checkpoint policy and the registry-wide counter book.
#[derive(Debug)]
struct DurableState {
    store: Mutex<DatasetStore>,
    options: DurabilityOptions,
    book: Arc<DurabilityBook>,
}

/// A bounded FIFO window of applied-update receipts keyed by client
/// `request_id`, giving UPDATE retries exactly-once semantics (the retry
/// replays the receipt instead of re-applying the batch).
#[derive(Debug, Default)]
struct DedupWindow {
    receipts: HashMap<String, UpdateOutcome>,
    order: VecDeque<String>,
}

impl DedupWindow {
    fn get(&self, id: &str) -> Option<&UpdateOutcome> {
        self.receipts.get(id)
    }

    fn record(&mut self, id: &str, outcome: &UpdateOutcome) {
        if self
            .receipts
            .insert(id.to_string(), outcome.clone())
            .is_none()
        {
            self.order.push_back(id.to_string());
            while self.order.len() > DEDUP_WINDOW {
                if let Some(old) = self.order.pop_front() {
                    self.receipts.remove(&old);
                }
            }
        }
    }
}

/// The mutable cell behind a registered name: the current snapshot plus the
/// per-dataset update serialization lock (and, for durable datasets, the
/// on-disk store).
#[derive(Debug)]
pub struct DatasetHandle {
    current: RwLock<Arc<DatasetEntry>>,
    /// Serializes [`DatasetHandle::apply`] calls; queries never take it.
    update_lock: Mutex<()>,
    /// Present when the dataset is backed by a snapshot + WAL on disk.
    durable: Option<DurableState>,
    /// `Some(reason)` once a storage failure put the dataset into degraded
    /// read-only mode.  Never cleared in-process: a restart against a
    /// healthy disk recovers from the last durable state instead.
    degraded: Mutex<Option<String>>,
    /// Receipts for exactly-once UPDATE retries.
    dedup: Mutex<DedupWindow>,
}

impl DatasetHandle {
    fn new(entry: Arc<DatasetEntry>) -> Self {
        Self {
            current: RwLock::new(entry),
            update_lock: Mutex::new(()),
            durable: None,
            degraded: Mutex::new(None),
            dedup: Mutex::new(DedupWindow::default()),
        }
    }

    fn new_durable(entry: Arc<DatasetEntry>, state: DurableState) -> Self {
        Self {
            current: RwLock::new(entry),
            update_lock: Mutex::new(()),
            durable: Some(state),
            degraded: Mutex::new(None),
            dedup: Mutex::new(DedupWindow::default()),
        }
    }

    /// The degradation reason, if a storage failure put this dataset into
    /// read-only mode.
    pub fn degraded(&self) -> Option<String> {
        lock_or_recover(&self.degraded).clone()
    }

    fn mark_degraded(&self, reason: &str) {
        let mut slot = lock_or_recover(&self.degraded);
        if slot.is_none() {
            *slot = Some(reason.to_string());
        }
    }

    /// Whether this dataset is backed by an on-disk store.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Checkpoints a durable dataset now (no-op returning `false` for an
    /// in-memory one): rewrites the snapshot at the current version and
    /// truncates the WAL.
    pub fn checkpoint(&self) -> Result<bool, UpdateError> {
        let Some(dur) = &self.durable else {
            return Ok(false);
        };
        let _serial = lock_or_recover(&self.update_lock);
        if let Some(reason) = self.degraded() {
            return Err(UpdateError::Degraded(reason));
        }
        let snap = self.snapshot();
        // Fail-stop on poison (see `crate::sync`): a panic mid-append leaves
        // the store's in-memory offset disagreeing with the file.
        let mut store = dur.store.lock().expect("store lock poisoned");
        store
            .checkpoint(&snap.data)
            .map_err(|e| UpdateError::Storage(e.to_string()))?;
        dur.book.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// The current snapshot (a cheap `Arc` clone).
    pub fn snapshot(&self) -> Arc<DatasetEntry> {
        Arc::clone(&read_or_recover(&self.current))
    }

    /// Applies an update batch copy-on-write and swaps in the new snapshot.
    ///
    /// The batch is atomic: on the first rejected update the whole batch is
    /// discarded and the visible snapshot stays as it was.  Concurrent
    /// `apply` calls on the same handle are serialized; queries keep reading
    /// the previous snapshot until the swap and finish on whichever snapshot
    /// they started with.
    ///
    /// For a durable dataset the batch is appended to the write-ahead log
    /// (and fsynced) **before** the snapshot swap — durability before
    /// visibility, so a crash can lose at most updates that were never
    /// acknowledged.  A failed append ([`UpdateError::Storage`]) discards
    /// the batch entirely **and** transitions the dataset into degraded
    /// read-only mode: queries keep serving the last durable snapshot,
    /// further updates are refused with [`UpdateError::Degraded`] until the
    /// process restarts against a healthy disk.
    pub fn apply(&self, updates: &[Update]) -> Result<UpdateOutcome, UpdateError> {
        self.apply_with_id(updates, None)
            .map(|(outcome, _)| outcome)
    }

    /// Like [`DatasetHandle::apply`], with an optional client-generated
    /// `request_id` for exactly-once retries.  When the id matches a receipt
    /// in the bounded dedup window (see [`DEDUP_WINDOW`]) the batch is *not*
    /// re-applied; the original receipt is returned with the replay flag
    /// set.  The window is consulted and recorded under the per-dataset
    /// update lock, so a retry racing its original observes the receipt.
    pub fn apply_with_id(
        &self,
        updates: &[Update],
        request_id: Option<&str>,
    ) -> Result<(UpdateOutcome, bool), UpdateError> {
        let _serial = lock_or_recover(&self.update_lock);
        if let Some(id) = request_id {
            if let Some(receipt) = lock_or_recover(&self.dedup).get(id) {
                return Ok((receipt.clone(), true));
            }
        }
        if let Some(reason) = self.degraded() {
            return Err(UpdateError::Degraded(reason));
        }
        let base = self.snapshot();
        let mut data = base.data.clone();
        let mut tree = base.tree.clone();
        let mut inserted = Vec::new();
        let mut deleted = 0usize;
        let mut ops = Vec::with_capacity(updates.len());
        for update in updates {
            let applied = data.apply(update)?;
            match update {
                Update::Insert(row) => {
                    let id = applied.inserted.expect("insert reports an id");
                    tree.insert(id, row);
                    inserted.push(id);
                    ops.push(WalOp::Insert {
                        id,
                        row: row.clone(),
                    });
                }
                Update::Delete(id) => {
                    // The tombstoned slot still exposes its coordinates,
                    // which is exactly what the tree search needs.
                    let found = tree.delete(*id, data.record(*id));
                    debug_assert!(found, "dataset and index disagree on id {id}");
                    deleted += 1;
                    ops.push(WalOp::Delete { id: *id });
                }
            }
        }
        let mut checkpoint_failure = None;
        if let Some(dur) = &self.durable {
            // Fail-stop on poison (see `crate::sync`): a panic mid-append
            // leaves the store's in-memory offset disagreeing with the file.
            let mut store = dur.store.lock().expect("store lock poisoned");
            let batch = WalBatch {
                lsn: data.version(),
                ops,
            };
            let bytes = match store.append(&batch) {
                Ok(bytes) => bytes,
                Err(e) => {
                    // Not durable ⇒ not committed: reject the batch before
                    // the swap and go read-only.
                    let reason = e.to_string();
                    self.mark_degraded(&reason);
                    return Err(UpdateError::Storage(reason));
                }
            };
            dur.book.wal_appends.fetch_add(1, Ordering::Relaxed);
            dur.book
                .wal_appended_bytes
                .fetch_add(bytes, Ordering::Relaxed);
            if store.wal_bytes() > dur.options.checkpoint_wal_bytes {
                match store.checkpoint(&data) {
                    Ok(_) => {
                        dur.book.checkpoints.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        // The batch *is* durable (its append fsynced), so it
                        // commits; only the snapshot rewrite failed.  Recovery
                        // replays the longer WAL, and the dataset degrades so
                        // the unbounded log cannot keep growing.
                        checkpoint_failure = Some(e.to_string());
                    }
                }
            }
        }
        let entry = Arc::new(DatasetEntry {
            name: base.name.clone(),
            data,
            tree,
        });
        let outcome = UpdateOutcome {
            version: entry.version(),
            inserted,
            deleted,
            records: entry.data.live_len(),
        };
        *write_or_recover(&self.current) = entry;
        if let Some(id) = request_id {
            lock_or_recover(&self.dedup).record(id, &outcome);
        }
        if let Some(reason) = checkpoint_failure {
            self.mark_degraded(&format!("checkpoint failed: {reason}"));
        }
        Ok((outcome, false))
    }
}

/// How to materialise a named dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetSpec {
    /// The paper's Figure 1 six-record example (focal record id 5).
    Demo,
    /// A synthetic benchmark distribution.
    Synthetic {
        /// IND / COR / ANTI.
        dist: Distribution,
        /// Cardinality.
        n: usize,
        /// Dimensionality.
        d: usize,
        /// Generator seed.
        seed: u64,
    },
    /// A simulated real dataset, scaled.
    Real {
        /// Which of the five paper datasets.
        which: RealDataset,
        /// Cardinality scale factor (1.0 = paper cardinality).
        scale: f64,
        /// Generator seed.
        seed: u64,
    },
    /// A CSV file on disk (one record per line, optional header).
    Csv {
        /// File path.
        path: PathBuf,
        /// Dimensionality.
        dims: usize,
    },
}

impl DatasetSpec {
    /// Parses the spec grammar used by `maxrank-serve --dataset NAME=SPEC`:
    ///
    /// ```text
    /// demo
    /// ind:n=1000,d=3,seed=42        (also cor: / anti:)
    /// hotel:scale=0.01,seed=1       (also house / nba / pitch / bat)
    /// csv:path=options.csv,dims=4
    /// ```
    pub fn parse(s: &str) -> Result<DatasetSpec, String> {
        let (head, rest) = match s.split_once(':') {
            Some((h, r)) => (h, r),
            None => (s, ""),
        };
        let mut params: HashMap<&str, &str> = HashMap::new();
        for kv in rest.split(',').filter(|kv| !kv.is_empty()) {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| format!("malformed parameter '{kv}' (expected key=value)"))?;
            params.insert(k.trim(), v.trim());
        }
        let num = |key: &str, default: u64| -> Result<u64, String> {
            match params.get(key) {
                None => Ok(default),
                Some(v) => v.parse().map_err(|e| format!("{key}: {e}")),
            }
        };
        match head {
            "demo" => Ok(DatasetSpec::Demo),
            "ind" | "cor" | "anti" => {
                let dist = match head {
                    "ind" => Distribution::Independent,
                    "cor" => Distribution::Correlated,
                    _ => Distribution::AntiCorrelated,
                };
                Ok(DatasetSpec::Synthetic {
                    dist,
                    n: num("n", 1000)? as usize,
                    d: num("d", 3)? as usize,
                    seed: num("seed", 2015)?,
                })
            }
            "hotel" | "house" | "nba" | "pitch" | "bat" => {
                let which = match head {
                    "hotel" => RealDataset::Hotel,
                    "house" => RealDataset::House,
                    "nba" => RealDataset::Nba,
                    "pitch" => RealDataset::Pitch,
                    _ => RealDataset::Bat,
                };
                let scale = match params.get("scale") {
                    None => 0.01,
                    Some(v) => v.parse().map_err(|e| format!("scale: {e}"))?,
                };
                Ok(DatasetSpec::Real {
                    which,
                    scale,
                    seed: num("seed", 2015)?,
                })
            }
            "csv" => {
                let path = params
                    .get("path")
                    .ok_or("csv spec needs path=FILE")?
                    .to_string();
                let dims = num("dims", 0)? as usize;
                if dims < 2 {
                    return Err("csv spec needs dims=D with D >= 2".into());
                }
                Ok(DatasetSpec::Csv {
                    path: PathBuf::from(path),
                    dims,
                })
            }
            other => Err(format!(
                "unknown dataset kind '{other}' (expected demo, ind, cor, anti, \
                 hotel, house, nba, pitch, bat or csv)"
            )),
        }
    }

    /// Materialises the dataset this spec describes.
    pub fn materialize(&self) -> Result<Dataset, String> {
        match self {
            DatasetSpec::Demo => Ok(Dataset::from_rows(
                2,
                &[
                    vec![0.8, 0.9],
                    vec![0.2, 0.7],
                    vec![0.9, 0.4],
                    vec![0.7, 0.2],
                    vec![0.4, 0.3],
                    vec![0.5, 0.5],
                ],
            )),
            DatasetSpec::Synthetic { dist, n, d, seed } => {
                if *d < 2 {
                    return Err("synthetic datasets need d >= 2".into());
                }
                let mut rng = StdRng::seed_from_u64(*seed);
                Ok(synthetic::generate(*dist, *n, *d, &mut rng))
            }
            DatasetSpec::Real { which, scale, seed } => {
                // `partial_cmp` so NaN is rejected alongside non-positives.
                if scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                    return Err("real dataset scale must be positive".into());
                }
                let mut rng = StdRng::seed_from_u64(*seed);
                Ok(which.generate_scaled(*scale, &mut rng))
            }
            DatasetSpec::Csv { path, dims } => {
                read_csv(path, *dims).map_err(|e| format!("{}: {e}", path.display()))
            }
        }
    }

    /// The dimensionality this spec would materialise to — known without
    /// materialising it.  Used to cross-check a recovered store against the
    /// spec it is registered under.
    pub fn dims(&self) -> usize {
        match self {
            DatasetSpec::Demo => 2,
            DatasetSpec::Synthetic { d, .. } => *d,
            DatasetSpec::Real { which, .. } => which.spec().dims,
            DatasetSpec::Csv { dims, .. } => *dims,
        }
    }
}

/// A named collection of loaded datasets and their indexes.
///
/// `register*` loads/generates the data and bulk-loads the index eagerly, so
/// the first query pays nothing; `get` is a cheap `Arc` clone under a read
/// lock.  Registering an existing name is an error — a serving process should
/// not silently swap the data a cache key refers to (updates move a dataset
/// *forward* through [`DatasetHandle::apply`], which versions every step).
#[derive(Debug, Default)]
pub struct DatasetRegistry {
    entries: RwLock<HashMap<String, Arc<DatasetHandle>>>,
    durability: Arc<DurabilityBook>,
}

impl DatasetRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a dataset from a spec, loading it eagerly.
    pub fn register(&self, name: &str, spec: &DatasetSpec) -> Result<Arc<DatasetEntry>, String> {
        let data = spec.materialize()?;
        self.register_loaded(name, data)
    }

    /// Registers an already-loaded dataset (builds the index here).
    pub fn register_loaded(&self, name: &str, data: Dataset) -> Result<Arc<DatasetEntry>, String> {
        Self::validate_name(name)?;
        if data.is_empty() {
            return Err(format!("dataset '{name}' is empty"));
        }
        self.insert_entry(name, data, None)
    }

    /// Registers a dataset backed by an on-disk store at `data_dir/name`.
    ///
    /// If a store already exists there, the dataset is **recovered** from it
    /// (snapshot + WAL replay; the spec is only cross-checked for matching
    /// dimensionality) and the returned report says what recovery did.
    /// Otherwise the spec is materialised and a fresh store is created.
    pub fn register_durable(
        &self,
        name: &str,
        spec: &DatasetSpec,
        data_dir: &Path,
        options: DurabilityOptions,
    ) -> Result<(Arc<DatasetEntry>, Option<RecoveryReport>), String> {
        Self::validate_name(name)?;
        let dir = data_dir.join(name);
        if DatasetStore::exists(&dir) {
            let (store, data, report) =
                DatasetStore::open(&dir).map_err(|e| format!("dataset '{name}': {e}"))?;
            if data.dims() != spec.dims() {
                return Err(format!(
                    "dataset '{name}': the store at {} holds {}-dimensional records but the \
                     spec describes {} dimensions (refusing to serve mismatched data)",
                    dir.display(),
                    data.dims(),
                    spec.dims()
                ));
            }
            self.durability.record_recovery(&report);
            let entry = self.insert_durable(name, data, store, options)?;
            Ok((entry, Some(report)))
        } else {
            let data = spec.materialize()?;
            if data.is_empty() {
                return Err(format!("dataset '{name}' is empty"));
            }
            let store =
                DatasetStore::create(&dir, &data).map_err(|e| format!("dataset '{name}': {e}"))?;
            let entry = self.insert_durable(name, data, store, options)?;
            Ok((entry, None))
        }
    }

    /// Like [`DatasetRegistry::register_durable`] but with an in-memory
    /// initial state instead of a spec: `initial` seeds the store on first
    /// registration and is **ignored** when a store already exists at
    /// `data_dir/name` (the disk state, which includes every durably
    /// committed update, wins).
    pub fn register_loaded_durable(
        &self,
        name: &str,
        initial: Dataset,
        data_dir: &Path,
        options: DurabilityOptions,
    ) -> Result<(Arc<DatasetEntry>, Option<RecoveryReport>), String> {
        Self::validate_name(name)?;
        let dir = data_dir.join(name);
        if DatasetStore::exists(&dir) {
            let (store, data, report) =
                DatasetStore::open(&dir).map_err(|e| format!("dataset '{name}': {e}"))?;
            self.durability.record_recovery(&report);
            let entry = self.insert_durable(name, data, store, options)?;
            Ok((entry, Some(report)))
        } else {
            if initial.is_empty() {
                return Err(format!("dataset '{name}' is empty"));
            }
            let store = DatasetStore::create(&dir, &initial)
                .map_err(|e| format!("dataset '{name}': {e}"))?;
            let entry = self.insert_durable(name, initial, store, options)?;
            Ok((entry, None))
        }
    }

    fn validate_name(name: &str) -> Result<(), String> {
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!(
                "invalid dataset name '{name}' (use ASCII letters, digits, '-', '_')"
            ));
        }
        Ok(())
    }

    fn insert_durable(
        &self,
        name: &str,
        data: Dataset,
        store: DatasetStore,
        options: DurabilityOptions,
    ) -> Result<Arc<DatasetEntry>, String> {
        let state = DurableState {
            store: Mutex::new(store),
            options,
            book: Arc::clone(&self.durability),
        };
        let entry = self.insert_entry(name, data, Some(state))?;
        self.durability
            .durable_datasets
            .fetch_add(1, Ordering::Relaxed);
        Ok(entry)
    }

    fn insert_entry(
        &self,
        name: &str,
        data: Dataset,
        durable: Option<DurableState>,
    ) -> Result<Arc<DatasetEntry>, String> {
        // Check the name *before* paying for the index build (seconds on
        // large datasets); re-check under the write lock in case two
        // registrations raced past the pre-check.
        let taken = |map: &HashMap<String, Arc<DatasetHandle>>| {
            map.contains_key(name)
                .then(|| format!("dataset '{name}' is already registered"))
        };
        if let Some(err) = taken(&read_or_recover(&self.entries)) {
            return Err(err);
        }
        let entry = Arc::new(DatasetEntry::build(name, data));
        let handle = match durable {
            None => DatasetHandle::new(Arc::clone(&entry)),
            Some(state) => DatasetHandle::new_durable(Arc::clone(&entry), state),
        };
        let mut map = write_or_recover(&self.entries);
        if let Some(err) = taken(&map) {
            return Err(err);
        }
        map.insert(name.to_string(), Arc::new(handle));
        Ok(entry)
    }

    /// Checkpoints every durable dataset (snapshot rewrite + WAL
    /// truncation), e.g. on clean shutdown so the next start is a pure
    /// snapshot load.  Returns how many datasets were checkpointed.
    pub fn checkpoint_all(&self) -> Result<usize, String> {
        let handles: Vec<(String, Arc<DatasetHandle>)> = {
            let map = read_or_recover(&self.entries);
            map.iter()
                .map(|(name, handle)| (name.clone(), Arc::clone(handle)))
                .collect()
        };
        let mut checkpointed = 0;
        for (name, handle) in handles {
            match handle.checkpoint() {
                Ok(true) => checkpointed += 1,
                Ok(false) => {}
                Err(e) => return Err(format!("dataset '{name}': {e}")),
            }
        }
        Ok(checkpointed)
    }

    /// Point-in-time durability counters (all zeros when nothing is
    /// durable).
    pub fn durability_stats(&self) -> DurabilityStats {
        self.durability.snapshot()
    }

    /// Looks up the **current snapshot** of a dataset by name.  The returned
    /// entry stays valid (and unchanged) however many updates land after the
    /// call.
    pub fn get(&self, name: &str) -> Option<Arc<DatasetEntry>> {
        self.handle(name).map(|h| h.snapshot())
    }

    /// Looks up the mutable handle of a dataset by name (for updates).
    pub fn handle(&self, name: &str) -> Option<Arc<DatasetHandle>> {
        read_or_recover(&self.entries).get(name).cloned()
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = read_or_recover(&self.entries).keys().cloned().collect();
        names.sort();
        names
    }

    /// The names of datasets currently in degraded read-only mode, sorted
    /// (surfaced through `STATS` and the `mrq_dataset_degraded` gauge).
    pub fn degraded_datasets(&self) -> Vec<String> {
        let mut names: Vec<String> = read_or_recover(&self.entries)
            .iter()
            .filter(|(_, handle)| handle.degraded().is_some())
            .map(|(name, _)| name.clone())
            .collect();
        names.sort();
        names
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        read_or_recover(&self.entries).len()
    }

    /// Whether no dataset is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_materialize_synthetic() {
        let spec = DatasetSpec::parse("ind:n=50,d=3,seed=7").unwrap();
        assert_eq!(
            spec,
            DatasetSpec::Synthetic {
                dist: Distribution::Independent,
                n: 50,
                d: 3,
                seed: 7
            }
        );
        let data = spec.materialize().unwrap();
        assert_eq!(data.len(), 50);
        assert_eq!(data.dims(), 3);
    }

    #[test]
    fn parse_defaults_and_errors() {
        assert_eq!(DatasetSpec::parse("demo").unwrap(), DatasetSpec::Demo);
        assert!(matches!(
            DatasetSpec::parse("anti").unwrap(),
            DatasetSpec::Synthetic { n: 1000, d: 3, .. }
        ));
        assert!(DatasetSpec::parse("nope:n=3").is_err());
        assert!(DatasetSpec::parse("ind:n").is_err());
        assert!(
            DatasetSpec::parse("csv:path=x.csv").is_err(),
            "dims required"
        );
    }

    #[test]
    fn parse_real() {
        let spec = DatasetSpec::parse("hotel:scale=0.002,seed=3").unwrap();
        let data = spec.materialize().unwrap();
        assert_eq!(data.dims(), 4);
        assert!(data.len() >= 100);
    }

    #[test]
    fn register_and_get() {
        let reg = DatasetRegistry::new();
        let entry = reg.register("demo", &DatasetSpec::Demo).unwrap();
        assert_eq!(entry.data().len(), 6);
        assert_eq!(entry.tree().len(), 6);
        let same = reg.get("demo").unwrap();
        assert!(Arc::ptr_eq(&entry, &same));
        assert!(reg.get("missing").is_none());
        assert_eq!(reg.names(), vec!["demo".to_string()]);
    }

    #[test]
    fn duplicate_and_invalid_names_rejected() {
        let reg = DatasetRegistry::new();
        reg.register("a", &DatasetSpec::Demo).unwrap();
        assert!(reg.register("a", &DatasetSpec::Demo).is_err());
        assert!(reg.register("bad name", &DatasetSpec::Demo).is_err());
        assert!(reg.register("", &DatasetSpec::Demo).is_err());
    }

    #[test]
    fn entry_engine_answers_figure1() {
        let reg = DatasetRegistry::new();
        let entry = reg.register("demo", &DatasetSpec::Demo).unwrap();
        let res = entry.engine().evaluate(5, &mrq_core::MaxRankConfig::new());
        assert_eq!(res.k_star, 3);
    }

    #[test]
    fn apply_swaps_snapshot_and_leaves_old_one_intact() {
        let reg = DatasetRegistry::new();
        reg.register("demo", &DatasetSpec::Demo).unwrap();
        let handle = reg.handle("demo").unwrap();
        let before = handle.snapshot();
        assert_eq!(before.version(), 0);

        let outcome = handle
            .apply(&[Update::Insert(vec![0.95, 0.95]), Update::Delete(0)])
            .unwrap();
        assert_eq!(outcome.version, 2);
        assert_eq!(outcome.inserted, vec![6]);
        assert_eq!(outcome.deleted, 1);
        assert_eq!(outcome.records, 6);

        // The old snapshot is untouched: in-flight queries finish on it.
        assert_eq!(before.version(), 0);
        assert_eq!(before.data().live_len(), 6);
        assert!(before.data().is_live(0));
        assert_eq!(before.tree().len(), 6);

        // The handle now serves the new snapshot, with a consistent index.
        let after = reg.get("demo").unwrap();
        assert_eq!(after.version(), 2);
        assert!(!after.data().is_live(0));
        assert!(after.data().is_live(6));
        assert_eq!(after.tree().len(), 6);
        after.tree().check_invariants().unwrap();
        assert!(!Arc::ptr_eq(&before, &after));
    }

    #[test]
    fn apply_batch_is_atomic_on_rejection() {
        let reg = DatasetRegistry::new();
        reg.register("demo", &DatasetSpec::Demo).unwrap();
        let handle = reg.handle("demo").unwrap();
        let err = handle
            .apply(&[
                Update::Insert(vec![0.5, 0.6]),
                Update::Delete(42), // rejected: no such record
            ])
            .unwrap_err();
        assert_eq!(err, mrq_data::UpdateError::NoSuchRecord(42));
        // Nothing of the batch is visible.
        let snap = handle.snapshot();
        assert_eq!(snap.version(), 0);
        assert_eq!(snap.data().live_len(), 6);
    }

    #[test]
    fn apply_with_id_replays_receipt_instead_of_reapplying() {
        let reg = DatasetRegistry::new();
        reg.register("demo", &DatasetSpec::Demo).unwrap();
        let handle = reg.handle("demo").unwrap();
        let batch = vec![Update::Insert(vec![0.1, 0.2])];
        let (first, replayed) = handle.apply_with_id(&batch, Some("req-1")).unwrap();
        assert!(!replayed);
        assert_eq!(first.version, 1);
        // The retry does not double-apply: same receipt, same version.
        let (second, replayed) = handle.apply_with_id(&batch, Some("req-1")).unwrap();
        assert!(replayed);
        assert_eq!(first, second);
        assert_eq!(handle.snapshot().version(), 1);
        // A different id is a different request.
        let (third, replayed) = handle.apply_with_id(&batch, Some("req-2")).unwrap();
        assert!(!replayed);
        assert_eq!(third.version, 2);
    }

    #[test]
    fn dedup_window_is_bounded_fifo() {
        let reg = DatasetRegistry::new();
        reg.register("demo", &DatasetSpec::Demo).unwrap();
        let handle = reg.handle("demo").unwrap();
        let batch = vec![Update::Insert(vec![0.3, 0.4])];
        for i in 0..=DEDUP_WINDOW {
            handle
                .apply_with_id(&batch, Some(&format!("id-{i}")))
                .unwrap();
        }
        // The newest receipt survives…
        let (_, replayed) = handle
            .apply_with_id(&batch, Some(&format!("id-{DEDUP_WINDOW}")))
            .unwrap();
        assert!(replayed);
        // …but the oldest fell out of the window, so its retry re-applies.
        let before = handle.snapshot().version();
        let (outcome, replayed) = handle.apply_with_id(&batch, Some("id-0")).unwrap();
        assert!(!replayed);
        assert_eq!(outcome.version, before + 1);
    }

    #[test]
    fn concurrent_updates_serialize_and_all_land() {
        let reg = DatasetRegistry::new();
        reg.register(
            "d",
            &DatasetSpec::Synthetic {
                dist: Distribution::Independent,
                n: 50,
                d: 3,
                seed: 5,
            },
        )
        .unwrap();
        let handle = reg.handle("d").unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let handle = Arc::clone(&handle);
                scope.spawn(move || {
                    for i in 0..10 {
                        let x = f64::from(t * 10 + i) / 40.0;
                        handle
                            .apply(&[Update::Insert(vec![x, 1.0 - x, 0.5])])
                            .unwrap();
                    }
                });
            }
        });
        let snap = handle.snapshot();
        assert_eq!(snap.version(), 40);
        assert_eq!(snap.data().live_len(), 90);
        assert_eq!(snap.tree().len(), 90);
        snap.tree().check_invariants().unwrap();
        // Every assigned id is distinct (50..90 in some order).
        let mut ids: Vec<u32> = snap.data().iter().map(|(id, _)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..90).collect::<Vec<u32>>());
    }
}
