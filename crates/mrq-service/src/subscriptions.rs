//! Standing MaxRank queries: the `SUBSCRIBE`/`NOTIFY` subsystem.
//!
//! A subscription pins one focal record's full [`MaxRankResult`] resident in
//! the service.  Instead of recomputing on the next query after every
//! `UPDATE` (the request/response model), the service *maintains* the
//! resident result under update batches with the delta-triage pass of
//! [`mrq_core::maintain`]: each delta record is classified by dominance
//! tests and dot products against the retained region boxes into
//! *unaffected* (keep the result, bump the version stamp), *rank-shift-only*
//! (adjust `k*` and region orders arithmetically), or *re-enumerate* (re-run
//! the evaluation).  Subscribers are told about changes through per-connection
//! [`NotifyMailbox`]es that the server's connection threads drain into
//! server-push `NOTIFY` frames.
//!
//! Concurrency model: all subscriptions of one dataset sit behind one mutex
//! (see [`SubscriptionBook::dataset`]).  `MrqService::update` holds it from
//! *before* the registry apply until triage is done, and
//! `MrqService::subscribe` holds it across the initial evaluation and
//! registration — so a resident result is always exact for the version it is
//! stamped with, with no window where an update could slip between an
//! evaluation and the bookkeeping.

use crate::sync::lock_or_recover;
use mrq_core::maintain::{shift_result, triage_delete, triage_insert, DeltaTriage};
use mrq_core::{Algorithm, MaxRankConfig, MaxRankQuery, MaxRankResult};
use mrq_data::{RecordId, Update};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::registry::DatasetEntry;

/// All subscriptions of one dataset, behind the lock that serializes
/// updates, triage and new registrations for that dataset.
pub type DatasetSubscriptions = Arc<Mutex<Vec<Arc<Subscription>>>>;

/// Why a subscriber is being notified.
#[derive(Debug, Clone)]
pub enum NotifyKind {
    /// The maintained result changed; the carried result is exact at the
    /// event's version.
    Changed {
        /// The maintained result after the update batch.
        result: Arc<MaxRankResult>,
        /// The concrete algorithm maintaining the subscription.
        algorithm: Algorithm,
    },
    /// The subscription ended on the server side (e.g. its focal record was
    /// deleted); no further notifications will follow.
    Cancelled {
        /// Human-readable explanation, forwarded verbatim to the client.
        reason: String,
    },
}

/// One server-push notification, queued on the owning connection's mailbox
/// until its connection thread writes it out as a `NOTIFY` frame.
#[derive(Debug, Clone)]
pub struct NotifyEvent {
    /// Subscription id the event belongs to.
    pub subscription: u64,
    /// Dataset the subscription watches.
    pub dataset: String,
    /// Focal record id.
    pub focal: RecordId,
    /// Dataset version the event was produced at.
    pub version: u64,
    /// Change or cancellation.
    pub kind: NotifyKind,
}

/// A per-connection queue of pending [`NotifyEvent`]s.  The update path
/// pushes; the connection thread drains between frame polls and renders the
/// events as `NOTIFY` frames.  Events for a connection that never drains
/// again (it is closing) are dropped with the mailbox itself.
#[derive(Debug, Default)]
pub struct NotifyMailbox {
    queue: Mutex<VecDeque<NotifyEvent>>,
}

impl NotifyMailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues one event.
    pub fn push(&self, event: NotifyEvent) {
        lock_or_recover(&self.queue).push_back(event);
    }

    /// Takes every pending event, oldest first.
    pub fn drain(&self) -> Vec<NotifyEvent> {
        let mut queue = lock_or_recover(&self.queue);
        queue.drain(..).collect()
    }
}

/// Mutable part of a subscription: the resident result and the dataset
/// version it is exact for.
#[derive(Debug)]
struct SubscriptionState {
    result: Arc<MaxRankResult>,
    version: u64,
}

/// One standing query: a focal record whose MaxRank result the service
/// keeps resident and maintains under updates.
#[derive(Debug)]
pub struct Subscription {
    id: u64,
    dataset: String,
    focal: RecordId,
    /// Concrete (resolved) algorithm used for initial evaluation and every
    /// re-enumeration.
    algorithm: Algorithm,
    tau: usize,
    state: Mutex<SubscriptionState>,
    mailbox: Arc<NotifyMailbox>,
}

impl Subscription {
    /// Server-assigned subscription id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Dataset the subscription watches.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// Focal record id.
    pub fn focal(&self) -> RecordId {
        self.focal
    }

    /// Concrete algorithm maintaining the subscription.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// iMaxRank slack.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// The resident result and the dataset version it is exact for.
    pub fn snapshot(&self) -> (Arc<MaxRankResult>, u64) {
        let state = lock_or_recover(&self.state);
        (Arc::clone(&state.result), state.version)
    }
}

/// Counter snapshot reported by `STATS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubscriptionStats {
    /// Currently registered subscriptions.
    pub active: u64,
    /// Delta records examined by the triage pass (one delta affecting two
    /// subscriptions counts twice).
    pub deltas_triaged: u64,
    /// Deltas certified unaffected: the resident result was kept without
    /// touching the index.
    pub unaffected_skips: u64,
    /// Deltas resolved by an arithmetic rank shift (no enumeration either).
    pub partial_repairs: u64,
    /// Full re-evaluations performed because a delta's half-space could
    /// cross a resident region (or a delete could promote an outside cell).
    pub full_reevals: u64,
}

/// Registry of all standing queries, grouped per dataset, plus the triage
/// counters.
#[derive(Debug, Default)]
pub struct SubscriptionBook {
    datasets: Mutex<HashMap<String, DatasetSubscriptions>>,
    next_id: AtomicU64,
    active: AtomicU64,
    deltas_triaged: AtomicU64,
    unaffected_skips: AtomicU64,
    partial_repairs: AtomicU64,
    full_reevals: AtomicU64,
}

impl SubscriptionBook {
    /// Creates an empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// The subscription list (and lock) of one dataset, created on demand.
    pub fn dataset(&self, name: &str) -> DatasetSubscriptions {
        let mut datasets = lock_or_recover(&self.datasets);
        Arc::clone(datasets.entry(name.to_string()).or_default())
    }

    /// Creates a subscription holding `result` (exact at `version`).  The
    /// caller must push it into the dataset's list while still holding the
    /// lock it evaluated under.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        &self,
        dataset: &str,
        focal: RecordId,
        algorithm: Algorithm,
        tau: usize,
        result: Arc<MaxRankResult>,
        version: u64,
        mailbox: Arc<NotifyMailbox>,
    ) -> Arc<Subscription> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.active.fetch_add(1, Ordering::Relaxed);
        Arc::new(Subscription {
            id,
            dataset: dataset.to_string(),
            focal,
            algorithm,
            tau,
            state: Mutex::new(SubscriptionState { result, version }),
            mailbox,
        })
    }

    /// Removes the subscription with `id`.  Returns whether it existed.
    pub fn remove(&self, id: u64) -> bool {
        let datasets = lock_or_recover(&self.datasets);
        for subs in datasets.values() {
            let mut subs = lock_or_recover(subs);
            if let Some(pos) = subs.iter().position(|s| s.id == id) {
                subs.remove(pos);
                self.active.fetch_sub(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Removes every subscription registered through `mailbox` (the owning
    /// connection is going away).  Returns how many were dropped.
    pub fn remove_mailbox(&self, mailbox: &Arc<NotifyMailbox>) -> usize {
        let datasets = lock_or_recover(&self.datasets);
        let mut dropped = 0usize;
        for subs in datasets.values() {
            let mut subs = lock_or_recover(subs);
            let before = subs.len();
            subs.retain(|s| !Arc::ptr_eq(&s.mailbox, mailbox));
            dropped += before - subs.len();
        }
        self.active.fetch_sub(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Maintains every subscription in `subs` across one applied update
    /// batch.  `entry` is the post-apply snapshot and `version` its version.
    /// The caller holds the dataset's subscription lock (the same one it
    /// held across the registry apply).
    ///
    /// Per subscription: deltas are triaged in batch order against the
    /// evolving resident result; the first delta that requires enumeration
    /// subsumes the rest of the batch in a single re-evaluation.  Changed
    /// results are pushed to the owning mailbox; an unaffected batch only
    /// moves the version stamp and pushes nothing.  Subscriptions whose
    /// focal record the batch deleted are cancelled (with a final
    /// cancellation event) and removed.
    pub fn triage_batch(
        &self,
        subs: &mut Vec<Arc<Subscription>>,
        entry: &DatasetEntry,
        updates: &[Update],
        version: u64,
    ) {
        let mut cancelled = 0usize;
        subs.retain(|sub| {
            if !entry.data().is_live(sub.focal) {
                sub.mailbox.push(NotifyEvent {
                    subscription: sub.id,
                    dataset: sub.dataset.clone(),
                    focal: sub.focal,
                    version,
                    kind: NotifyKind::Cancelled {
                        reason: format!("focal {} was deleted", sub.focal),
                    },
                });
                cancelled += 1;
                return false;
            }
            self.maintain_one(sub, entry, updates, version);
            true
        });
        self.active.fetch_sub(cancelled as u64, Ordering::Relaxed);
    }

    fn maintain_one(
        &self,
        sub: &Arc<Subscription>,
        entry: &DatasetEntry,
        updates: &[Update],
        version: u64,
    ) {
        let focal_row = entry.data().record(sub.focal);
        let mut state = lock_or_recover(&sub.state);
        let mut result = Arc::clone(&state.result);
        let mut changed = false;
        let mut reenumerate = false;
        for update in updates {
            self.deltas_triaged.fetch_add(1, Ordering::Relaxed);
            let verdict = match update {
                Update::Insert(row) => triage_insert(&result, focal_row, row),
                // Tombstoned slots keep their coordinates readable, so the
                // post-apply snapshot still knows what was deleted.
                Update::Delete(id) => triage_delete(&result, focal_row, entry.data().record(*id)),
            };
            match verdict {
                DeltaTriage::Unaffected => {
                    self.unaffected_skips.fetch_add(1, Ordering::Relaxed);
                }
                DeltaTriage::RankShift(shift) => {
                    result = Arc::new(shift_result(&result, shift));
                    changed = true;
                    self.partial_repairs.fetch_add(1, Ordering::Relaxed);
                }
                DeltaTriage::ReEnumerate => {
                    // One evaluation covers this delta and whatever follows
                    // in the batch; stop classifying.
                    self.full_reevals.fetch_add(1, Ordering::Relaxed);
                    reenumerate = true;
                    break;
                }
            }
        }
        if reenumerate {
            let config = MaxRankConfig {
                tau: sub.tau,
                algorithm: sub.algorithm,
                ..MaxRankConfig::new()
            };
            result = Arc::new(
                MaxRankQuery::new(entry.data(), entry.tree()).evaluate(sub.focal, &config),
            );
            changed = true;
        }
        state.version = version;
        if changed {
            state.result = Arc::clone(&result);
            sub.mailbox.push(NotifyEvent {
                subscription: sub.id,
                dataset: sub.dataset.clone(),
                focal: sub.focal,
                version,
                kind: NotifyKind::Changed {
                    result,
                    algorithm: sub.algorithm,
                },
            });
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SubscriptionStats {
        SubscriptionStats {
            active: self.active.load(Ordering::Relaxed),
            deltas_triaged: self.deltas_triaged.load(Ordering::Relaxed),
            unaffected_skips: self.unaffected_skips.load(Ordering::Relaxed),
            partial_repairs: self.partial_repairs.load(Ordering::Relaxed),
            full_reevals: self.full_reevals.load(Ordering::Relaxed),
        }
    }
}
